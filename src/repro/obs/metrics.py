"""Metric primitives and the kernel's metric set.

Everything is measured in *logical ticks* (scheduler step numbers), not
wall-clock time: the kernel is deterministic, so the same schedule must
always report the same numbers — that is what makes metrics usable as
regression oracles, and it is asserted by the metrics-determinism tests.

Metric names the scheduler emits (see docs/ARCHITECTURE.md,
"Observability", for full semantics):

=========================  =============================================
``steps``                  executed scheduler transitions
``context_switches``       steps where a different task ran than before
``lock_acquires``          lock/monitor grants (immediate or after park)
``lock_contended``         Acquire effects that had to park
``lock_releases``          Release effects executed
``monitor_waits``          Wait effects (task joined a condition queue)
``monitor_notifies``       Notify effects
``messages_sent``          Send effects deposited into a mailbox
``messages_delivered``     deliver transitions (message entered a task)
``tasks_spawned``          tasks registered with the scheduler
``tasks_finished``         tasks that returned
``tasks_failed``           tasks that raised
=========================  =============================================

Per-object variants use dotted keys (``lock.<name>.acquires``,
``mailbox.<name>.sent`` …).  Histograms: ``lock_wait_ticks``,
``message_latency_ticks``, ``mailbox_depth``, ``enabled_fanout``,
``block_ticks``.  High-water gauges: ``mailbox_depth_max``,
``mailbox.<name>.depth_max``.
"""

from __future__ import annotations

from typing import Any, Optional

__all__ = ["Histogram", "KernelMetrics"]


class Histogram:
    """Summary of a numeric series: count/total/min/max/mean + percentiles.

    Deliberately not a bucketed histogram — the kernel's series are
    short and the consumers (CLI tables, JSON dumps, regression tests)
    want exact deterministic aggregates, not approximations.  The raw
    samples are retained so :meth:`percentile` can answer p50/p95/p99
    exactly (nearest-rank, so the result is always an observed value and
    identical across runs of the same schedule).
    """

    __slots__ = ("count", "total", "min", "max", "_samples", "_sorted",
                 "_dirty")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0
        self.min: Optional[int] = None
        self.max: Optional[int] = None
        #: raw samples in *insertion order* — consumers (the telemetry
        #: delta encoder) rely on ``_samples[n:]`` being "everything
        #: recorded after the first n", so percentile queries sort a
        #: cached copy instead of this list
        self._samples: list = []
        self._sorted: list = []
        self._dirty = False

    def record(self, value: int) -> None:
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        self._samples.append(value)
        self._dirty = True

    def merge(self, other: "Histogram") -> "Histogram":
        """Fold ``other``'s samples into this histogram, in place.

        Because samples are retained raw, the merge preserves exact
        percentile semantics: ``a.merge(b).percentile(p)`` equals the
        percentile of the union series recorded into one histogram —
        which is what lets the telemetry aggregator combine per-frame
        histogram buckets into sliding-window percentiles, and what
        ``merge_profiles`` cannot do from snapshots alone.  Returns
        ``self`` for chaining; ``other`` is not modified.
        """
        if other.count == 0:
            return self
        self.count += other.count
        self.total += other.total
        if self.min is None or (other.min is not None
                                and other.min < self.min):
            self.min = other.min
        if self.max is None or (other.max is not None
                                and other.max > self.max):
            self.max = other.max
        self._samples.extend(other._samples)
        self._dirty = True
        return self

    @classmethod
    def of(cls, samples) -> "Histogram":
        """A histogram pre-filled from an iterable of samples."""
        hist = cls()
        for value in samples:
            hist.record(value)
        return hist

    def samples_since(self, start: int) -> list:
        """Copy of every sample recorded after the first ``start``.

        Insertion-ordered (percentile queries never reorder the raw
        series), so a reader that remembers the last ``count`` it saw
        gets exactly the new samples — the telemetry delta encoding.
        """
        return self._samples[start:]

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, p: float) -> Optional[float]:
        """Nearest-rank percentile of everything recorded (0 < p <= 100).

        Returns None for an empty histogram.  Nearest-rank rather than
        interpolation: the answer is always a value that actually
        occurred, which keeps regression baselines exact.
        """
        if not 0 < p <= 100:
            raise ValueError(f"percentile must be in (0, 100], not {p}")
        if not self._samples:
            return None
        if self._dirty:
            self._sorted = sorted(self._samples)
            self._dirty = False
        rank = max(1, -(-len(self._sorted) * p // 100))  # ceil
        return self._sorted[int(rank) - 1]

    @property
    def p50(self) -> Optional[float]:
        return self.percentile(50)

    @property
    def p95(self) -> Optional[float]:
        return self.percentile(95)

    @property
    def p99(self) -> Optional[float]:
        return self.percentile(99)

    def snapshot(self) -> dict[str, Any]:
        return {"count": self.count, "total": self.total,
                "min": self.min, "max": self.max,
                "mean": round(self.mean, 4),
                "p50": self.p50, "p95": self.p95, "p99": self.p99}

    def __repr__(self) -> str:
        return (f"<Histogram n={self.count} total={self.total} "
                f"min={self.min} max={self.max}>")


class KernelMetrics:
    """Counter/gauge/histogram sink one scheduler run writes into.

    Create one, pass it as ``Scheduler(metrics=...)``, read
    :meth:`snapshot` after the run.  A fresh instance per run keeps the
    numbers comparable across runs; sharing one instance across runs
    accumulates (useful for exploration-wide totals).
    """

    __slots__ = ("counters", "gauges", "histograms", "per_task", "_sent_at")

    def __init__(self) -> None:
        self.counters: dict[str, int] = {}
        #: high-water marks (monotone max)
        self.gauges: dict[str, int] = {}
        self.histograms: dict[str, Histogram] = {}
        #: task name -> {"steps": int, "block_ticks": int}
        self.per_task: dict[str, dict[str, int]] = {}
        #: envelope seq -> deposit step (in-flight messages, latency calc)
        self._sent_at: dict[int, int] = {}

    # -- writers (called from the scheduler hot path) -------------------
    def inc(self, name: str, delta: int = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + delta

    def gauge_max(self, name: str, value: int) -> None:
        if value > self.gauges.get(name, 0):
            self.gauges[name] = value

    def observe(self, name: str, value: int) -> None:
        hist = self.histograms.get(name)
        if hist is None:
            hist = self.histograms[name] = Histogram()
        hist.record(value)

    def task_add(self, task_name: str, field: str, delta: int) -> None:
        stats = self.per_task.get(task_name)
        if stats is None:
            stats = self.per_task[task_name] = {"steps": 0, "block_ticks": 0}
        stats[field] = stats.get(field, 0) + delta

    # -- readers --------------------------------------------------------
    def get(self, name: str) -> int:
        return self.counters.get(name, 0)

    def snapshot(self) -> dict[str, Any]:
        """JSON-ready view of everything collected (deterministic order)."""
        return {
            "counters": dict(sorted(self.counters.items())),
            "gauges": dict(sorted(self.gauges.items())),
            "histograms": {k: h.snapshot()
                           for k, h in sorted(self.histograms.items())},
            "per_task": {k: dict(v)
                         for k, v in sorted(self.per_task.items())},
        }

    def format(self) -> str:
        """Human-readable table of the snapshot (the ``repro stats`` view)."""
        lines = ["counters:"]
        for name, value in sorted(self.counters.items()):
            lines.append(f"  {name:<32} {value}")
        if self.gauges:
            lines.append("gauges (high water):")
            for name, value in sorted(self.gauges.items()):
                lines.append(f"  {name:<32} {value}")
        if self.histograms:
            lines.append("histograms (logical ticks):")
            for name, hist in sorted(self.histograms.items()):
                lines.append(
                    f"  {name:<32} n={hist.count} min={hist.min} "
                    f"max={hist.max} mean={hist.mean:.2f} "
                    f"p50={hist.p50} p95={hist.p95} p99={hist.p99}")
        if self.per_task:
            lines.append("per task:")
            for name, stats in sorted(self.per_task.items()):
                lines.append(f"  {name:<32} steps={stats.get('steps', 0)} "
                             f"block_ticks={stats.get('block_ticks', 0)}")
        return "\n".join(lines)

    def __repr__(self) -> str:
        return (f"<KernelMetrics {len(self.counters)} counters, "
                f"{len(self.histograms)} histograms>")
