"""Trace export — Chrome ``trace_event`` JSON and JSONL event streams.

:func:`chrome_trace` converts a kernel :class:`~repro.core.trace.Trace`
into the Trace Event Format that ``chrome://tracing`` and Perfetto
(https://ui.perfetto.dev) load directly:

* one lane (``tid``) per task, named via ``thread_name`` metadata;
* one complete slice (``ph: "X"``) per executed atomic step, with the
  effect as the slice name and chosen/fanout + vector clock in ``args``;
* instant events (``ph: "i"``) for sends, notifies and emits;
* flow arrows (``ph: "s"`` → ``ph: "f"``) pairing every message send
  with its delivery, keyed by the envelope's global sequence number;
* counter lanes (``ph: "C"``) tracking each mailbox's pending depth.

The time axis is *logical*: one scheduler step is ``scale`` microseconds
(the kernel has no wall clock — determinism is the point).  The module
only reads public ``Trace``/``TraceEvent`` attributes, so it stays free
of kernel imports and the kernel free of JSON concerns.
"""

from __future__ import annotations

import json
from typing import Any, Optional

__all__ = ["chrome_trace", "jsonl_events", "chrome_trace_from_spans"]

#: microseconds of Chrome-trace time per scheduler step
DEFAULT_SCALE = 10


def _vclock_dict(vclock: Any) -> Optional[dict[str, int]]:
    if vclock is None:
        return None
    return {str(pid): t for pid, t in vclock.components()}


def _lane(event: Any) -> int:
    """Stable per-task lane id: spawn-order index when recorded."""
    return event.task_ltid if event.task_ltid >= 0 else event.task_tid


def chrome_trace(trace: Any, *, pid: int = 1,
                 scale: int = DEFAULT_SCALE) -> dict[str, Any]:
    """Render ``trace`` as a Chrome Trace Event Format object.

    Returns a JSON-ready dict; ``json.dump`` it to a ``.json`` file and
    open that file in ``chrome://tracing`` or Perfetto.
    """
    events: list[dict[str, Any]] = [{
        "ph": "M", "name": "process_name", "pid": pid, "tid": 0, "ts": 0,
        "args": {"name": "repro kernel"},
    }]

    # lanes: first-seen order of tasks, named metadata + sort order
    lanes: dict[int, str] = {}
    for e in trace.events:
        tid = _lane(e)
        if tid not in lanes:
            lanes[tid] = e.task_name
    for sort_index, (tid, name) in enumerate(lanes.items()):
        events.append({"ph": "M", "name": "thread_name", "pid": pid,
                       "tid": tid, "ts": 0, "args": {"name": name}})
        events.append({"ph": "M", "name": "thread_sort_index", "pid": pid,
                       "tid": tid, "ts": 0,
                       "args": {"sort_index": sort_index}})

    depths: dict[str, int] = {}
    for e in trace.events:
        tid = _lane(e)
        ts = (e.step - 1) * scale
        args: dict[str, Any] = {"kind": e.kind,
                                "chosen": f"{e.chosen_index + 1}/{e.fanout}"}
        if e.payload_repr:
            args["payload"] = e.payload_repr
        vc = _vclock_dict(e.vclock)
        if vc is not None:
            args["vclock"] = vc
        # events minted under a causal request context carry the id —
        # it lands on the slice and on both ends of the flow arrow so
        # Perfetto can pull one request's arrows out of the swarm
        req = getattr(e, "request_id", None)
        if req is not None:
            args["request_id"] = req
        events.append({"ph": "X", "name": e.effect_repr, "cat": e.kind,
                       "pid": pid, "tid": tid, "ts": ts, "dur": scale - 2,
                       "args": args})

        if e.recv_seq is not None:
            rec: dict[str, Any] = {"ph": "f", "bp": "e", "name": "message",
                                   "cat": "message", "id": e.recv_seq,
                                   "pid": pid, "tid": tid, "ts": ts + 1}
            if req is not None:
                rec["args"] = {"request_id": req}
            events.append(rec)
        if e.msg_seq is not None:
            rec = {"ph": "s", "name": "message", "cat": "message",
                   "id": e.msg_seq, "pid": pid, "tid": tid, "ts": ts + 1}
            if req is not None:
                rec["args"] = {"request_id": req}
            events.append(rec)
        if e.msg_seq is not None \
                or e.effect_repr.startswith(("notify", "emit")):
            events.append({"ph": "i", "s": "t", "name": e.effect_repr,
                           "cat": "instant", "pid": pid, "tid": tid,
                           "ts": ts + 1})

        # mailbox pending-depth counter lanes, reconstructed from the
        # send/deliver sequence (one Chrome counter track per mailbox)
        if e.recv_seq is not None and e.recv_mbox is not None:
            depths[e.recv_mbox] = depths.get(e.recv_mbox, 0) - 1
            events.append({"ph": "C", "name": f"mailbox {e.recv_mbox}",
                           "pid": pid, "tid": tid, "ts": ts + 2,
                           "args": {"pending": depths[e.recv_mbox]}})
        if e.msg_seq is not None and e.obj_name is not None:
            depths[e.obj_name] = depths.get(e.obj_name, 0) + 1
            events.append({"ph": "C", "name": f"mailbox {e.obj_name}",
                           "pid": pid, "tid": tid, "ts": ts + 2,
                           "args": {"pending": depths[e.obj_name]}})

    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "source": "repro.obs.export",
            "outcome": trace.outcome,
            "detail": trace.detail,
            "steps": len(trace.events),
            "logical_step_us": scale,
        },
    }


def chrome_trace_from_spans(spans: list, *, pid: int = 1,
                            source: str = "repro.obs.profile",
                            meta: Optional[dict[str, Any]] = None
                            ) -> dict[str, Any]:
    """Render profiler spans as a Chrome Trace Event Format object.

    ``spans`` is a list of ``(name, lane, t0, t1)`` tuples with
    wall-clock seconds, as collected by
    :class:`repro.obs.profile.Profiler` with ``spans=True`` — unlike
    :func:`chrome_trace`, the time axis here is *real*.  Lanes map to
    Chrome ``tid`` tracks in first-seen order; timestamps are rebased to
    the earliest span so the trace starts at t=0.
    """
    events: list[dict[str, Any]] = [{
        "ph": "M", "name": "process_name", "pid": pid, "tid": 0, "ts": 0,
        "args": {"name": source},
    }]
    lanes: dict[str, int] = {}
    base = min((t0 for _, _, t0, _ in spans), default=0.0)
    for name, lane, t0, t1 in spans:
        tid = lanes.get(lane)
        if tid is None:
            tid = lanes[lane] = len(lanes) + 1
            events.append({"ph": "M", "name": "thread_name", "pid": pid,
                           "tid": tid, "ts": 0, "args": {"name": lane}})
            events.append({"ph": "M", "name": "thread_sort_index",
                           "pid": pid, "tid": tid, "ts": 0,
                           "args": {"sort_index": tid}})
        events.append({"ph": "X", "name": name, "cat": "bench", "pid": pid,
                       "tid": tid, "ts": round((t0 - base) * 1e6, 3),
                       "dur": round((t1 - t0) * 1e6, 3), "args": {}})
    payload = {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {"source": source, "spans": len(spans)},
    }
    if meta:
        payload["otherData"].update(meta)
    return payload


def jsonl_events(trace: Any) -> str:
    """Render ``trace`` as a JSONL structured-event stream.

    One JSON object per executed step, in execution order, followed by a
    single ``summary`` record — greppable, streamable, and diffable
    across replayed runs.
    """
    lines = []
    for e in trace.events:
        record: dict[str, Any] = {
            "type": "step",
            "step": e.step,
            "task": e.task_name,
            "ltid": e.task_ltid,
            "kind": e.kind,
            "effect": e.effect_repr,
            "chosen": e.chosen_index,
            "fanout": e.fanout,
        }
        if e.payload_repr is not None:
            record["payload"] = e.payload_repr
        if e.obj_name is not None:
            record["object"] = e.obj_name
        if e.msg_seq is not None:
            record["msg_seq"] = e.msg_seq
        if e.recv_seq is not None:
            record["recv_seq"] = e.recv_seq
            record["recv_mbox"] = e.recv_mbox
        vc = _vclock_dict(e.vclock)
        if vc is not None:
            record["vclock"] = vc
        if e.access_var is not None:
            record["access"] = {"var": e.access_var,
                                "kind": e.access_kind.value
                                if e.access_kind else None}
        lines.append(json.dumps(record, sort_keys=True))
    lines.append(json.dumps({
        "type": "summary",
        "outcome": trace.outcome,
        "detail": trace.detail,
        "events": len(trace.events),
        "output": [repr(v) for v in trace.output],
    }, sort_keys=True))
    return "\n".join(lines) + "\n"
