"""Causal counterexample explanation for explorer violations.

``explore()`` answers *whether* a violation is reachable and hands back
a witness schedule; this module answers *why*.  Three stages:

1. **Minimization** (:func:`minimize_schedule`) — delta-debugging in
   decision space: truncate the schedule prefix (the first-choice tail
   re-completes the run) and zero out individual decisions, keeping any
   mutation under which the violation still replays, iterated to a
   fixpoint.  Every candidate is *re-executed*, so the minimized
   schedule is a real execution by construction.
2. **Critical pair** (:func:`find_critical_pair`) — the deepest
   decision of the minimized run where choosing a different enabled
   transition avoids the violation.  The transition executed there and
   the alternative that would have saved the run are the racing pair:
   before it the violation was avoidable, after it every explored
   continuation fails.
3. **Narrative** (:class:`Explanation`) — the minimized schedule, the
   critical pair, and the hazards the monitor bus raised on the minimal
   run, rendered as text (:meth:`Explanation.narrative`) or as a
   self-contained HTML report (:meth:`Explanation.to_html`).

Entry point: :func:`explain_program` explores a program, picks the
first deadlock/failure witness, and explains it — what the CLI's
``repro explain`` command prints.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Optional

from ..core.errors import ReplayError
from ..core.trace import Trace, TraceEvent
from .monitors import MonitorBus

__all__ = ["Explanation", "CriticalPair", "minimize_schedule",
           "find_critical_pair", "explain_trace", "explain_program",
           "postmortem_narrative"]

#: predicate over (trace, observation): True = the violation is present
Predicate = Callable[[Trace, Any], bool]


def _run(program, schedule, max_steps):
    """Replay one candidate schedule; ReplayError = infeasible mutant."""
    from ..verify.explorer import run_schedule
    try:
        return run_schedule(program, list(schedule), max_steps=max_steps)
    except ReplayError:
        return None, None


@dataclass(frozen=True)
class CriticalPair:
    """The last decision where the violation was still avoidable."""

    #: index into the minimized trace's event list
    step: int
    #: the transition the witness schedule executed there
    chosen: TraceEvent
    #: an alternative enabled at the same point that avoids the violation
    alternative: TraceEvent
    #: outcome of the run that takes the alternative
    alternative_outcome: str

    def describe(self) -> str:
        return (f"critical decision at step {self.step + 1}: scheduling "
                f"[{self.chosen.task_name}: {self.chosen.effect_repr}] "
                f"instead of "
                f"[{self.alternative.task_name}: "
                f"{self.alternative.effect_repr}] "
                f"(the alternative run ends "
                f"{self.alternative_outcome!r})")


@dataclass
class Explanation:
    """Everything the explanation engine learned about one violation."""

    #: what was violated: "deadlock" | "failure" | caller-supplied label
    kind: str
    #: outcome detail of the minimized run (blocked-state listing, ...)
    detail: str
    #: the unminimized witness schedule explore() found
    original_schedule: list
    #: the minimized schedule (never longer than the original)
    schedule: list
    #: full replay of the minimized schedule
    trace: Trace
    #: frozen observation of the minimized run
    observation: Any
    critical: Optional[CriticalPair]
    #: hazards the monitor bus raised on the minimized run
    hazards: list = field(default_factory=list)
    #: replays spent minimizing + locating the critical pair
    replays: int = 0

    # ------------------------------------------------------------------
    def refuted_misconceptions(self) -> tuple:
        ids = sorted({mid for h in self.hazards for mid in h.refutes})
        return tuple(ids)

    def narrative(self) -> str:
        """The human-readable causal story of the violation."""
        lines = [
            f"counterexample: {self.kind}"
            + (f" ({self.detail})" if self.detail else ""),
            f"minimized schedule: {len(self.schedule)} decisions "
            f"(witness had {len(self.original_schedule)}; "
            f"{self.replays} replays spent)",
            "",
        ]
        crit_at = self.critical.step if self.critical is not None else -1
        for i, event in enumerate(self.trace.events):
            marker = ">" if i == crit_at else " "
            lines.append(f" {marker} {event.describe()}")
        lines.append(f"   outcome: {self.trace.outcome}"
                     + (f" ({self.trace.detail})"
                        if self.trace.detail else ""))
        if self.critical is not None:
            lines += [
                "",
                self.critical.describe(),
                "   Up to that point the violation was avoidable; once "
                "the marked transition runs, every explored continuation "
                "reaches it.",
            ]
        if self.hazards:
            lines.append("")
            lines.append("hazards on the minimal run:")
            lines += [f"  {h.describe()}" for h in self.hazards]
        refuted = self.refuted_misconceptions()
        if refuted:
            from ..misconceptions.catalog import by_id
            lines.append("")
            lines.append("misconceptions this execution refutes:")
            lines += [f"  {mid}: {by_id(mid).description}"
                      for mid in refuted]
        return "\n".join(lines)

    def to_html(self, title: str = "Counterexample explanation") -> str:
        """Self-contained HTML report (see :mod:`repro.obs.report`)."""
        from .report import html_report
        return html_report(self, title=title)


# ===========================================================================
# stage 1: delta-debugging minimization
# ===========================================================================

def minimize_schedule(program, schedule: list, predicate: Predicate,
                      *, max_steps: int = 200_000,
                      max_replays: int = 2000
                      ) -> tuple[list, Trace, Any, int]:
    """Shrink ``schedule`` while ``predicate(trace, obs)`` keeps holding.

    Two reduction moves, iterated to a fixpoint (or ``max_replays``):

    * *truncation* — drop a schedule suffix and let the deterministic
      first-choice tail complete the run (largest cut first, binary
      style);
    * *zeroing* — set one decision to 0, merging that branch into the
      tail's default path (shorter descriptions, fewer forced switches).

    Returns ``(schedule, trace, obs, replays)`` for the minimal form.
    The result always still satisfies the predicate: every candidate is
    re-executed and kept only on success.
    """
    replays = 0

    def attempt(candidate):
        nonlocal replays
        replays += 1
        trace, obs = _run(program, candidate, max_steps)
        if trace is not None and predicate(trace, obs):
            return trace, obs
        return None

    best = list(schedule)
    hit = attempt(best)
    if hit is None:
        raise ValueError("schedule does not reproduce the violation")
    best_trace, best_obs = hit
    # the effective decision sequence can be shorter than the input
    best = best_trace.schedule()

    changed = True
    while changed and replays < max_replays:
        changed = False
        # -- truncation: try big cuts first ----------------------------
        cut = len(best) // 2
        while cut >= 1 and replays < max_replays:
            candidate = best[:len(best) - cut]
            hit = attempt(candidate)
            if hit is not None:
                best = candidate
                best_trace, best_obs = hit
                changed = True
                cut = min(cut, len(best) // 2)
            else:
                cut //= 2
        # -- zeroing: default every remaining forced decision ----------
        i = len(best) - 1
        while i >= 0 and replays < max_replays:
            if best[i] != 0:
                candidate = best[:i] + [0] + best[i + 1:]
                hit = attempt(candidate)
                if hit is not None:
                    best = candidate
                    best_trace, best_obs = hit
                    changed = True
            i -= 1
        # trailing zeros are the tail policy's defaults: drop them
        while best and best[-1] == 0:
            shorter = best[:-1]
            hit = attempt(shorter)
            if hit is None:
                break
            best = shorter
            best_trace, best_obs = hit
            changed = True

    return best, best_trace, best_obs, replays


# ===========================================================================
# stage 2: the critical transition pair
# ===========================================================================

def find_critical_pair(program, trace: Trace, predicate: Predicate,
                       *, max_steps: int = 200_000
                       ) -> tuple[Optional[CriticalPair], int]:
    """Deepest decision of ``trace`` where an alternative avoids the
    violation; ``(None, replays)`` when every explored flip still fails
    (the violation is then already inevitable at the start)."""
    schedule = trace.schedule()
    replays = 0
    for depth in range(len(trace.events) - 1, -1, -1):
        event = trace.events[depth]
        for alt in range(event.fanout):
            if alt == event.chosen_index:
                continue
            replays += 1
            alt_trace, alt_obs = _run(
                program, schedule[:depth] + [alt], max_steps)
            if alt_trace is None or len(alt_trace.events) <= depth:
                continue
            if not predicate(alt_trace, alt_obs):
                return CriticalPair(
                    step=depth,
                    chosen=event,
                    alternative=alt_trace.events[depth],
                    alternative_outcome=alt_trace.outcome), replays
    return None, replays


# ===========================================================================
# stage 3: assembly
# ===========================================================================

def explain_trace(program, witness: Trace, predicate: Predicate,
                  *, kind: str = "violation", max_steps: int = 200_000,
                  detectors=None) -> Explanation:
    """Explain one witness trace of ``program`` (see module docstring)."""
    schedule, trace, obs, replays = minimize_schedule(
        program, witness.schedule(), predicate, max_steps=max_steps)
    critical, pair_replays = find_critical_pair(
        program, trace, predicate, max_steps=max_steps)
    bus = MonitorBus(detectors)
    bus.scan(trace)
    return Explanation(
        kind=kind, detail=trace.detail,
        original_schedule=witness.schedule(), schedule=schedule,
        trace=trace, observation=obs, critical=critical,
        hazards=list(bus.hazards), replays=replays + pair_replays)


def explain_program(program, *, kind: str = "auto",
                    predicate: Optional[Predicate] = None,
                    max_runs: int = 20_000, max_steps: int = 200_000,
                    reduce="all") -> Optional[Explanation]:
    """Explore ``program`` and explain its first violation.

    With the default ``kind="auto"``, a deadlock witness is preferred,
    then a task-failure witness; ``predicate`` (over ``(trace, obs)``)
    overrides the violation test entirely, in which case the witness
    search scans all recorded witnesses too.  Returns None when no
    violation was found within the budget.
    """
    from ..verify.explorer import explore
    result = explore(program, max_runs=max_runs, max_steps=max_steps,
                     reduce=reduce)
    witness: Optional[Trace] = None
    if predicate is not None:
        for candidate in (*result.deadlocks, *result.failures,
                          *result.witnesses.values()):
            obs = None
            if predicate(candidate, obs):
                witness = candidate
                break
        label = kind if kind != "auto" else "predicate violation"
    elif result.deadlocks:
        witness = result.deadlocks[0]
        predicate = lambda t, o: t.outcome == "deadlock"  # noqa: E731
        label = "deadlock" if kind == "auto" else kind
    elif result.failures:
        witness = result.failures[0]
        predicate = lambda t, o: t.outcome == "failed"  # noqa: E731
        label = "task failure" if kind == "auto" else kind
    else:
        return None
    if witness is None:
        return None
    return explain_trace(program, witness, predicate, kind=label,
                         max_steps=max_steps)


def explain_hazard(program, hazard_kind: str, *,
                   monitors: Optional[Callable] = None,
                   max_runs: int = 10_000,
                   max_steps: int = 200_000) -> Optional[Explanation]:
    """Find and explain a schedule that a monitor flags.

    Enumerates schedules (naive DFS, same walk as the explorer's
    unreduced mode) with a fresh monitor bus per run until one raises a
    hazard whose ``kind`` equals ``hazard_kind`` — a
    ``protocol-violation``, ``data-race``, ``lost-wakeup``, ... — then
    minimizes that witness under the predicate "a re-scan still flags
    it".  ``monitors`` is a zero-arg bus factory (the same shape
    ``explore(monitors=...)`` takes); None uses the default detectors.
    Returns None when no run inside the budget is flagged.
    """
    from ..verify.explorer import run_schedule

    def fresh_bus() -> MonitorBus:
        return monitors() if monitors is not None else MonitorBus()

    def flags(trace: Trace) -> bool:
        bus = fresh_bus()
        bus.scan(trace)
        return any(h.kind == hazard_kind for h in bus.hazards)

    prefix: list[int] = []
    runs = 0
    while runs < max_runs:
        runs += 1
        bus = fresh_bus()
        trace, _obs = run_schedule(program, list(prefix),
                                   max_steps=max_steps, monitors=bus)
        if any(h.kind == hazard_kind for h in bus.hazards):
            return explain_trace(program, trace,
                                 lambda t, o: flags(t),
                                 kind=hazard_kind, max_steps=max_steps,
                                 detectors=fresh_bus().detectors)
        decisions = trace.decisions()
        d = len(decisions) - 1
        while d >= 0 and decisions[d][0] + 1 >= decisions[d][1]:
            d -= 1
        if d < 0:
            break
        prefix = [idx for idx, _ in decisions[:d]] + [decisions[d][0] + 1]
    return None


# ===========================================================================
# telemetry postmortems
# ===========================================================================

#: flight-recorder event kinds worth calling out in a postmortem, with
#: the story each one tells (ordered roughly by how alarming they are)
_PM_NOTABLE = {
    "cluster-failure": "actor failed",
    "cluster-down": "peer declared DOWN",
    "cluster-dead-letter": "message dead-lettered",
    "cluster-retry": "reliable envelope retransmitted",
    "cluster-suspect": "peer suspected",
    "cluster-stage": "remote mailbox full, arrival staged",
    "cluster-park": "sender parked on credit",
    "cluster-recover": "peer recovered",
}


def postmortem_narrative(kind: str, detail: Optional[dict],
                         node_events: dict[str, list],
                         alerts: Optional[list] = None) -> str:
    """Explain-style prose for a telemetry postmortem bundle.

    Same philosophy as :class:`Explanation`: lead with what happened,
    then the evidence — the tail of each node's flight recorder with
    the alarming events called out, the cross-node send/receive pairs
    that bracket the incident, and the alert states at dump time.
    ``node_events`` maps node name to
    :meth:`~repro.obs.telemetry.FlightRecorder.dump` output.
    """
    lines = [f"POSTMORTEM: {kind}"]
    if detail:
        parts = ", ".join(f"{k}={v!r}" for k, v in sorted(detail.items())
                          if not isinstance(v, (dict, list)))
        if parts:
            lines.append(f"  trigger: {parts}")
    firing = [a for a in (alerts or []) if a.get("state") == "firing"]
    for a in firing:
        lines.append(f"  alert firing: {a.get('slo')} on {a.get('node')} "
                     f"({a.get('metric')} = {a.get('short_value')} short / "
                     f"{a.get('long_value')} long, "
                     f"threshold {a.get('threshold')})")

    # cross-node flow pairing: a send whose flow id also appears as a
    # receive on another node proves the flight recorders overlap in
    # time — the merged trace will draw that hop
    sends: dict[int, str] = {}
    recvs: dict[int, str] = {}
    for node, events in node_events.items():
        for e in events:
            ms, rs = e.get("msg_seq"), e.get("recv_seq")
            if ms is not None:
                sends[ms] = node
            if rs is not None:
                recvs[rs] = node
    paired = set(sends) & set(recvs)

    for node in sorted(node_events):
        events = node_events[node]
        notable = [e for e in events if e.get("kind") in _PM_NOTABLE]
        lines.append(f"  node {node!r}: {len(events)} event(s) in the "
                     f"flight window, {len(notable)} notable")
        for e in notable[-6:]:
            what = _PM_NOTABLE[e["kind"]]
            who = e.get("actor") or e.get("peer") or ""
            extra = e.get("extra") or {}
            why = extra.get("why") or extra.get("error") or ""
            lines.append(f"    step {e.get('step', 0)}: {what}"
                         + (f" ({who})" if who else "")
                         + (f" — {why}" if why else ""))
    if paired:
        lines.append(f"  {len(paired)} message hop(s) pair across nodes "
                     f"in the merged trace (send and receive both "
                     f"captured)")
    elif len(node_events) > 1:
        lines.append("  no cross-node hops pair inside the flight "
                     "windows — recorders may not overlap in time")
    if not any(node_events.values()):
        lines.append("  (all flight recorders were empty)")
    return "\n".join(lines)
