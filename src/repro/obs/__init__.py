"""repro.obs — cross-cutting instrumentation for the simulation kernel.

The paper's pedagogy rests on making interleavings *visible*: students
fail the Test-1 bridge questions precisely because they cannot see which
schedules are reachable.  This subsystem makes every layer observable:

* :class:`KernelMetrics` — counters / high-water gauges / histograms the
  scheduler fills in while it runs (context switches, lock contention
  and wait times, mailbox depth, message latency, per-task run/block
  time — all in deterministic logical ticks, so two runs of the same
  schedule report identical numbers);
* :func:`chrome_trace` / :func:`jsonl_events` — export any
  :class:`~repro.core.trace.Trace` as Chrome ``trace_event`` JSON (one
  lane per task, flow arrows for message send→receive; opens in
  ``chrome://tracing`` and Perfetto) or as a JSONL structured-event
  stream;
* :class:`MonitorBus` + the shipped :class:`Detector` set — online
  hazard monitors fed each :class:`~repro.core.trace.TraceEvent` as it
  happens (``Scheduler(monitors=...)`` /
  ``explore(..., monitors=True)``): deadlock cycles, lost wakeups,
  starvation, message reordering / mailbox saturation, data races,
  task failures, and misconception-refuting witnesses;
* :class:`Protocol` + :class:`ProtocolMonitor` — session-typed
  conformance checking: declarative message-sequence specs (a small
  combinator/mini-language: ``REQ -> (REPLY | ERR)``, repetition,
  alternation, turn-taking) checked online against the same event
  streams, across all three runtimes and the cluster, emitting
  ``protocol-violation`` hazards with the offending message, the
  automaton state and the expected-next set;
* :func:`explain_program` / :func:`explain_trace` — causal
  counterexample explanation for explorer violations: delta-debugging
  schedule minimization, the critical racing transition pair, and a
  narrative rendered as text or a self-contained HTML report
  (:func:`html_report`).

Collection is strictly opt-in: a scheduler created without
``metrics=``/``monitors=`` executes the exact same instruction
sequence with no bookkeeping beyond a single ``is None`` test per
step, and the monitors reconstruct kernel state purely from the event
stream — they can never perturb scheduling, fingerprints or sleep
sets.
"""

from .causal import (SEGMENTS, CausalTracer, RequestContext, RequestTrace,
                     Span, build_requests, chrome_trace_from_causal,
                     critical_path, critical_report, current_context,
                     format_critical, format_requests, format_whatif,
                     parse_speedup, rank_targets, trace_cluster_cell,
                     whatif_report)
from .explain import (CriticalPair, Explanation, explain_hazard,
                      explain_program, explain_trace, find_critical_pair,
                      minimize_schedule, postmortem_narrative)
from .export import chrome_trace, chrome_trace_from_spans, jsonl_events
from .metrics import Histogram, KernelMetrics
from .profile import FakeClock, Profiler, wall_clock
from .monitors import (DeadlockDetector, Detector, FailureDetector, Hazard,
                       KernelView, LostWakeupDetector, MessageOrderDetector,
                       MonitorBus, RaceDetector, StarvationDetector,
                       WitnessDetector, default_detectors, trace_locksets)
from .protocol import (PExpr, Protocol, ProtocolMachine, ProtocolMonitor,
                       at_most_one_outstanding, kind_from_repr,
                       message_kind, protocol_bus, request_reply,
                       turn_taking)
from .report import html_report
from .telemetry import (SLO, Aggregator, Alert, FlightRecorder, SLOEngine,
                        TelemetryAgent, TimeSeries, default_slos,
                        render_top)

__all__ = [
    "Histogram", "KernelMetrics", "chrome_trace", "jsonl_events",
    "chrome_trace_from_spans", "Profiler", "FakeClock", "wall_clock",
    "Hazard", "KernelView", "Detector", "MonitorBus",
    "DeadlockDetector", "LostWakeupDetector", "StarvationDetector",
    "MessageOrderDetector", "RaceDetector", "FailureDetector",
    "WitnessDetector", "default_detectors", "trace_locksets",
    "Explanation", "CriticalPair", "minimize_schedule",
    "find_critical_pair", "explain_trace", "explain_program",
    "explain_hazard",
    "postmortem_narrative", "html_report",
    "TimeSeries", "Aggregator", "SLO", "SLOEngine", "Alert",
    "FlightRecorder", "TelemetryAgent", "default_slos", "render_top",
    "PExpr", "Protocol", "ProtocolMachine", "ProtocolMonitor",
    "protocol_bus", "turn_taking", "at_most_one_outstanding",
    "request_reply", "message_kind", "kind_from_repr",
    "SEGMENTS", "CausalTracer", "RequestContext", "current_context",
    "Span", "RequestTrace", "build_requests", "critical_path",
    "critical_report", "whatif_report", "rank_targets", "parse_speedup",
    "chrome_trace_from_causal", "format_critical", "format_whatif",
    "format_requests", "trace_cluster_cell",
]
