"""repro.obs — cross-cutting instrumentation for the simulation kernel.

The paper's pedagogy rests on making interleavings *visible*: students
fail the Test-1 bridge questions precisely because they cannot see which
schedules are reachable.  This subsystem makes every layer observable:

* :class:`KernelMetrics` — counters / high-water gauges / histograms the
  scheduler fills in while it runs (context switches, lock contention
  and wait times, mailbox depth, message latency, per-task run/block
  time — all in deterministic logical ticks, so two runs of the same
  schedule report identical numbers);
* :func:`chrome_trace` / :func:`jsonl_events` — export any
  :class:`~repro.core.trace.Trace` as Chrome ``trace_event`` JSON (one
  lane per task, flow arrows for message send→receive; opens in
  ``chrome://tracing`` and Perfetto) or as a JSONL structured-event
  stream.

Collection is strictly opt-in: a scheduler created without
``metrics=`` executes the exact same instruction sequence with no
bookkeeping beyond a single ``is None`` test per step.
"""

from .export import chrome_trace, jsonl_events
from .metrics import Histogram, KernelMetrics

__all__ = ["Histogram", "KernelMetrics", "chrome_trace", "jsonl_events"]
