"""Self-contained HTML rendering of an :class:`Explanation`.

One file, no external assets: the report travels as a CI artifact or an
email attachment and opens anywhere.  Layout: a summary strip (what was
violated, schedule sizes, replay cost), the minimized schedule as a
table with the critical decision highlighted, the causal narrative, the
monitor-bus hazards colored by severity, and the refuted
misconceptions.
"""

from __future__ import annotations

from html import escape
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from .explain import Explanation

__all__ = ["html_report"]

_CSS = """
 body { font-family: -apple-system, 'Segoe UI', Roboto, sans-serif;
        margin: 2rem auto; max-width: 62rem; color: #1a202c; }
 h1 { font-size: 1.4rem; } h2 { font-size: 1.1rem; margin-top: 1.8rem; }
 .cards { display: flex; gap: 1rem; flex-wrap: wrap; }
 .card { background: #f7fafc; border: 1px solid #e2e8f0; border-radius: 6px;
         padding: .6rem 1rem; }
 .card .k { font-size: .75rem; color: #718096; text-transform: uppercase; }
 .card .v { font-size: 1.1rem; font-weight: 600; }
 table { border-collapse: collapse; width: 100%; font-size: .85rem; }
 th, td { text-align: left; padding: .25rem .6rem;
          border-bottom: 1px solid #edf2f7; font-family: ui-monospace,
          SFMono-Regular, Menlo, monospace; }
 th { background: #edf2f7; font-family: inherit; }
 tr.critical td { background: #fff5f5; border-top: 2px solid #e53e3e;
                  border-bottom: 2px solid #e53e3e; font-weight: 600; }
 .haz { margin: .3rem 0; padding: .45rem .8rem; border-radius: 4px;
        font-size: .9rem; }
 .haz.error { background: #fff5f5; border-left: 4px solid #e53e3e; }
 .haz.warning { background: #fffaf0; border-left: 4px solid #dd6b20; }
 .haz.info { background: #ebf8ff; border-left: 4px solid #3182ce; }
 pre { background: #f7fafc; border: 1px solid #e2e8f0; border-radius: 6px;
       padding: 1rem; overflow-x: auto; font-size: .8rem; }
 .muted { color: #718096; }
"""


def _card(label: str, value) -> str:
    return (f'<div class="card"><div class="k">{escape(label)}</div>'
            f'<div class="v">{escape(str(value))}</div></div>')


def html_report(explanation: "Explanation",
                title: str = "Counterexample explanation") -> str:
    """Render ``explanation`` as one self-contained HTML document."""
    exp = explanation
    crit_at = exp.critical.step if exp.critical is not None else -1

    rows = []
    for i, event in enumerate(exp.trace.events):
        cls = ' class="critical"' if i == crit_at else ""
        rows.append(
            f"<tr{cls}><td>{event.step}</td>"
            f"<td>{escape(event.task_name)}</td>"
            f"<td>{escape(event.kind)}</td>"
            f"<td>{escape(event.effect_repr)}</td>"
            f"<td>{event.chosen_index + 1}/{event.fanout}</td></tr>")

    hazard_divs = [
        f'<div class="haz {escape(h.severity)}">{escape(h.describe())}'
        "</div>"
        for h in exp.hazards
    ] or ['<p class="muted">no hazards raised on the minimal run</p>']

    critical_html = ""
    if exp.critical is not None:
        critical_html = (
            "<h2>Critical transition pair</h2>"
            f"<p>{escape(exp.critical.describe())}</p>"
            '<p class="muted">Up to that decision the violation was '
            "avoidable; once the highlighted transition runs, every "
            "explored continuation reaches it.</p>")

    refuted = exp.refuted_misconceptions()
    refuted_html = ""
    if refuted:
        from ..misconceptions.catalog import by_id
        items = "".join(
            f"<li><b>{escape(mid)}</b>: "
            f"{escape(by_id(mid).description)}</li>" for mid in refuted)
        refuted_html = ("<h2>Misconceptions this execution refutes</h2>"
                        f"<ul>{items}</ul>")

    return f"""<!doctype html>
<html lang="en"><head><meta charset="utf-8">
<title>{escape(title)}</title>
<style>{_CSS}</style></head>
<body>
<h1>{escape(title)}</h1>
<div class="cards">
{_card("violation", exp.kind)}
{_card("minimized decisions", len(exp.schedule))}
{_card("witness decisions", len(exp.original_schedule))}
{_card("replays spent", exp.replays)}
{_card("outcome", exp.trace.outcome)}
</div>
{critical_html}
<h2>Minimized schedule</h2>
<table>
<tr><th>step</th><th>task</th><th>kind</th><th>effect</th>
<th>choice</th></tr>
{"".join(rows)}
</table>
<p class="muted">{escape(exp.trace.detail or "")}</p>
<h2>Hazards on the minimal run</h2>
{"".join(hazard_divs)}
{refuted_html}
<h2>Causal narrative</h2>
<pre>{escape(exp.narrative())}</pre>
</body></html>
"""
