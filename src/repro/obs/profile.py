"""Profiling for the *real* runtimes — threads, actors, coroutines.

The kernel's :class:`~repro.obs.metrics.KernelMetrics` counts logical
ticks on the deterministic scheduler; this module measures the three
runtimes the paper actually raced: wall-clock lock waits and monitor
contention on :mod:`repro.threads`, mailbox enqueue→dequeue latency and
queue depth on :mod:`repro.actors`, resume latency and ready-queue
residency on :mod:`repro.coroutines`.

A :class:`Profiler` is strictly opt-in, mirroring the kernel's
``Scheduler(metrics=...)`` pattern: every instrumented primitive takes
``profiler=None`` and its hot path pays one ``is None`` test — no
allocation, no call — when profiling is off.  When on, all updates go
through one internal lock (the profiler is shared across threads by
design), and every timestamp is read through the profiler's ``clock``
callable.  That clock is **the** wall-clock seam for the obs layer:
tests inject :class:`FakeClock` and get deterministic latencies, and
nothing in ``repro.obs`` calls ``time.*`` directly except the default
clock here.

Metric-name convention (flat keys, dotted namespaces)::

    lock.acquires / lock.contended / lock.wait_us        threads/sync
    monitor.waits / monitor.wakeups / monitor.notifies   threads/sync
    thread.started / thread.finished / thread.start_latency_us
    pool.tasks / pool.task_us                            threads/pool
    mailbox.enqueued / mailbox.processed                 actors/system
    mailbox.latency_us / mailbox.depth / mailbox.depth_max
    coro.resumes / coro.resume_us / coro.ready_wait_us   coroutines
    coroutine.resumes / coroutine.resume_us              coroutines/core

Durations are recorded in **microseconds** (float) so the histogram
percentiles read naturally next to throughput numbers.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Callable, Optional

from .metrics import Histogram

__all__ = ["Profiler", "FakeClock", "wall_clock", "METRIC_NAMES"]

#: the obs layer's single source of wall-clock time
wall_clock: Callable[[], float] = time.perf_counter

#: every metric name the instrumented runtimes emit (the docstring's
#: convention table, machine-checkable)
METRIC_NAMES: tuple[str, ...] = (
    "lock.acquires", "lock.contended", "lock.wait_us",
    "monitor.waits", "monitor.wakeups", "monitor.notifies",
    "monitor.wait_us",
    "thread.started", "thread.finished", "thread.start_latency_us",
    "pool.tasks", "pool.task_us",
    "mailbox.enqueued", "mailbox.processed", "mailbox.latency_us",
    "mailbox.depth", "mailbox.depth_max", "mailbox.batch_size",
    "executor.steals", "executor.parks", "executor.local_hits",
    "cluster.local_fastpath",
    "coro.resumes", "coro.resume_us", "coro.ready_wait_us",
    "coro.parks", "coro.wakes",
    "coroutine.resumes", "coroutine.resume_us",
)


class FakeClock:
    """Deterministic clock for tests: each call advances by ``step``.

    ``FakeClock(step=0.001)()`` returns 0.0, 0.001, 0.002, ... — so any
    code path that brackets work with two clock reads measures exactly
    ``step`` seconds, run after run.
    """

    def __init__(self, step: float = 0.001, start: float = 0.0):
        self.step = step
        self.t = start
        self.calls = 0

    def __call__(self) -> float:
        value = self.t
        self.t += self.step
        self.calls += 1
        return value


class Profiler:
    """Counter/gauge/histogram sink the real runtimes write into.

    Create one, pass it to the primitives under test
    (``Monitor(profiler=...)``, ``ActorSystem(profiler=...)``,
    ``CoScheduler(profiler=...)`` ...), read :meth:`snapshot` when the
    workload finishes.  Thread-safe; share one instance across all the
    threads of a run.

    ``spans=True`` additionally retains ``(name, lane, t0, t1)`` span
    records for Chrome-trace export via
    :func:`repro.obs.export.chrome_trace_from_spans` — off by default
    because spans grow with the workload.
    """

    __slots__ = ("clock", "counters", "gauges", "histograms", "spans",
                 "_lock", "_t0")

    def __init__(self, clock: Optional[Callable[[], float]] = None,
                 spans: bool = False):
        self.clock = clock if clock is not None else wall_clock
        self.counters: dict[str, int] = {}
        #: high-water marks (monotone max)
        self.gauges: dict[str, float] = {}
        self.histograms: dict[str, Histogram] = {}
        self.spans: Optional[list[tuple[str, str, float, float]]] = \
            [] if spans else None
        self._lock = threading.Lock()
        self._t0 = self.clock()

    # -- writers (called from runtime hot paths, profiler != None) ------
    def now(self) -> float:
        return self.clock()

    def elapsed(self) -> float:
        """Seconds since the profiler was created."""
        return self.clock() - self._t0

    def inc(self, name: str, delta: int = 1) -> None:
        with self._lock:
            self.counters[name] = self.counters.get(name, 0) + delta

    def gauge_max(self, name: str, value: float) -> None:
        with self._lock:
            if value > self.gauges.get(name, 0):
                self.gauges[name] = value

    def observe(self, name: str, value: float) -> None:
        """Record a raw value (depth, size ...) into a histogram."""
        with self._lock:
            hist = self.histograms.get(name)
            if hist is None:
                hist = self.histograms[name] = Histogram()
            hist.record(value)

    def observe_us(self, name: str, seconds: float) -> None:
        """Record a duration given in seconds, stored as microseconds."""
        self.observe(name, seconds * 1e6)

    def span(self, name: str, lane: str, t0: float, t1: float) -> None:
        if self.spans is not None:
            with self._lock:
                self.spans.append((name, lane, t0, t1))

    def timed(self, name: str) -> "_Timed":
        """``with profiler.timed("phase"): ...`` — not for hot paths."""
        return _Timed(self, name)

    # -- readers --------------------------------------------------------
    #
    # Every reader below snapshots under ``_lock`` — the same lock every
    # writer holds — so a snapshot racing concurrent ``record()`` calls
    # can never observe a torn histogram (a count that doesn't match its
    # total/samples) or a counter mid-increment.  The telemetry agent
    # snapshots at heartbeat cadence from the cluster timer thread while
    # dispatch workers record; this consistency is load-bearing (and
    # regression-tested with a hammering thread).

    def get(self, name: str) -> int:
        with self._lock:
            return self.counters.get(name, 0)

    def rate(self, name: str) -> float:
        """Counter per elapsed second (0.0 when no time has passed)."""
        elapsed = self.elapsed()
        return self.get(name) / elapsed if elapsed > 0 else 0.0

    def snapshot(self) -> dict[str, Any]:
        """JSON-ready view of everything collected (deterministic order)."""
        with self._lock:
            return {
                "counters": dict(sorted(self.counters.items())),
                "gauges": dict(sorted(self.gauges.items())),
                "histograms": {k: h.snapshot()
                               for k, h in sorted(self.histograms.items())},
            }

    def delta(self, cursor: dict, max_samples: int = 256) -> dict:
        """Changed-since-cursor view for the telemetry wire format.

        ``cursor`` is caller-owned state (start with ``{}``) updated in
        place; each call returns only what moved since the previous one:

        * ``counters``/``gauges`` — the *cumulative* value of every key
          that changed (cumulative, not differenced, so a lost telemetry
          frame only delays an update instead of corrupting totals);
        * ``hists`` — per histogram with new samples: cumulative
          ``count``/``total``/``min``/``max`` plus the new samples in
          insertion order, stride-downsampled to ``max_samples`` (the
          cumulative fields stay exact even when samples are thinned).

        The whole view is taken under the profiler lock, so the
        count/total/samples triple of one histogram is never torn by a
        concurrent ``record()``.
        """
        seen_counters = cursor.setdefault("counters", {})
        seen_gauges = cursor.setdefault("gauges", {})
        seen_hist = cursor.setdefault("hists", {})
        with self._lock:
            counters = {}
            for name, value in self.counters.items():
                if seen_counters.get(name) != value:
                    seen_counters[name] = counters[name] = value
            gauges = {}
            for name, value in self.gauges.items():
                if seen_gauges.get(name) != value:
                    seen_gauges[name] = gauges[name] = value
            hists = {}
            for name, h in self.histograms.items():
                start = seen_hist.get(name, 0)
                if h.count <= start:
                    continue
                new = h.samples_since(start)
                if len(new) > max_samples:
                    stride = len(new) / max_samples
                    new = [new[int(i * stride)] for i in range(max_samples)]
                hists[name] = {
                    "count": h.count, "total": h.total,
                    "min": h.min, "max": h.max,
                    "samples": [round(float(s), 3) for s in new],
                }
                seen_hist[name] = h.count
            return {"counters": counters, "gauges": gauges, "hists": hists}

    def format(self) -> str:
        """Human-readable table of the snapshot."""
        snap = self.snapshot()
        lines = []
        if snap["counters"]:
            lines.append("counters:")
            for name, value in snap["counters"].items():
                lines.append(f"  {name:<28} {value}")
        if snap["gauges"]:
            lines.append("gauges (high water):")
            for name, value in snap["gauges"].items():
                lines.append(f"  {name:<28} {value}")
        if snap["histograms"]:
            lines.append("histograms (us unless noted):")
            for name, h in snap["histograms"].items():
                lines.append(
                    f"  {name:<28} n={h['count']} mean={h['mean']:.1f} "
                    f"p50={h['p50']:.1f} p95={h['p95']:.1f} "
                    f"p99={h['p99']:.1f}")
        return "\n".join(lines) or "(profiler recorded nothing)"

    def __repr__(self) -> str:
        return (f"<Profiler {len(self.counters)} counters, "
                f"{len(self.histograms)} histograms>")


class _Timed:
    __slots__ = ("_profiler", "_name", "_t0")

    def __init__(self, profiler: Profiler, name: str):
        self._profiler = profiler
        self._name = name

    def __enter__(self) -> "_Timed":
        self._t0 = self._profiler.now()
        return self

    def __exit__(self, *exc: Any) -> None:
        self._profiler.observe_us(self._name,
                                  self._profiler.now() - self._t0)
