"""The live telemetry plane — streaming metrics, SLOs, flight recording.

Everything observability built so far (PR 2–6) is post-hoc: profiles are
pulled after a run, traces merged offline, hazards detected in-process.
This module makes the cluster observable *while it runs*, in four
layers:

* :class:`TelemetryAgent` — attached to a :class:`ClusterNode`
  (``agent.attach(node)``), it snapshots the node's
  :class:`~repro.obs.profile.Profiler` / ``executor_stats()`` / cluster
  delivery state at heartbeat cadence into **delta-encoded TELEMETRY
  frames** and broadcasts them to every ALIVE peer over the existing
  transport.  Frames are fire-and-forget but *loss-tolerant by
  construction*: counters ship their cumulative value (only for keys
  that changed), so a dropped frame delays an update instead of
  corrupting a total, and histogram samples ship as
  "new-since-last-frame" slices whose cumulative count/total stay exact
  even when the sample list is downsampled.
* :class:`Aggregator` — every agent feeds its own aggregator with local
  and received frames, so each node holds the whole cluster's sliding-
  window time series: counters become rates, gauges keep their latest
  value, and per-frame histogram buckets merge
  (:meth:`~repro.obs.metrics.Histogram.merge`) into exact window
  percentiles.
* :class:`SLOEngine` — declarative :class:`SLO` objects (p95 latency,
  error ratio, mailbox depth, credit-stall time) evaluated with
  **multi-window burn-rate alerting**: an alert fires only when the
  measurement breaches ``threshold x burn_rate`` over *both* the short
  and the long window (transient spikes don't page; sustained burns
  do), and resolves when the short window recovers.  Firing alerts are
  published as first-class :class:`~repro.obs.monitors.Hazard` records
  on a :class:`~repro.obs.monitors.MonitorBus` via ``publish``.
* :class:`FlightRecorder` — an always-on bounded ring of the node's
  cluster events (zero allocation while idle: the ring is preallocated
  and one tuple per event is the entire cost).  On actor failure,
  peer-DOWN, or alert fire the agent dumps a **postmortem bundle**:
  its own ring plus every reachable peer's (pulled via
  ``status_of(..., flight=True)``), merged into a single Chrome trace
  with cross-node flow arrows, an ``explain``-style narrative, the
  active alerts, and the telemetry snapshot at the moment of failure.
  ``repro postmortem`` lists and unpacks the bundles; ``repro top``
  renders the aggregator live.

Wall-clock note: frames are stamped with ``time.time()`` (via the
agent's injectable ``time`` callable) because frames from different
processes must land on one comparable axis — the same reasoning as
:mod:`repro.cluster.observe`.  Node-internal cadence uses the node's
monotonic clock.
"""

from __future__ import annotations

import json
import os
import threading
from collections import deque
from dataclasses import dataclass
from typing import Any, Callable, Iterable, Optional

from .metrics import Histogram
from .monitors import Hazard, MonitorBus

__all__ = [
    "TimeSeries", "Aggregator", "SLO", "SLOEngine", "Alert",
    "FlightRecorder", "TelemetryAgent", "default_slos", "render_top",
]


# ===========================================================================
# sliding-window series
# ===========================================================================

class TimeSeries:
    """Bounded ``(ts, value)`` series with windowed rate/extremum queries.

    Retention is time-based (default 5 minutes): every append drops
    points older than ``retention`` seconds, so memory is bounded by
    frame cadence, not run length.
    """

    __slots__ = ("points", "retention")

    def __init__(self, retention: float = 300.0):
        self.points: deque = deque()
        self.retention = retention

    def add(self, ts: float, value: float) -> None:
        self.points.append((ts, value))
        cutoff = ts - self.retention
        while self.points and self.points[0][0] < cutoff:
            self.points.popleft()

    def latest(self) -> Optional[float]:
        return self.points[-1][1] if self.points else None

    def _floor(self, ts: float) -> Optional[tuple]:
        """Last point at or before ``ts`` (None when all are later)."""
        best = None
        for t, v in self.points:
            if t > ts:
                break
            best = (t, v)
        return best

    def rate(self, now: float, window: float) -> float:
        """Counter interpretation: increase per second over the window.

        Uses the last point at or before the window start as the base
        (falling back to the oldest point for short series), so a
        counter that stops moving decays to a zero rate as carried-
        forward points enter the window.
        """
        if len(self.points) < 2:
            return 0.0
        t1, v1 = self.points[-1]
        base = self._floor(now - window) or self.points[0]
        t0, v0 = base
        if t1 <= t0:
            return 0.0
        return max(0.0, (v1 - v0) / (t1 - t0))

    def delta(self, now: float, window: float) -> float:
        """Counter increase over the window (for ratio SLOs)."""
        if not self.points:
            return 0.0
        v1 = self.points[-1][1]
        base = self._floor(now - window) or self.points[0]
        return max(0.0, v1 - base[1])

    def window_max(self, now: float, window: float) -> float:
        """Gauge interpretation: maximum value observed in the window."""
        cutoff = now - window
        values = [v for t, v in self.points if t >= cutoff]
        if not values:
            return self.points[-1][1] if self.points else 0.0
        return max(values)

    def __len__(self) -> int:
        return len(self.points)


class _NodeSeries:
    """One node's telemetry state inside the aggregator."""

    __slots__ = ("counters", "gauges", "buckets", "hist_cum",
                 "last_seen", "frames", "lost", "last_seq", "missing")

    def __init__(self) -> None:
        self.counters: dict[str, TimeSeries] = {}
        self.gauges: dict[str, TimeSeries] = {}
        #: histogram name -> deque of (frame ts, per-frame Histogram)
        self.buckets: dict[str, deque] = {}
        #: histogram name -> last cumulative {"count","total","min","max"}
        self.hist_cum: dict[str, dict] = {}
        self.last_seen = 0.0
        self.frames = 0
        self.lost = 0          # gaps in the frame seq (dropped frames)
        self.last_seq = 0
        #: seqs counted as lost that may still arrive late — a late
        #: arrival is reordering, not loss, and backs the count out
        self.missing: set[int] = set()


class Aggregator:
    """Cluster-wide sliding-window time series built from frames.

    Thread-safe: frames arrive from the transport receive thread and
    the node's timer thread while ``repro top`` reads from the CLI
    thread.
    """

    def __init__(self, retention: float = 300.0,
                 clock: Optional[Callable[[], float]] = None):
        import time as _time
        self.retention = retention
        self.clock = clock if clock is not None else _time.time
        self._nodes: dict[str, _NodeSeries] = {}
        self._lock = threading.Lock()

    # -- ingest ---------------------------------------------------------
    def ingest(self, node: str, frame: dict) -> None:
        """Absorb one TELEMETRY frame (local or off the wire)."""
        ts = frame.get("ts")   # 0.0 is a valid stamp (injected clocks)
        ts = float(ts) if ts is not None else self.clock()
        with self._lock:
            ns = self._nodes.get(node)
            if ns is None:
                ns = self._nodes[node] = _NodeSeries()
            ns.frames += 1
            ns.last_seen = max(ns.last_seen, ts)
            seq = int(frame.get("seq") or 0)
            if seq:
                if ns.last_seq and seq > ns.last_seq + 1:
                    # a gap past the high-water mark looks like loss —
                    # but remember the hole (bounded), because UDP-ish
                    # transports reorder: if one of these seqs shows up
                    # late it was never lost and the count backs out
                    gap = seq - ns.last_seq - 1
                    ns.lost += gap
                    if gap <= 256 and len(ns.missing) < 1024:
                        ns.missing.update(range(ns.last_seq + 1, seq))
                elif seq in ns.missing:
                    ns.missing.discard(seq)
                    ns.lost -= 1
                # a duplicate (seq <= last_seq, not in missing) is a
                # no-op: replayed frames must not drive lost negative
                ns.last_seq = max(ns.last_seq, seq)

            changed = frame.get("counters") or {}
            for name, value in changed.items():
                series = ns.counters.get(name)
                if series is None:
                    series = ns.counters[name] = TimeSeries(self.retention)
                series.add(ts, float(value))
            # carry-forward: a counter absent from the frame did not
            # move — append its last value at this ts so rate windows
            # see the flat line and decay to zero instead of holding
            # the last burst forever
            for name, series in ns.counters.items():
                if name not in changed and series.points:
                    series.add(ts, series.points[-1][1])

            for name, value in (frame.get("gauges") or {}).items():
                series = ns.gauges.get(name)
                if series is None:
                    series = ns.gauges[name] = TimeSeries(self.retention)
                series.add(ts, float(value))

            cutoff = ts - self.retention
            for name, entry in (frame.get("hists") or {}).items():
                bucket = Histogram.of(entry.get("samples") or ())
                dq = ns.buckets.get(name)
                if dq is None:
                    dq = ns.buckets[name] = deque()
                if bucket.count:
                    dq.append((ts, bucket))
                while dq and dq[0][0] < cutoff:
                    dq.popleft()
                ns.hist_cum[name] = {
                    "count": entry.get("count", 0),
                    "total": entry.get("total", 0),
                    "min": entry.get("min"), "max": entry.get("max"),
                }

    # -- queries --------------------------------------------------------
    def nodes(self) -> list[str]:
        with self._lock:
            return sorted(self._nodes)

    def rate(self, node: str, name: str, window: float = 10.0,
             now: Optional[float] = None) -> float:
        now = self.clock() if now is None else now
        with self._lock:
            ns = self._nodes.get(node)
            series = ns.counters.get(name) if ns is not None else None
            return series.rate(now, window) if series is not None else 0.0

    def delta(self, node: str, name: str, window: float = 10.0,
              now: Optional[float] = None) -> float:
        now = self.clock() if now is None else now
        with self._lock:
            ns = self._nodes.get(node)
            series = ns.counters.get(name) if ns is not None else None
            return series.delta(now, window) if series is not None else 0.0

    def counter(self, node: str, name: str) -> float:
        """Latest cumulative value of a counter (0.0 when unseen)."""
        with self._lock:
            ns = self._nodes.get(node)
            series = ns.counters.get(name) if ns is not None else None
            value = series.latest() if series is not None else None
            return value if value is not None else 0.0

    def gauge(self, node: str, name: str, window: Optional[float] = None,
              now: Optional[float] = None) -> float:
        """Latest gauge value; with ``window``, the max over the window."""
        now = self.clock() if now is None else now
        with self._lock:
            ns = self._nodes.get(node)
            series = ns.gauges.get(name) if ns is not None else None
            if series is None:
                return 0.0
            if window is None:
                value = series.latest()
                return value if value is not None else 0.0
            return series.window_max(now, window)

    def window_histogram(self, node: str, name: str, window: float = 30.0,
                         now: Optional[float] = None) -> Histogram:
        """Merged histogram of every bucket inside the window."""
        now = self.clock() if now is None else now
        cutoff = now - window
        merged = Histogram()
        with self._lock:
            ns = self._nodes.get(node)
            dq = ns.buckets.get(name) if ns is not None else None
            if dq is not None:
                for ts, bucket in dq:
                    if ts >= cutoff:
                        merged.merge(bucket)
        return merged

    def percentile(self, node: str, name: str, p: float,
                   window: float = 30.0,
                   now: Optional[float] = None) -> Optional[float]:
        return self.window_histogram(node, name, window, now).percentile(p)

    def stall(self, node: str, name: str, window: float = 30.0,
              now: Optional[float] = None) -> float:
        """Total time (the histogram's unit, µs here) spent stalled in
        the window — the sum of every sample in the window's buckets."""
        return float(self.window_histogram(node, name, window, now).total)

    def cluster_rate(self, name: str, window: float = 10.0,
                     now: Optional[float] = None) -> float:
        now = self.clock() if now is None else now
        return sum(self.rate(node, name, window, now)
                   for node in self.nodes())

    def snapshot(self, window: float = 10.0,
                 now: Optional[float] = None) -> dict[str, Any]:
        """JSON-ready cluster view: rates, gauges, window percentiles."""
        now = self.clock() if now is None else now
        out: dict[str, Any] = {"ts": now, "window": window, "nodes": {}}
        for node in self.nodes():
            with self._lock:
                ns = self._nodes[node]
                counter_names = list(ns.counters)
                gauge_names = list(ns.gauges)
                hist_names = list(ns.buckets)
                meta = {"last_seen": ns.last_seen,
                        "age": round(max(0.0, now - ns.last_seen), 3),
                        "frames": ns.frames, "lost": ns.lost}
            rates = {name: round(self.rate(node, name, window, now), 3)
                     for name in sorted(counter_names)}
            gauges = {name: self.gauge(node, name)
                      for name in sorted(gauge_names)}
            hists = {}
            for name in sorted(hist_names):
                h = self.window_histogram(node, name, max(window, 30.0),
                                          now)
                if h.count:
                    hists[name] = {"count": h.count, "total": h.total,
                                   "mean": round(h.mean, 3),
                                   "p50": h.p50, "p95": h.p95,
                                   "p99": h.p99, "max": h.max}
            out["nodes"][node] = {**meta, "rates": rates,
                                  "gauges": gauges, "hists": hists}
        return out


# ===========================================================================
# SLOs with multi-window burn-rate alerting
# ===========================================================================

@dataclass(frozen=True)
class SLO:
    """One declarative service-level objective.

    ``metric`` is a tiny spec language over the aggregator:

    =================  ====================================================
    ``rate:NAME``      counter NAME's per-second rate over the window
    ``ratio:A/B``      counter A's window increase over counter B's
                       (0 when B did not move — no divide-by-zero pages)
    ``p95:NAME``       window percentile of histogram NAME (also p50/p99)
    ``gauge:NAME``     max value of gauge NAME over the window
    ``stall:NAME``     total µs accumulated by histogram NAME in-window
    =================  ====================================================

    The alert condition is the SRE burn-rate pattern: breach means
    ``measured >= threshold * burn_rate`` over **both** the short and
    the long window.  The long window proves the burn is sustained, the
    short window proves it is still happening (and drives resolution).
    """

    name: str
    metric: str
    threshold: float
    short_window: float = 5.0
    long_window: float = 60.0
    burn_rate: float = 1.0
    severity: str = "warning"
    description: str = ""

    def measure(self, agg: Aggregator, node: str, window: float,
                now: Optional[float] = None) -> float:
        kind, _, name = self.metric.partition(":")
        if kind == "rate":
            return agg.rate(node, name, window, now)
        if kind == "ratio":
            num, _, den = name.partition("/")
            bottom = agg.delta(node, den, window, now)
            if bottom <= 0:
                return 0.0
            return agg.delta(node, num, window, now) / bottom
        if kind in ("p50", "p95", "p99"):
            value = agg.percentile(node, name, float(kind[1:]), window, now)
            return value if value is not None else 0.0
        if kind == "gauge":
            return agg.gauge(node, name, window, now)
        if kind == "stall":
            return agg.stall(node, name, window, now)
        raise ValueError(f"unknown metric spec {self.metric!r}")


def default_slos() -> tuple[SLO, ...]:
    """The shipped objectives — one per telemetry-plane headline signal."""
    return (
        SLO("message-latency-p95", "p95:mailbox.latency_us",
            threshold=100_000.0, short_window=5.0, long_window=30.0,
            severity="warning",
            description="p95 local delivery latency stays under 100ms"),
        SLO("error-rate", "ratio:actor.failures/mailbox.processed",
            threshold=0.01, short_window=5.0, long_window=30.0,
            severity="error",
            description="fewer than 1% of processed messages fail"),
        SLO("mailbox-depth", "gauge:mailbox.depth",
            threshold=1024.0, short_window=5.0, long_window=30.0,
            severity="warning",
            description="total queued mail stays under 1024 messages"),
        SLO("credit-stall", "stall:cluster.credit_wait_us",
            threshold=1_000_000.0, short_window=5.0, long_window=30.0,
            severity="warning",
            description="senders spend under 1s/window parked on credit"),
    )


class Alert:
    """Mutable state of one (SLO, node) pair inside the engine."""

    __slots__ = ("slo", "node", "state", "fired_at", "resolved_at",
                 "short_value", "long_value")

    FIRING = "firing"
    RESOLVED = "resolved"

    def __init__(self, slo: SLO, node: str):
        self.slo = slo
        self.node = node
        self.state = Alert.RESOLVED
        self.fired_at = 0.0
        self.resolved_at = 0.0
        self.short_value = 0.0
        self.long_value = 0.0

    def as_dict(self) -> dict[str, Any]:
        return {"slo": self.slo.name, "node": self.node,
                "state": self.state, "severity": self.slo.severity,
                "metric": self.slo.metric,
                "threshold": self.slo.threshold,
                "burn_rate": self.slo.burn_rate,
                "short_value": round(self.short_value, 3),
                "long_value": round(self.long_value, 3),
                "fired_at": self.fired_at,
                "resolved_at": self.resolved_at}

    def __repr__(self) -> str:
        return f"<Alert {self.slo.name}@{self.node} {self.state}>"


class SLOEngine:
    """Evaluate SLOs against an aggregator; publish burns as hazards.

    ``evaluate`` is called at frame cadence.  A fire publishes one
    :class:`Hazard` on the bus (``slo-burn:<name>``; the MonitorBus
    dedups on (kind, message), so a re-fire on the same node after a
    resolve publishes again only if the message changed — the hazard
    log stays readable) and invokes ``on_fire(alert)`` — the agent's
    postmortem trigger.
    """

    def __init__(self, slos: Optional[Iterable[SLO]] = None,
                 bus: Optional[MonitorBus] = None,
                 on_fire: Optional[Callable[[Alert], None]] = None):
        self.slos: tuple[SLO, ...] = tuple(
            slos if slos is not None else default_slos())
        self.bus = bus
        self.on_fire = on_fire
        self._alerts: dict[tuple[str, str], Alert] = {}

    def evaluate(self, agg: Aggregator,
                 now: Optional[float] = None) -> list[Alert]:
        """One evaluation pass; returns alerts that newly fired."""
        now = agg.clock() if now is None else now
        fired = []
        for slo in self.slos:
            bar = slo.threshold * slo.burn_rate
            for node in agg.nodes():
                short = slo.measure(agg, node, slo.short_window, now)
                long = slo.measure(agg, node, slo.long_window, now)
                alert = self._alerts.get((slo.name, node))
                if alert is None:
                    alert = self._alerts[(slo.name, node)] = \
                        Alert(slo, node)
                alert.short_value, alert.long_value = short, long
                if short >= bar and long >= bar:
                    if alert.state != Alert.FIRING:
                        alert.state = Alert.FIRING
                        alert.fired_at = now
                        fired.append(alert)
                        self._publish(alert)
                        if self.on_fire is not None:
                            self.on_fire(alert)
                elif alert.state == Alert.FIRING and short < bar:
                    alert.state = Alert.RESOLVED
                    alert.resolved_at = now
        return fired

    def _publish(self, alert: Alert) -> None:
        if self.bus is None:
            return
        slo = alert.slo
        self.bus.publish(Hazard(
            kind=f"slo-burn:{slo.name}", severity=slo.severity,
            step=0, tasks=(alert.node,), objects=(slo.metric,),
            message=f"SLO {slo.name!r} burning on node {alert.node!r}: "
                    f"{slo.metric} = {alert.short_value:.3g} (short) / "
                    f"{alert.long_value:.3g} (long) >= "
                    f"{slo.threshold * slo.burn_rate:.3g}"
                    + (f" — {slo.description}" if slo.description else "")))

    def alerts(self) -> list[Alert]:
        return [self._alerts[k] for k in sorted(self._alerts)]

    def active(self) -> list[Alert]:
        return [a for a in self.alerts() if a.state == Alert.FIRING]

    def as_dicts(self) -> list[dict[str, Any]]:
        return [a.as_dict() for a in self.alerts()]


# ===========================================================================
# flight recorder
# ===========================================================================

class FlightRecorder:
    """Always-on bounded window of cluster events for postmortems.

    Recording is *lock-free*: one tuple appended to a bounded deque
    (``deque.append`` with ``maxlen`` is atomic under the GIL, evicting
    the oldest entry in O(1)), because this runs per message on the
    cluster hot path where even an uncontended lock acquisition is
    measurable at six figures of events per second.  The total-events
    counter is maintained racily and may undercount by a hair under
    heavy cross-thread fire — it feeds a telemetry gauge and the dump's
    step base, both of which only need monotonicity, not exactness.
    ``dump`` returns the surviving window oldest-first as
    :class:`~repro.cluster.observe.ClusterEvent`-compatible dicts, so a
    dump slots straight into ``merge_chrome_traces``.
    """

    __slots__ = ("node", "capacity", "_dq", "_n")

    def __init__(self, capacity: int = 2048, node: str = ""):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.node = node
        self.capacity = capacity
        self._dq: deque = deque(maxlen=capacity)
        self._n = 0

    def record(self, kind: str, actor: str = "", peer: str = "",
               msg_seq: Optional[int] = None,
               recv_seq: Optional[int] = None, ts: float = 0.0,
               extra: Optional[dict] = None) -> None:
        self._n += 1
        self._dq.append((kind, actor, peer, msg_seq, recv_seq, ts, extra))

    def __len__(self) -> int:
        return len(self._dq)

    @property
    def recorded(self) -> int:
        """Total events ever recorded (>= len once the window filled)."""
        return self._n

    def dump(self) -> list[dict]:
        raw = list(self._dq.copy())      # deque.copy is a GIL-atomic C op
        base = max(0, self._n - len(raw))
        return [{"kind": kind, "node": self.node, "actor": actor,
                 "peer": peer, "step": base + i, "ts": ts,
                 "msg_seq": msg_seq, "recv_seq": recv_seq,
                 "extra": extra or {}}
                for i, (kind, actor, peer, msg_seq, recv_seq, ts,
                        extra) in enumerate(raw)]


# ===========================================================================
# the agent
# ===========================================================================

class TelemetryAgent:
    """Per-node telemetry: collect, ship, aggregate, alert, record.

    Attach with ``agent.attach(node)`` (or construct the node and call
    ``node.attach_telemetry(agent)`` — same thing).  The node then

    * feeds every cluster event into the agent's flight recorder,
    * calls :meth:`on_tick` from its timer (frames go out at
      ``config.telemetry_interval``, defaulting to the heartbeat
      interval — telemetry piggybacks the cadence that already proves
      liveness),
    * routes received TELEMETRY frames to :meth:`on_frame`, and
    * reports incidents (actor failure, peer DOWN) to
      :meth:`incident`, which — like an SLO alert firing — dumps a
      postmortem bundle, rate-limited by ``postmortem_cooldown``.

    Every agent aggregates the whole cluster (frames are broadcast), so
    ``repro top`` can ask any node for the full picture.
    """

    def __init__(self, interval: Optional[float] = None,
                 aggregator: Optional[Aggregator] = None,
                 slos: Optional[Iterable[SLO]] = None,
                 bus: Optional[MonitorBus] = None,
                 recorder_capacity: int = 2048,
                 postmortem_dir: Optional[str] = None,
                 postmortem_cooldown: float = 5.0,
                 eval_interval: Optional[float] = None,
                 time_source: Optional[Callable[[], float]] = None):
        import time as _time
        self.node: Optional[Any] = None
        self.interval = interval
        #: SLO evaluation pays a window-histogram merge per percentile
        #: objective, so it runs on its own (slower) cadence: burn
        #: windows are >= 5s, evaluating more than ~1/s buys nothing
        self.eval_interval = eval_interval
        self.time = time_source if time_source is not None else _time.time
        self.aggregator = aggregator if aggregator is not None \
            else Aggregator(clock=self.time)
        self.bus = bus
        self.engine = SLOEngine(slos, bus=bus, on_fire=self._on_alert)
        self.recorder = FlightRecorder(recorder_capacity)
        self.postmortem_dir = postmortem_dir
        self.postmortem_cooldown = postmortem_cooldown
        self.postmortems: list[dict] = []
        self._cursor: dict = {}
        self._extra_seen: dict[str, float] = {}
        self._seq = 0
        self._last_tick: Optional[float] = None
        self._last_eval: Optional[float] = None
        self._pm_last: Optional[float] = None
        self._pm_seq = 0
        self._pm_lock = threading.Lock()

    def attach(self, node: Any) -> "TelemetryAgent":
        node.attach_telemetry(self)
        return self

    # -- frame production -----------------------------------------------
    def _put_counter(self, frame: dict, name: str, value: float) -> None:
        """Delta-encode a non-profiler counter: changed keys only."""
        if self._extra_seen.get(name) != value:
            self._extra_seen[name] = value
            frame["counters"][name] = value

    def collect(self) -> dict[str, Any]:
        """Build one delta-encoded frame from the node's live state."""
        node = self.node
        self._seq += 1
        frame: dict[str, Any] = {
            "v": 1, "seq": self._seq, "node": node.name,
            "ts": self.time(), "counters": {}, "gauges": {}, "hists": {},
        }
        if node.profiler is not None:
            d = node.profiler.delta(self._cursor)
            frame["counters"].update(d["counters"])
            frame["gauges"].update(d["gauges"])
            frame["hists"].update(d["hists"])
        stats = node.system.executor_stats()
        for key in ("executed", "steals", "parks", "local_hits"):
            self._put_counter(frame, f"executor.{key}",
                              stats.get(key, 0))
        self._put_counter(frame, "actor.failures",
                          len(node.system.failures()))
        self._put_counter(frame, "cluster.dead_letters",
                          len(node.system.dead_letters))
        self._put_counter(frame, "flight.recorded", self.recorder.recorded)
        # protocol-conformance hazards from the node's monitor bus:
        # per-protocol violation counters plus one roll-up gauge, so
        # ``repro top`` surfaces non-conforming conversations per node
        bus = getattr(node, "monitors", None)
        if bus is not None:
            total = 0
            for det in getattr(bus, "detectors", ()):
                if hasattr(det, "protocols") and hasattr(det, "counts"):
                    for pname, n in det.counts().items():
                        self._put_counter(frame, f"protocol:{pname}", n)
                        total += n
            if total:
                frame["gauges"]["protocol.violations"] = total
        # instantaneous gauges, re-sampled every frame
        frame["gauges"]["executor.queued"] = stats.get("queued", 0)
        frame["gauges"]["mailbox.depth"] = self._mailbox_depth(node)
        frame["gauges"]["cluster.staged"] = node._staged_total
        return frame

    @staticmethod
    def _mailbox_depth(node: Any) -> int:
        depth = 0
        for ref in list(node._actors.values()):
            try:
                depth += ref.pending
            except Exception:
                pass
        return depth

    # -- node callbacks -------------------------------------------------
    def on_tick(self, now: float) -> bool:
        """Node timer callback: ship a frame when the cadence is due.

        ``now`` is in the *node's* clock domain (monotonic by default),
        used only for cadence; the frame itself is stamped with
        ``self.time()``.
        """
        node = self.node
        if node is None:
            return False
        interval = self.interval
        if interval is None:
            interval = node.config.telemetry_interval
        if interval is None:
            interval = node.config.heartbeat_interval
        if self._last_tick is not None \
                and now - self._last_tick < interval:
            return False
        self._last_tick = now
        frame = self.collect()
        self.aggregator.ingest(node.name, frame)
        for peer, state in node.peers().items():
            if state == "alive":
                node._send_telemetry(peer, frame)
        eval_every = self.eval_interval
        if eval_every is None:
            eval_every = max(1.0, interval)
        if self._last_eval is None \
                or now - self._last_eval >= eval_every:
            self._last_eval = now
            self.engine.evaluate(self.aggregator)
        return True

    def on_frame(self, origin: str, payload: Any) -> None:
        """A TELEMETRY frame arrived from a peer."""
        if not isinstance(payload, dict):
            return
        self.aggregator.ingest(payload.get("node") or origin, payload)

    # -- incidents / postmortems ----------------------------------------
    def _on_alert(self, alert: Alert) -> None:
        self.incident(f"slo-burn:{alert.slo.name}", alert.as_dict())

    def incident(self, kind: str, detail: Optional[dict] = None,
                 force: bool = False) -> Optional[dict]:
        """Something went wrong — dump a postmortem bundle (rate-limited).

        Returns the bundle, or None when inside the cooldown window.
        ``force=True`` bypasses the cooldown — used by the node's
        graceful stop, whose final bundle must not be swallowed just
        because an alert fired moments earlier.  Never raises: a
        postmortem must not take down the path that triggered it.
        """
        now = self.time()
        with self._pm_lock:
            if not force and self._pm_last is not None \
                    and now - self._pm_last < self.postmortem_cooldown:
                return None
            self._pm_last = now
            self._pm_seq += 1
            seq = self._pm_seq
        try:
            bundle = self.build_postmortem(kind, detail, seq=seq, now=now)
        except Exception:
            return None
        self.postmortems.append(bundle)
        if self.postmortem_dir:
            try:
                os.makedirs(self.postmortem_dir, exist_ok=True)
                path = os.path.join(self.postmortem_dir,
                                    f"pm-{seq:03d}-{_slug(kind)}.json")
                with open(path, "w", encoding="utf-8") as fh:
                    json.dump(bundle, fh, indent=1, default=str)
                bundle["path"] = path
            except OSError:
                pass
        return bundle

    def build_postmortem(self, kind: str, detail: Optional[dict] = None,
                         seq: int = 0,
                         now: Optional[float] = None) -> dict[str, Any]:
        """Assemble the merged bundle (no rate limit, no file I/O)."""
        # lazy: obs.telemetry must stay importable without the cluster
        # package (and the cluster imports obs — no import cycle)
        from ..cluster.observe import merge_chrome_traces
        from .explain import postmortem_narrative
        node = self.node
        now = self.time() if now is None else now
        node_events: dict[str, list] = {}
        if node is not None:
            self.recorder.node = node.name
            node_events[node.name] = self.recorder.dump()
            for peer, state in node.peers().items():
                if state != "alive":
                    continue
                try:
                    reply = node.status_of(peer, timeout=1.0, flight=True)
                except Exception:
                    continue
                if reply.get("flight"):
                    node_events[peer] = reply["flight"]
        alerts = self.engine.as_dicts()
        bundle = {
            "v": 1, "seq": seq, "kind": kind,
            "node": node.name if node is not None else "",
            "ts": now, "detail": detail or {},
            "alerts": alerts,
            "telemetry": self.aggregator.snapshot(now=now),
            "events": {n: len(evs) for n, evs in node_events.items()},
            "trace": merge_chrome_traces(node_events),
            "narrative": postmortem_narrative(kind, detail, node_events,
                                              alerts),
        }
        return bundle

    # -- read side ------------------------------------------------------
    def snapshot(self, window: float = 10.0) -> dict[str, Any]:
        """Aggregated cluster view + alert states (JSON-ready)."""
        snap = self.aggregator.snapshot(window=window)
        snap["alerts"] = self.engine.as_dicts()
        snap["postmortems"] = len(self.postmortems)
        return snap


def _slug(kind: str) -> str:
    return "".join(c if c.isalnum() or c == "-" else "-" for c in kind)


# ===========================================================================
# repro top rendering
# ===========================================================================

_ANSI = {"reset": "\x1b[0m", "bold": "\x1b[1m", "dim": "\x1b[2m",
         "red": "\x1b[31m", "yellow": "\x1b[33m", "green": "\x1b[32m"}


def render_top(snapshot: dict[str, Any], color: bool = True,
               clear: bool = False) -> str:
    """One ``repro top`` screen from a :meth:`TelemetryAgent.snapshot`.

    Pure function of the snapshot so tests can pin the layout; ANSI is
    additive (``color=False`` yields plain text for ``--json``-adjacent
    piping and dumb terminals).
    """
    def paint(text: str, *styles: str) -> str:
        if not color:
            return text
        return "".join(_ANSI[s] for s in styles) + text + _ANSI["reset"]

    alerts = snapshot.get("alerts") or []
    firing = {(a["node"], a["slo"]): a for a in alerts
              if a.get("state") == "firing"}
    lines = []
    if clear:
        lines.append("\x1b[2J\x1b[H" if color else "")
    window = snapshot.get("window", 10.0)
    lines.append(paint(f"repro top — {len(snapshot.get('nodes') or {})} "
                       f"node(s), {window:g}s window", "bold"))
    header = (f"{'NODE':<12} {'OPS/S':>10} {'DELIVER/S':>10} "
              f"{'DEPTH':>7} {'STAGED':>7} {'STALL MS':>9} "
              f"{'P95 US':>9} {'AGE':>5}  ALERTS")
    lines.append(paint(header, "dim"))
    for name in sorted(snapshot.get("nodes") or {}):
        ns = snapshot["nodes"][name]
        rates = ns.get("rates") or {}
        gauges = ns.get("gauges") or {}
        hists = ns.get("hists") or {}
        ops = rates.get("mailbox.processed",
                        rates.get("executor.executed", 0.0))
        deliver = rates.get("cluster.delivered", 0.0)
        depth = gauges.get("mailbox.depth", 0)
        staged = gauges.get("cluster.staged", 0)
        stall_ms = (hists.get("cluster.credit_wait_us") or {}) \
            .get("total", 0.0) / 1000.0
        p95 = (hists.get("mailbox.latency_us") or {}).get("p95")
        mine = [slo for (node, slo) in firing if node == name]
        badge = paint(" ".join(sorted(mine)), "red", "bold") if mine \
            else paint("ok", "green")
        row = (f"{name:<12} {ops:>10.1f} {deliver:>10.1f} "
               f"{int(depth):>7} {int(staged):>7} "
               f"{(stall_ms or 0.0):>9.1f} "
               f"{(p95 if p95 is not None else 0.0):>9.1f} "
               f"{ns.get('age', 0.0):>5.1f}  {badge}")
        lines.append(paint(row, "red") if mine else row)
    if not snapshot.get("nodes"):
        lines.append(paint("  (no telemetry frames yet)", "dim"))
    for name in sorted(snapshot.get("nodes") or {}):
        ns = snapshot["nodes"][name]
        pv = (ns.get("gauges") or {}).get("protocol.violations")
        if pv:
            protos = sorted(k.split(":", 1)[1]
                            for k, v in (ns.get("rates") or {}).items()
                            if k.startswith("protocol:") and v > 0)
            detail = f" ({', '.join(protos)})" if protos else ""
            lines.append(paint(
                f"  PROTO {int(pv)} protocol violation(s) on "
                f"{name}{detail}", "red"))
    resolved = [a for a in alerts if a.get("state") != "firing"
                and a.get("fired_at")]
    for a in sorted(firing.values(),
                    key=lambda a: (a["node"], a["slo"])):
        # snapshots may come off the wire: render what the dict has
        lines.append(paint(
            f"  ALERT {a['slo']} on {a['node']}: {a.get('metric', '?')}"
            f" = {a.get('short_value', '?')} (short) / "
            f"{a.get('long_value', '?')} (long) "
            f">= {a.get('threshold', '?')}", "red"))
    if resolved:
        lines.append(paint(f"  {len(resolved)} resolved alert(s)", "dim"))
    return "\n".join(lines)
