"""Online hazard monitors over the kernel event stream.

Torres Lopez et al. (arXiv:1706.07372) argue that concurrency tooling
must detect hazard *patterns* — deadlock, lost wakeups, message-order
violations — while the program runs, not after a post-mortem.  This
module is that watching layer for the simulation kernel: a pluggable
:class:`MonitorBus` the :class:`~repro.core.scheduler.Scheduler` feeds
every :class:`~repro.core.trace.TraceEvent` as it happens
(``Scheduler(monitors=...)``, is-``None``-guarded exactly like
``metrics=``), plus the shipped :class:`Detector` implementations.

The bus never touches live kernel objects: :class:`KernelView`
reconstructs lock ownership, condition queues and mailbox depths purely
from the event stream, so detectors are *non-interfering by
construction* — they cannot perturb scheduling decisions, state
fingerprints or sleep sets, which is what lets the explorer run them on
every interleaving (``explore(monitors=True)``) and still report
identical run/decision counts.

Shipped detectors (``default_detectors()``):

=========================  ==============================================
``DeadlockDetector``       circular-wait cycle reporting over the live
                           wait-for graph (``deadlock``, error) and
                           lock-order inversion over the acquisition
                           graph (``lock-order-inversion``, warning)
``LostWakeupDetector``     a NOTIFY that found no waiter, later slept
                           through by a WAIT (``lost-wakeup``, error)
``StarvationDetector``     task runnable for >= N scheduling decisions
                           without running (``starvation``, warning)
``MessageOrderDetector``   arrival order differs from deposit order
                           (``message-reorder``, info — a witness
                           refuting misconception M5) and mailbox
                           saturation (``mailbox-saturation``, warning)
``RaceDetector``           vector-clock data races with the locks held
                           at each access (``data-race``, error)
``FailureDetector``        task exceptions / illegal effects
                           (``task-failure``, error)
``WitnessDetector``        executions refuting Table-III misconceptions
                           (``witness-*``, info): a sender that ran on
                           before its message arrived refutes M3, a
                           task entering a monitor while a waiter
                           sleeps refutes S6
=========================  ==============================================

Each hazard names the misconceptions the execution *refutes* via
``Hazard.refutes`` (see
:func:`repro.misconceptions.catalog.refuted_by`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable, Optional

if TYPE_CHECKING:  # pragma: no cover
    from ..core.trace import Trace, TraceEvent

__all__ = [
    "Hazard", "KernelView", "Detector", "MonitorBus",
    "DeadlockDetector", "LostWakeupDetector", "StarvationDetector",
    "MessageOrderDetector", "RaceDetector", "FailureDetector",
    "WitnessDetector", "default_detectors", "trace_locksets",
]

#: hazard severities, most severe first (exit codes key off error/warning)
SEVERITIES = ("error", "warning", "info")


@dataclass(frozen=True)
class Hazard:
    """One detected hazard pattern.

    Holds only primitives (no TraceEvent/lock references) so hazards
    survive pickling across the explorer's forked workers and stay
    inspectable after the run is gone.
    """

    kind: str                       # "deadlock" | "lost-wakeup" | ...
    severity: str                   # "error" | "warning" | "info"
    message: str
    step: int                       # step at which the hazard fired
    tasks: tuple = ()               # task names involved
    objects: tuple = ()             # sync-object names involved
    #: Table-III misconception ids this execution refutes (e.g. "M5")
    refutes: tuple = ()
    #: stable subject of the hazard (e.g. "proto@party") — hazards
    #: reported from both ends of a cluster link word their messages
    #: differently but share the subject, so dedup keys on it
    subject: str = ""
    #: wire/mailbox sequence of the offending message, when there is one
    seq: Optional[int] = None

    @property
    def key(self) -> tuple:
        """Dedup identity — the same pattern reported once per bus.

        Subject-bearing hazards key on ``(kind, subject, seq)``: the
        same offending wire message observed from both ends of a
        cluster link produces differently-worded messages but one key.
        Everything else keeps the historical ``(kind, message)`` key.
        """
        if self.subject:
            return (self.kind, self.subject, self.seq)
        return (self.kind, self.message)

    def describe(self) -> str:
        tail = f" [refutes {', '.join(self.refutes)}]" if self.refutes else ""
        return f"[{self.severity}] {self.kind} @step {self.step}: " \
               f"{self.message}{tail}"


class _Waiting:
    """A task parked in a monitor's condition queue."""

    __slots__ = ("monitor", "depth", "step", "woken")

    def __init__(self, monitor: str, depth: int, step: int):
        self.monitor = monitor
        self.depth = depth
        self.step = step
        self.woken = False


class KernelView:
    """Kernel state reconstructed purely from the event stream.

    The one genuinely ambiguous event is ``acquire X`` yielded by a
    running task: the kernel grants immediately when the lock is free
    and parks the task otherwise, and the event looks the same either
    way.  The task's *next* event disambiguates exactly: a parked task
    can only reappear through an ``acquire``-kind grant transition,
    while a task granted immediately reappears with any other kind — so
    resolution is deferred until that next event (or run end).
    """

    def __init__(self) -> None:
        #: task key -> display name
        self.names: dict[int, str] = {}
        #: task key -> {lock/monitor name: hold depth}
        self.held: dict[int, dict[str, int]] = {}
        #: lock/monitor name -> task keys currently holding it
        self.owners: dict[str, set] = {}
        #: task key -> lock name of an unresolved ``acquire`` effect
        self.pending_acquire: dict[int, str] = {}
        self.pending_since: dict[int, int] = {}
        #: task key -> condition-queue entry
        self.waiting: dict[int, _Waiting] = {}
        #: monitor name -> un-woken waiter keys, FIFO
        self.wait_queue: dict[str, list] = {}
        #: task key -> mailbox / joined-task name it blocked on
        self.blocked_recv: dict[int, str] = {}
        self.blocked_join: dict[int, str] = {}
        self.finished: set = set()
        #: mailbox name -> current depth (deposits minus deliveries)
        self.mail_depth: dict[str, int] = {}
        #: events executed per task (witness detectors compare progress)
        self.counts: dict[int, int] = {}
        self.last_step = 0
        # per-event annotations, reset by every feed()
        self.evt_grant: Optional[tuple] = None   # (key, name, held_before)
        self.evt_wait: Optional[tuple] = None    # (key, monitor)
        self.evt_notify: Optional[tuple] = None  # (monitor, woken_count)

    @staticmethod
    def task_key(event: "TraceEvent") -> int:
        # spawn-order ltid when recorded (replay-stable), else global tid
        return event.task_ltid if event.task_ltid >= 0 else event.task_tid

    def name_of(self, key: int) -> str:
        return self.names.get(key, f"task-{key}")

    def locks_held(self, key: int) -> frozenset:
        return frozenset(self.held.get(key, ()))

    # ------------------------------------------------------------------
    def feed(self, event: "TraceEvent") -> None:
        key = self.task_key(event)
        self.last_step = event.step
        if event.task_name:
            self.names[key] = event.task_name
        self.counts[key] = self.counts.get(key, 0) + 1
        self.evt_grant = self.evt_wait = self.evt_notify = None

        # -- resolve what this task was doing when last seen -----------
        pend = self.pending_acquire.pop(key, None)
        if pend is not None:
            self.pending_since.pop(key, None)
            self._grant(key, pend, 1)
        waiter = self.waiting.get(key)
        if waiter is not None and event.kind == "acquire":
            # a parked waiter only reappears via the re-acquire grant
            del self.waiting[key]
            self._grant(key, waiter.monitor, waiter.depth)
        self.blocked_recv.pop(key, None)
        self.blocked_join.pop(key, None)

        # -- interpret the new effect ----------------------------------
        er = event.effect_repr
        obj = event.obj_name
        if obj is not None:
            if er.startswith("acquire "):
                if self.held.get(key, {}).get(obj):
                    self.held[key][obj] += 1          # reentrant: immediate
                else:
                    self.pending_acquire[key] = obj
                    self.pending_since[key] = event.step
            elif er.startswith("release "):
                depths = self.held.get(key, {})
                if obj in depths:
                    depths[obj] -= 1
                    if depths[obj] <= 0:
                        del depths[obj]
                        self.owners.get(obj, set()).discard(key)
            elif er.startswith("wait "):
                depth = self.held.get(key, {}).pop(obj, 1)
                self.owners.get(obj, set()).discard(key)
                self.waiting[key] = _Waiting(obj, depth, event.step)
                self.wait_queue.setdefault(obj, []).append(key)
                self.evt_wait = (key, obj)
            elif er.startswith("notify"):
                queue = self.wait_queue.get(obj, [])
                woken = list(queue) if er.startswith("notifyAll") \
                    else queue[:1]
                del queue[:len(woken)]
                for w in woken:
                    self.waiting[w].woken = True
                self.evt_notify = (obj, len(woken))
            elif er.startswith("receive from "):
                self.blocked_recv[key] = obj
        if er == "return" or er.startswith(("raise ", "illegal ")):
            self.finished.add(key)
        elif er.startswith("join "):
            self.blocked_join[key] = er[5:]

        if event.msg_seq is not None and obj is not None:
            self.mail_depth[obj] = self.mail_depth.get(obj, 0) + 1
        if event.recv_seq is not None and event.recv_mbox is not None:
            self.mail_depth[event.recv_mbox] = \
                self.mail_depth.get(event.recv_mbox, 0) - 1

    def _grant(self, key: int, name: str, depth: int) -> None:
        before = tuple(sorted(self.held.get(key, ())))
        held = self.held.setdefault(key, {})
        held[name] = held.get(name, 0) + depth
        self.owners.setdefault(name, set()).add(key)
        self.evt_grant = (key, name, before)

    # ------------------------------------------------------------------
    # end-of-run wait-for structure
    # ------------------------------------------------------------------
    def blocked_tasks(self) -> dict[int, tuple]:
        """Unfinished blocked tasks: key -> ("lock"/"notify"/...,
        object name).  Only meaningful after a deadlocked run, where no
        task is runnable and every unresolved pend really parked."""
        out: dict[int, tuple] = {}
        for key, name in self.pending_acquire.items():
            out[key] = ("lock", name)
        for key, w in self.waiting.items():
            out[key] = ("lock", w.monitor) if w.woken \
                else ("notify", w.monitor)
        for key, name in self.blocked_recv.items():
            out[key] = ("message", name)
        for key, name in self.blocked_join.items():
            out[key] = ("join", name)
        return out

    def waits_for(self) -> dict[int, set]:
        """Task -> tasks it transitively needs (the wait-for graph)."""
        by_name = {n: k for k, n in self.names.items()}
        edges: dict[int, set] = {}
        for key, (why, name) in self.blocked_tasks().items():
            if why == "lock":
                targets = self.owners.get(name, set()) - {key}
            elif why == "join":
                target = by_name.get(name)
                targets = {target} if target is not None \
                    and target not in self.finished else set()
            else:
                targets = set()
            edges[key] = targets
        return edges

    def find_cycle(self) -> Optional[list]:
        """One circular-wait cycle of task keys, or None."""
        edges = self.waits_for()
        for start in edges:
            path: list = []
            on_path: set = set()
            node: Optional[int] = start
            while node is not None and node not in on_path:
                if node not in edges:
                    break
                path.append(node)
                on_path.add(node)
                nxt = edges.get(node) or set()
                node = min(nxt) if nxt else None
            else:
                if node is not None:
                    return path[path.index(node):]
        return None


class Detector:
    """Base class for monitor-bus detectors.

    ``on_event`` is called after the :class:`KernelView` absorbed the
    event; ``ready`` carries the names of tasks that were runnable when
    the step was chosen (online feeds only).  ``on_end`` fires once
    with the run's outcome.  Both return iterables of :class:`Hazard`.
    """

    name = "detector"

    def on_event(self, view: KernelView, event: "TraceEvent",
                 ready: tuple) -> Iterable[Hazard]:
        return ()

    def on_end(self, view: KernelView, outcome: str,
               detail: str) -> Iterable[Hazard]:
        return ()


class MonitorBus:
    """Fan one run's event stream out to a set of detectors.

    Single-use, like the Scheduler: the :class:`KernelView` accumulates
    one run's state.  Attach with ``Scheduler(monitors=bus)`` for the
    online feed, or post-hoc with :meth:`scan` on a recorded trace
    (everything except ready-set-dependent detectors behaves
    identically — starvation needs the online feed).
    """

    def __init__(self, detectors: Optional[Iterable[Detector]] = None):
        self.detectors: list[Detector] = (list(detectors)
                                          if detectors is not None
                                          else default_detectors())
        self.view = KernelView()
        self.hazards: list[Hazard] = []
        self._seen: set = set()
        self._finished = False
        self.events_seen = 0
        #: called with each *new* (deduplicated) hazard — event sources
        #: hook their incident paths here (a ClusterNode triggers a
        #: telemetry postmortem when a protocol violation lands)
        self.on_hazard: Optional[callable] = None

    def feed(self, event: "TraceEvent", ready: tuple = ()) -> None:
        self.events_seen += 1
        self.view.feed(event)
        for det in self.detectors:
            for hz in det.on_event(self.view, event, ready):
                self._add(hz)

    def finish(self, outcome: str = "done", detail: str = "") -> None:
        if self._finished:
            return
        self._finished = True
        for det in self.detectors:
            for hz in det.on_end(self.view, outcome, detail):
                self._add(hz)

    def scan(self, trace: "Trace") -> list[Hazard]:
        """Offline feed of a recorded trace; returns the hazards."""
        for event in trace.events:
            self.feed(event)
        self.finish(trace.outcome, trace.detail)
        return self.hazards

    def _add(self, hz: Hazard) -> None:
        if hz.key not in self._seen:
            self._seen.add(hz.key)
            self.hazards.append(hz)
            if self.on_hazard is not None:
                self.on_hazard(hz)

    def publish(self, hazard: Hazard) -> None:
        """Report an externally detected hazard on this bus.

        The detectors above watch the event stream; some hazard sources
        watch something else entirely — the telemetry SLO engine fires
        burn-rate alerts computed from cluster-wide time series, not
        from any single event.  ``publish`` gives them the same
        first-class treatment (dedup by ``Hazard.key``, severity
        ranking, ``flagged``/``counts``/``format``) as detector output.
        """
        self._add(hazard)

    # ------------------------------------------------------------------
    @property
    def flagged(self) -> bool:
        """True when any error/warning hazard fired (CLI exit codes)."""
        return any(h.severity in ("error", "warning") for h in self.hazards)

    def counts(self) -> dict[str, int]:
        out: dict[str, int] = {}
        for h in self.hazards:
            out[h.kind] = out.get(h.kind, 0) + 1
        return out

    def format(self) -> str:
        if not self.hazards:
            return "no hazards detected"
        order = {s: i for i, s in enumerate(SEVERITIES)}
        ranked = sorted(self.hazards,
                        key=lambda h: (order.get(h.severity, 9), h.step))
        return "\n".join(h.describe() for h in ranked)


# ===========================================================================
# shipped detectors
# ===========================================================================

class DeadlockDetector(Detector):
    """Circular-wait reporting + lock-order inversion warnings.

    The wait-for graph is materialized from the view when a run ends
    deadlocked; during the run, every grant taken while holding other
    locks adds edges to the lock *acquisition-order* graph, and a cycle
    there is the ABBA pattern even on runs that happened to survive.
    """

    name = "deadlock"

    def __init__(self) -> None:
        #: (held, acquired) -> (task name, step) of first observation
        self.order_edges: dict[tuple, tuple] = {}
        self._warned: set = set()

    def on_event(self, view, event, ready):
        if view.evt_grant is None:
            return
        key, name, before = view.evt_grant
        for held in before:
            if held == name:
                continue
            edge = (held, name)
            if edge not in self.order_edges:
                self.order_edges[edge] = (view.name_of(key), event.step)
                yield from self._check_order(edge, event.step)

    def _check_order(self, new_edge, step):
        # DFS from the edge head back to its tail over recorded edges
        held, acquired = new_edge
        frozen = frozenset((held, acquired))
        if frozen in self._warned:
            return
        stack, seen = [acquired], set()
        while stack:
            node = stack.pop()
            if node == held:
                self._warned.add(frozen)
                t1, s1 = self.order_edges[new_edge]
                yield Hazard(
                    kind="lock-order-inversion", severity="warning",
                    step=step, tasks=(t1,), objects=(held, acquired),
                    message=f"locks {held!r} and {acquired!r} are taken "
                            f"in both orders across tasks ({t1} acquired "
                            f"{acquired!r} while holding {held!r} at step "
                            f"{s1}) — ABBA deadlock possible")
                return
            if node in seen:
                continue
            seen.add(node)
            stack.extend(b for (a, b) in self.order_edges if a == node)

    def on_end(self, view, outcome, detail):
        if outcome != "deadlock":
            return
        cycle = view.find_cycle()
        if cycle:
            blocked = view.blocked_tasks()
            parts = []
            for i, key in enumerate(cycle):
                _, obj = blocked[key]
                holder = cycle[(i + 1) % len(cycle)]
                parts.append(f"{view.name_of(key)} waits for {obj!r} "
                             f"held by {view.name_of(holder)}")
            yield Hazard(
                kind="deadlock", severity="error", step=view.last_step,
                tasks=tuple(view.name_of(k) for k in cycle),
                objects=tuple(blocked[k][1] for k in cycle),
                message="circular wait: " + "; ".join(parts))
        else:
            reasons = "; ".join(
                f"{view.name_of(k)} waits for {why} on {obj!r}"
                for k, (why, obj) in sorted(view.blocked_tasks().items()))
            yield Hazard(
                kind="deadlock", severity="error", step=view.last_step,
                tasks=tuple(sorted(view.name_of(k)
                                   for k in view.blocked_tasks())),
                message=f"no task can run again: {reasons or detail}")


class LostWakeupDetector(Detector):
    """A NOTIFY that woke nobody, slept through by a later WAIT."""

    name = "lost-wakeup"

    def __init__(self) -> None:
        #: monitor name -> step of the latest notify that found no waiter
        self.missed: dict[str, int] = {}

    def on_event(self, view, event, ready):
        if view.evt_notify is not None:
            monitor, woken = view.evt_notify
            if woken == 0:
                self.missed[monitor] = event.step
        return ()

    def on_end(self, view, outcome, detail):
        if outcome != "deadlock":
            return
        for key, w in sorted(view.waiting.items()):
            missed_at = self.missed.get(w.monitor)
            if w.woken or missed_at is None or missed_at >= w.step:
                continue
            name = view.name_of(key)
            yield Hazard(
                kind="lost-wakeup", severity="error", step=w.step,
                tasks=(name,), objects=(w.monitor,),
                message=f"{name} sleeps forever on {w.monitor!r}: the "
                        f"only notify fired at step {missed_at}, before "
                        f"the wait was registered at step {w.step} — "
                        f"an IF-guarded wait missed its wakeup")


class StarvationDetector(Detector):
    """A task runnable for >= ``threshold`` decisions without running.

    Needs the online feed (the ready set is not recorded in traces);
    :meth:`MonitorBus.scan` leaves this detector silent.
    """

    name = "starvation"

    def __init__(self, threshold: int = 50):
        self.threshold = threshold
        self.streak: dict[str, int] = {}
        self._fired: set = set()

    def on_event(self, view, event, ready):
        if not ready:
            return
        runner = event.task_name
        live = set(ready)
        for name in list(self.streak):
            if name not in live:
                del self.streak[name]
        self.streak[runner] = 0
        for name in live:
            if name == runner:
                continue
            self.streak[name] = self.streak.get(name, 0) + 1
            if self.streak[name] >= self.threshold \
                    and name not in self._fired:
                self._fired.add(name)
                yield Hazard(
                    kind="starvation", severity="warning", step=event.step,
                    tasks=(name,),
                    message=f"{name} has been runnable for "
                            f"{self.streak[name]} consecutive decisions "
                            f"without being scheduled")


class MessageOrderDetector(Detector):
    """Arrival order vs deposit order, plus mailbox saturation.

    Envelope sequence numbers are assigned at deposit time, so a
    delivery whose seq is below an earlier delivery's seq from the same
    mailbox overtook it in flight — a concrete refutation of
    misconception M5 ("messages arrive in send order").
    """

    name = "message-order"

    def __init__(self, saturation: int = 8):
        self.saturation = saturation
        self.max_seq: dict[str, int] = {}
        self._saturated: set = set()
        self._reordered: set = set()

    def on_event(self, view, event, ready):
        if event.msg_seq is not None and event.obj_name is not None:
            mbox = event.obj_name
            depth = view.mail_depth.get(mbox, 0)
            if depth >= self.saturation and mbox not in self._saturated:
                self._saturated.add(mbox)
                yield Hazard(
                    kind="mailbox-saturation", severity="warning",
                    step=event.step, objects=(mbox,),
                    message=f"mailbox {mbox!r} reached depth {depth} "
                            f"(>= {self.saturation}): producers outpace "
                            f"the consumer")
        if event.recv_seq is not None and event.recv_mbox is not None:
            mbox = event.recv_mbox
            last = self.max_seq.get(mbox)
            if last is not None and event.recv_seq < last \
                    and mbox not in self._reordered:
                self._reordered.add(mbox)
                yield Hazard(
                    kind="message-reorder", severity="info",
                    step=event.step, tasks=(event.task_name,),
                    objects=(mbox,), refutes=("M5",),
                    message=f"{event.task_name} received message "
                            f"#{event.recv_seq} from {mbox!r} after "
                            f"message #{last}: arrival order differs "
                            f"from deposit order")
            self.max_seq[mbox] = max(last or -1, event.recv_seq)


class RaceDetector(Detector):
    """Online vector-clock race detection with lockset reporting.

    Same happens-before criterion as :func:`repro.verify.race.find_races`
    (different tasks, >= one write, Lamport-concurrent clocks), run
    incrementally per access and annotated with the locks each side
    held — the missing-synchronization half of the report.
    """

    name = "data-race"

    def __init__(self, max_accesses: int = 64):
        self.max_accesses = max_accesses
        #: var -> [(task key, name, kind, step, vclock, lockset)]
        self.accesses: dict[str, list] = {}

    def on_event(self, view, event, ready):
        if event.access_var is None or event.vclock is None:
            return
        var = event.access_var
        key = view.task_key(event)
        locks = view.locks_held(key)
        kind = event.access_kind.value
        history = self.accesses.setdefault(var, [])
        for (okey, oname, okind, ostep, oclock, olocks) in history:
            if okey == key or (okind == "read" and kind == "read"):
                continue
            if not event.vclock.concurrent(oclock):
                continue
            common = locks & olocks
            if common:
                sync = f"despite common lock {sorted(common)}"
            elif locks or olocks:
                sync = (f"no common lock "
                        f"({oname} held {sorted(olocks) or 'none'}, "
                        f"{event.task_name} held {sorted(locks) or 'none'})")
            else:
                sync = "no locks held at either access"
            yield Hazard(
                kind="data-race", severity="error", step=event.step,
                tasks=(oname, event.task_name), objects=(var,),
                message=f"unsynchronized {okind}/{kind} of {var!r}: "
                        f"{oname} @step {ostep} || {event.task_name} "
                        f"@step {event.step} — {sync}")
        if len(history) < self.max_accesses:
            history.append((key, event.task_name, kind, event.step,
                            event.vclock, locks))


class FailureDetector(Detector):
    """Task exceptions and protocol violations become hazards."""

    name = "task-failure"

    def on_event(self, view, event, ready):
        er = event.effect_repr
        if er.startswith("raise ") or er.startswith("illegal "):
            yield Hazard(
                kind="task-failure", severity="error", step=event.step,
                tasks=(event.task_name,),
                message=f"{event.task_name} failed: {er}")

    def on_end(self, view, outcome, detail):
        if outcome == "failed" or outcome == "budget":
            yield Hazard(
                kind="task-failure", severity="error", step=view.last_step,
                message=f"run ended {outcome}"
                        + (f": {detail}" if detail else ""))


class WitnessDetector(Detector):
    """Executions that refute Table-III misconception semantics.

    These are *info* hazards: nothing is wrong with the program — the
    run is evidence against a wrong mental model, the raw material of
    the paper's comprehension questions.
    """

    name = "witness"

    def __init__(self) -> None:
        #: envelope seq -> (sender key, events sender had executed)
        self.sent: dict[int, tuple] = {}
        self._async_seen = False
        self._release_seen = False

    def on_event(self, view, event, ready):
        if event.msg_seq is not None:
            key = view.task_key(event)
            self.sent[event.msg_seq] = (key, view.counts.get(key, 0))
        if event.recv_seq is not None and not self._async_seen:
            origin = self.sent.get(event.recv_seq)
            if origin is not None:
                sender_key, count_at_send = origin
                if view.counts.get(sender_key, 0) > count_at_send:
                    self._async_seen = True
                    yield Hazard(
                        kind="witness-async-send", severity="info",
                        step=event.step,
                        tasks=(view.name_of(sender_key), event.task_name),
                        refutes=("M3",),
                        message=f"{view.name_of(sender_key)} kept "
                                f"executing before its message was "
                                f"delivered to {event.task_name}: send "
                                f"is asynchronous, not a method call")
        if view.evt_grant is not None and not self._release_seen:
            key, name, _ = view.evt_grant
            sleepers = [w for w in view.wait_queue.get(name, ())
                        if w != key]
            if sleepers:
                self._release_seen = True
                waiter = view.name_of(sleepers[0])
                yield Hazard(
                    kind="witness-wait-releases", severity="info",
                    step=event.step,
                    tasks=(view.name_of(key), waiter), objects=(name,),
                    refutes=("S6",),
                    message=f"{view.name_of(key)} entered monitor "
                            f"{name!r} while {waiter} sits in its wait "
                            f"set: WAIT releases the monitor, it does "
                            f"not spin holding it")


def default_detectors() -> list[Detector]:
    """A fresh instance of every shipped detector (per-run state!)."""
    return [DeadlockDetector(), LostWakeupDetector(),
            StarvationDetector(), MessageOrderDetector(),
            RaceDetector(), FailureDetector(), WitnessDetector()]


def trace_locksets(trace: "Trace") -> dict[int, frozenset]:
    """Event index -> lock/monitor names the executing task held there.

    Drives the race reports' missing-synchronization annotations
    (:class:`repro.verify.race.Race`): replays the trace through a
    :class:`KernelView` and snapshots the executing task's lockset at
    every event.
    """
    view = KernelView()
    out: dict[int, frozenset] = {}
    for i, event in enumerate(trace.events):
        view.feed(event)
        out[i] = view.locks_held(view.task_key(event))
    return out
