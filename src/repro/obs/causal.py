"""Causal request tracing: context propagation, critical paths, what-if.

The telemetry plane (:mod:`repro.obs.telemetry`) says *that* p95
burned; this module says *where one request's latency went* and *which
segment is worth optimizing next*.  Three pieces:

**Context propagation.**  A :class:`RequestContext` — request id plus
the causal parent span id — is stamped at ingress
(:meth:`CausalTracer.start_request`) and carried through every handoff
a request makes: thread starts (``JThread``), pool submissions
(``ThreadPool``), actor messages (mailbox enqueue → work-stealing
dispatch → handler), coroutine resumes, and cluster frames (an
optional envelope header field, local fast path included).  The
contract mirrors the profiler: every instrumentation site guards on
``tracer is None`` *first*, so the tracing-off hot path costs one
attribute load and allocates nothing.  Tracing *on* is bounded per
request by a hop budget (:data:`DEFAULT_HOP_BUDGET`, the
OpenTelemetry span-limit idea): once a request has traced that many
execution handoffs on a process, its chain self-terminates and the
rest of the request runs at attached-idle cost.

**Span recording.**  Runtimes record closed spans as plain tuples
``(span_id, parent_id, request_id, segment, lane, t0, t1)`` appended
to a deque — a GIL-atomic operation, no lock on the hot path.  Each
hop contributes a short *chain* of spans (``mailbox-wait`` →
``executor-queue`` → ``handler``; cluster hops add ``credit-wait``,
``network``, ``serialize``, ``stage-wait``), and the context installed
while a handler runs points at the handler's span, so nested tells
keep extending the causal chain.

**Critical-path attribution.**  Offline, spans are grouped per request
into a DAG.  The walk starts at the *terminal* span (latest end time)
and follows parent pointers back to the ingress root; each step
attributes the interval ``[span.t0, t_hi]`` to the span's segment and
lowers ``t_hi`` to ``span.t0``.  Because consecutive intervals share
endpoints, the per-segment attribution *partitions* the traced
end-to-end latency exactly — scheduling gaps land in the span that
follows them, nothing is dropped and nothing is counted twice.

**What-if profiling.**  Coz-style virtual speedup, offline: re-schedule
the recorded DAG with one segment's durations scaled by ``1 -
speedup`` (children launch at proportionally scaled offsets inside a
shrunk parent) and read the predicted end-to-end latency off the new
terminal.  :func:`rank_targets` runs that for every observed segment
and ranks the predicted wins — the "what should we optimize next"
report the CLI prints as ``repro whatif``.
"""

from __future__ import annotations

import itertools
import threading
from collections import deque
from typing import Any, Callable, Iterable, Optional

from .profile import wall_clock

__all__ = [
    "RequestContext", "CausalTracer", "DEFAULT_HOP_BUDGET",
    "current_context", "set_context", "clear_context",
    "Span", "RequestTrace", "build_requests", "critical_path",
    "critical_report", "whatif_report", "rank_targets", "parse_speedup",
    "chrome_trace_from_causal", "format_critical", "format_whatif",
    "format_requests", "trace_cluster_cell", "SEGMENTS",
]

#: every segment the built-in instrumentation can attribute time to
SEGMENTS = (
    "ingress",         # request birth until the first hop is enqueued
    "handler",         # actor behaviour execution
    "mailbox-wait",    # enqueue -> the cell's drain grabbed the batch
    "executor-queue",  # drain grabbed -> this message's handler started
    "credit-wait",     # sender parked on the credit gate (backpressure)
    "network",         # wire time: encode + transit + retries until recv
    "serialize",       # receive-side frame decode
    "stage-wait",      # admitted late from the receive staging queue
    "thread-exec",     # JThread body
    "pool-exec",       # ThreadPool task body
    "coro-resume",     # coroutine resume slice (includes parked gaps)
    "dead-letter",     # zero-length terminal span: the message dropped
)


# ---------------------------------------------------------------------------
# context
# ---------------------------------------------------------------------------

#: default per-request hop budget — how many execution handoffs
#: (handler runs, pool tasks, thread starts, coroutine resumes) a
#: single request may trace *per process* before propagation stops.
#: Production tracers always bound per-trace span counts
#: (OpenTelemetry span limits, Jaeger trace buffers) so one degenerate
#: request — say a million-message pingpong storm downstream of one
#: ingress — cannot monopolize the hot path; 256 hops is ~1k spans,
#: far more than any sane request, and it is what keeps the tracing-on
#: overhead gate in ``benchmarks/test_bench_obs.py`` bounded by design
#: rather than by luck.  The count lives in the tracer (not the
#: context), so it bounds *total* traced work per request even under
#: fan-out, where a depth counter would not.  Analysis runs that must
#: not truncate (``trace_cluster_cell``) pass an explicit larger
#: budget.
DEFAULT_HOP_BUDGET = 256


class RequestContext:
    """Immutable causal position: which request, which parent span."""

    __slots__ = ("request_id", "span_id")

    def __init__(self, request_id: int, span_id: int):
        self.request_id = request_id
        self.span_id = span_id

    def __repr__(self) -> str:
        return f"<RequestContext req={self.request_id} span={self.span_id}>"


_tls = threading.local()


def current_context() -> Optional[RequestContext]:
    """The context installed on this thread, or None."""
    try:
        return _tls.ctx
    except AttributeError:
        # first read on this thread: seed the slot so every later read
        # is a plain dict hit instead of a raised-and-caught miss (this
        # runs once per thread, but the read runs per message)
        _tls.ctx = None
        return None


def set_context(ctx: Optional[RequestContext]) -> None:
    _tls.ctx = ctx


def clear_context() -> None:
    _tls.ctx = None


# ---------------------------------------------------------------------------
# the tracer
# ---------------------------------------------------------------------------

class CausalTracer:
    """Collects closed spans; shared by every runtime in one process.

    Span ids come from one :func:`itertools.count` so chains built on
    different threads never collide; appends go straight into a deque
    (``capacity`` bounds it for long-running processes — the analysis
    walk stops cleanly at an evicted parent).
    """

    __slots__ = ("clock", "hop_budget", "_spans", "_ids", "_reqs",
                 "_hops_left")

    #: context primitives re-exported as attributes so instrumented
    #: runtimes (actors/threads/coroutines) can stay import-free of
    #: :mod:`repro.obs` — everything they need rides on the tracer
    #: object they were handed
    current = staticmethod(current_context)
    install = staticmethod(set_context)
    uninstall = staticmethod(clear_context)
    context = RequestContext
    #: the raw thread-local storage — hot loops (actor drain, cluster
    #: admit) write ``trc.tls.ctx`` directly instead of paying a
    #: function call per install/uninstall
    tls = _tls

    def __init__(self, clock: Optional[Callable[[], float]] = None,
                 capacity: Optional[int] = None,
                 hop_budget: int = DEFAULT_HOP_BUDGET):
        if hop_budget <= 0:
            raise ValueError(f"hop_budget must be positive, "
                             f"got {hop_budget}")
        self.clock = clock if clock is not None else wall_clock
        self.hop_budget = hop_budget
        self._spans: deque = deque(maxlen=capacity)
        self._ids = itertools.count(1)
        self._reqs = itertools.count(1)
        #: request id -> traced handoffs remaining on this process.
        #: Plain dict, no lock: reads/writes are GIL-atomic and a
        #: racy double-admit merely overshoots the budget by a hop
        self._hops_left: dict = {}

    # -- hot path ------------------------------------------------------------
    def now(self) -> float:
        return self.clock()

    def next_id(self) -> int:
        return next(self._ids)

    def record(self, span_id: int, parent_id: int, request_id: int,
               segment: str, lane: str, t0: float, t1: float) -> None:
        """Append one closed span (GIL-atomic; call from any thread)."""
        self._spans.append(
            (span_id, parent_id, request_id, segment, lane, t0, t1))

    def chain(self, ctx: RequestContext, segment: str, lane: str,
              t0: float, t1: float) -> RequestContext:
        """Record a span under ``ctx`` and return the context that
        continues the chain from it (same hop — no budget spent)."""
        sid = next(self._ids)
        self._spans.append(
            (sid, ctx.span_id, ctx.request_id, segment, lane, t0, t1))
        return RequestContext(ctx.request_id, sid)

    def admit(self, request_id: int) -> bool:
        """Spend one of ``request_id``'s traced handoffs.  Returns
        False once the per-process budget is gone — the caller runs
        the handoff untraced and drops the context, so a runaway
        request stops paying tracing costs instead of flooding the
        span buffer."""
        left = self._hops_left.get(request_id)
        if left is None:
            # first handoff of this request on this process; the table
            # is bounded so a long-lived node can't leak one entry per
            # request forever (a reset re-admits in-flight requests —
            # harmless, the budget is a cost bound, not an exact count)
            if len(self._hops_left) >= 65536:
                self._hops_left.clear()
            left = self.hop_budget
        if left <= 0:
            return False
        self._hops_left[request_id] = left - 1
        return True

    def hop(self, ctx: RequestContext, segment: str, lane: str,
            t0: float, t1: float) -> Optional[RequestContext]:
        """Like :meth:`chain`, but the span closes one execution
        handoff: it spends budget via :meth:`admit`, and once the
        request is out ``None`` comes back with nothing recorded — the
        caller drops the context and the chain self-terminates."""
        rid = ctx.request_id
        if not self.admit(rid):
            return None
        sid = next(self._ids)
        self._spans.append(
            (sid, ctx.span_id, rid, segment, lane, t0, t1))
        return RequestContext(rid, sid)

    # -- ingress -------------------------------------------------------------
    def start_request(self, name: str = "request",
                      install: bool = True) -> RequestContext:
        """Mint a request at its ingress point and (by default) install
        its context on the calling thread.  Pair with
        :func:`clear_context` once the caller's synchronous part ends —
        the request itself keeps running wherever its messages go."""
        rid = next(self._reqs)
        sid = next(self._ids)
        t = self.clock()
        self._spans.append((sid, 0, rid, "ingress", name, t, t))
        ctx = RequestContext(rid, sid)
        if install:
            set_context(ctx)
        return ctx

    # -- offline -------------------------------------------------------------
    def spans(self) -> list:
        return list(self._spans)

    def clear(self) -> None:
        self._spans.clear()
        self._hops_left.clear()

    def __len__(self) -> int:
        return len(self._spans)


# ---------------------------------------------------------------------------
# offline reconstruction
# ---------------------------------------------------------------------------

class Span:
    """One closed span, linked into its request's DAG."""

    __slots__ = ("id", "parent", "request", "segment", "lane",
                 "t0", "t1", "children")

    def __init__(self, sid, parent, request, segment, lane, t0, t1):
        self.id = sid
        self.parent = parent
        self.request = request
        self.segment = segment
        self.lane = lane
        self.t0 = t0
        self.t1 = t1
        self.children: list = []

    @property
    def duration(self) -> float:
        return max(0.0, self.t1 - self.t0)

    def __repr__(self) -> str:
        return (f"<Span {self.id} {self.segment}@{self.lane} "
                f"req={self.request} {self.t0:.6f}..{self.t1:.6f}>")


class RequestTrace:
    """All spans of one request: index, root, terminal."""

    __slots__ = ("request_id", "spans", "root", "terminal")

    def __init__(self, request_id: int, spans: dict):
        self.request_id = request_id
        self.spans = spans
        self.root = None
        self.terminal = None
        for s in spans.values():
            if s.parent not in spans and (
                    self.root is None or s.t0 < self.root.t0):
                self.root = s
            if self.terminal is None or s.t1 > self.terminal.t1:
                self.terminal = s

    @property
    def e2e(self) -> float:
        """Traced end-to-end: ingress start to terminal end."""
        if self.root is None or self.terminal is None:
            return 0.0
        return max(0.0, self.terminal.t1 - self.root.t0)


def build_requests(spans: Iterable) -> dict[int, RequestTrace]:
    """Group raw span tuples per request and link parent/children."""
    per_req: dict[int, dict] = {}
    for sid, parent, rid, segment, lane, t0, t1 in spans:
        per_req.setdefault(rid, {})[sid] = Span(
            sid, parent, rid, segment, lane, t0, t1)
    out: dict[int, RequestTrace] = {}
    for rid, index in per_req.items():
        for s in index.values():
            p = index.get(s.parent)
            if p is not None:
                p.children.append(s)
        out[rid] = RequestTrace(rid, index)
    return out


def critical_path(trace: RequestTrace) -> list[tuple]:
    """Walk terminal → root; returns ``[(span, lo, hi), ...]`` in
    causal order, where ``hi - lo`` is the wall time attributed to
    that span's segment.  The intervals tile ``[root.t0,
    terminal.t1]`` exactly (each step's ``lo`` is the next older
    step's ``hi``), so segment attribution partitions the traced
    end-to-end latency."""
    steps: list[tuple] = []
    node = trace.terminal
    if node is None:
        return steps
    t_hi = node.t1
    seen: set = set()
    while node is not None and node.id not in seen:
        seen.add(node.id)
        lo = min(node.t0, t_hi)
        steps.append((node, lo, t_hi))
        t_hi = lo
        node = trace.spans.get(node.parent)
    steps.reverse()
    return steps


def _percentile(values: list, q: float) -> float:
    if not values:
        return 0.0
    ordered = sorted(values)
    k = min(len(ordered) - 1, max(0, int(round(q / 100.0
                                               * (len(ordered) - 1)))))
    return ordered[k]


def critical_report(spans: Iterable,
                    measured_e2e: Optional[dict] = None) -> dict:
    """Per-segment critical-path attribution across all requests.

    ``measured_e2e`` optionally maps request id → externally measured
    wall latency (seconds); coverage is then attributed/measured,
    otherwise attributed/traced (≈ 1.0 by construction).
    """
    traces = build_requests(spans)
    seg_times: dict[str, list] = {}
    e2e_list: list = []
    attributed_total = 0.0
    e2e_total = 0.0
    for rid, trace in sorted(traces.items()):
        per_seg: dict[str, float] = {}
        walked = 0.0
        for span, lo, hi in critical_path(trace):
            per_seg[span.segment] = per_seg.get(span.segment, 0.0) \
                + (hi - lo)
            walked += hi - lo
        e2e = trace.e2e
        if measured_e2e is not None and rid in measured_e2e:
            e2e = measured_e2e[rid]
        for seg, t in per_seg.items():
            seg_times.setdefault(seg, []).append(t)
        e2e_list.append(e2e)
        attributed_total += walked
        e2e_total += e2e
    segments = {}
    for seg, times in seg_times.items():
        total = sum(times)
        segments[seg] = {
            "p50_ms": round(_percentile(times, 50) * 1e3, 3),
            "p95_ms": round(_percentile(times, 95) * 1e3, 3),
            "total_ms": round(total * 1e3, 3),
            "share": round(total / e2e_total, 4) if e2e_total > 0 else 0.0,
        }
    return {
        "requests": len(traces),
        "e2e_p50_ms": round(_percentile(e2e_list, 50) * 1e3, 3),
        "e2e_p95_ms": round(_percentile(e2e_list, 95) * 1e3, 3),
        "coverage": round(attributed_total / e2e_total, 4)
        if e2e_total > 0 else 0.0,
        "segments": dict(sorted(segments.items(),
                                key=lambda kv: -kv[1]["total_ms"])),
    }


# ---------------------------------------------------------------------------
# what-if: virtual speedup on the span DAG
# ---------------------------------------------------------------------------

def _reschedule(trace: RequestTrace, segment: str, factor: float) -> float:
    """Predicted end-to-end after scaling ``segment`` durations by
    ``factor``.  Children launch at offsets scaled with their parent's
    shrink, the new terminal is the latest rescheduled end — an
    iterative DAG walk (request chains run thousands of spans deep)."""
    root = trace.root
    if root is None:
        return 0.0
    best = root.t0
    stack: list[tuple] = [(root, root.t0)]
    while stack:
        span, t0n = stack.pop()
        dur = span.duration
        ndur = dur * factor if span.segment == segment else dur
        scale = (ndur / dur) if dur > 0 else 1.0
        end = t0n + ndur
        if end > best:
            best = end
        for ch in span.children:
            off = max(0.0, ch.t0 - span.t0) * scale
            stack.append((ch, t0n + off))
    return max(0.0, best - root.t0)


def whatif_report(spans: Iterable, segment: str,
                  speedup: float) -> dict:
    """Predict the latency delta of making ``segment`` ``speedup``
    (0..1) faster, per request and in aggregate."""
    factor = 1.0 - speedup
    traces = build_requests(spans)
    baseline: list = []
    predicted: list = []
    for trace in traces.values():
        baseline.append(trace.e2e)
        predicted.append(_reschedule(trace, segment, factor))
    base_p50 = _percentile(baseline, 50)
    pred_p50 = _percentile(predicted, 50)
    return {
        "segment": segment,
        "speedup": speedup,
        "requests": len(traces),
        "baseline_p50_ms": round(base_p50 * 1e3, 3),
        "predicted_p50_ms": round(pred_p50 * 1e3, 3),
        "improvement_p50_ms": round((base_p50 - pred_p50) * 1e3, 3),
        "improvement_pct": round((1 - pred_p50 / base_p50) * 100, 2)
        if base_p50 > 0 else 0.0,
        "baseline_p95_ms": round(_percentile(baseline, 95) * 1e3, 3),
        "predicted_p95_ms": round(_percentile(predicted, 95) * 1e3, 3),
    }


def rank_targets(spans: Iterable, speedup: float = 0.2) -> list[dict]:
    """What-if every observed segment at the same speedup; ranked by
    predicted p50 win — the "top optimization targets" report."""
    spans = list(spans)
    seen_segments = sorted({s[3] for s in spans})
    ranked = [whatif_report(spans, seg, speedup) for seg in seen_segments]
    ranked.sort(key=lambda r: -r["improvement_p50_ms"])
    return ranked


def parse_speedup(text: str) -> float:
    """Accept ``20%`` or ``0.2``; returns a fraction in (0, 1)."""
    raw = text.strip()
    value = float(raw[:-1]) / 100.0 if raw.endswith("%") else float(raw)
    if not 0.0 < value < 1.0:
        raise ValueError(f"speedup must be in (0,1), got {text!r}")
    return value


# ---------------------------------------------------------------------------
# exports & rendering
# ---------------------------------------------------------------------------

def chrome_trace_from_causal(spans: Iterable, pid: int = 1) -> dict:
    """Chrome Trace Event JSON for causal spans: one ``X`` slice per
    span with ``request_id`` in ``args`` (Perfetto can group/filter by
    it), one tid per lane."""
    tids: dict[str, int] = {}
    events: list[dict] = []
    for sid, parent, rid, segment, lane, t0, t1 in spans:
        tid = tids.setdefault(lane, len(tids) + 1)
        events.append({
            "name": segment, "cat": "causal", "ph": "X",
            "ts": t0 * 1e6, "dur": max(0.0, t1 - t0) * 1e6,
            "pid": pid, "tid": tid,
            "args": {"request_id": rid, "span": sid, "parent": parent},
        })
    for lane, tid in tids.items():
        events.append({"name": "thread_name", "ph": "M", "pid": pid,
                       "tid": tid, "args": {"name": lane}})
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def format_critical(report: dict) -> str:
    """Plain-text attribution table."""
    lines = [
        f"critical path over {report['requests']} request(s)   "
        f"e2e p50 {report['e2e_p50_ms']:.3f} ms   "
        f"p95 {report['e2e_p95_ms']:.3f} ms   "
        f"coverage {report['coverage'] * 100:.1f}%",
        "",
        f"{'SEGMENT':<16} {'P50 MS':>10} {'P95 MS':>10} "
        f"{'TOTAL MS':>10} {'SHARE':>7}",
    ]
    for seg, row in report["segments"].items():
        lines.append(f"{seg:<16} {row['p50_ms']:>10.3f} "
                     f"{row['p95_ms']:>10.3f} {row['total_ms']:>10.3f} "
                     f"{row['share'] * 100:>6.1f}%")
    return "\n".join(lines)


def format_whatif(ranked: list[dict], chosen: Optional[dict] = None) -> str:
    """Plain-text what-if report: the chosen segment first (if any),
    then every segment ranked by predicted win."""
    lines: list[str] = []
    if chosen is not None:
        lines += [
            f"what-if: {chosen['segment']} "
            f"{chosen['speedup'] * 100:.0f}% faster  →  "
            f"p50 {chosen['baseline_p50_ms']:.3f} ms → "
            f"{chosen['predicted_p50_ms']:.3f} ms "
            f"({chosen['improvement_pct']:+.1f}% predicted)",
            "",
        ]
    lines.append(f"top optimization targets "
                 f"(each {ranked[0]['speedup'] * 100:.0f}% faster)"
                 if ranked else "no spans recorded")
    for i, row in enumerate(ranked):
        lines.append(f"{i + 1}. {row['segment']:<16} "
                     f"p50 {row['baseline_p50_ms']:.3f} → "
                     f"{row['predicted_p50_ms']:.3f} ms  "
                     f"(-{row['improvement_p50_ms']:.3f} ms)")
    return "\n".join(lines)


def format_requests(spans: Iterable, limit: int = 8) -> str:
    """Per-request drill-down table (the ``repro top`` extension):
    newest requests with end-to-end latency and their heaviest
    critical-path segment."""
    traces = build_requests(spans)
    newest = sorted(traces.values(),
                    key=lambda t: t.root.t0 if t.root else 0.0,
                    reverse=True)[:limit]
    lines = [f"{'REQ':>5} {'E2E MS':>9} {'SPANS':>6}  TOP SEGMENTS"]
    for trace in newest:
        per_seg: dict[str, float] = {}
        for span, lo, hi in critical_path(trace):
            per_seg[span.segment] = per_seg.get(span.segment, 0.0) \
                + (hi - lo)
        top = sorted(per_seg.items(), key=lambda kv: -kv[1])[:3]
        breakdown = "  ".join(f"{seg} {t * 1e3:.2f}ms" for seg, t in top)
        lines.append(f"{trace.request_id:>5} {trace.e2e * 1e3:>9.3f} "
                     f"{len(trace.spans):>6}  {breakdown}")
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# traced demo workloads (the CLI's `repro critical` / `repro whatif`)
# ---------------------------------------------------------------------------

def trace_cluster_cell(cell: str = "bridge", requests: int = 10,
                       workers: int = 4, scale: int = 8,
                       tracer: Optional[CausalTracer] = None,
                       timeout: float = 30.0) -> tuple:
    """Run ``requests`` traced requests of a cluster bench cell on a
    single-process loopback node (one clock domain, so cross-"node"
    spans line up) and return ``(tracer, measured)`` where ``measured``
    maps request id → wall end-to-end seconds.

    Cells: ``bridge`` — the bench's colocated bridge world, one
    request per ``("start", cars, crossings)`` repetition; ``pingpong``
    — one pinger/echo pair, one request per ``("start", rounds)``
    burst.  Cluster imports are lazy so ``repro.obs`` stays importable
    without the cluster layer.
    """
    from ..cluster.bench import (BENCH_CONFIG, BridgeWorld, Echo,
                                 Pinger)
    from ..cluster.message import PickleSerializer, make_path
    from ..cluster.node import ClusterNode, RemoteRef
    from ..cluster.transport import LoopbackHub

    if tracer is None:
        # an analysis run must not truncate: the attribution coverage
        # bar (>= 90% of measured e2e) needs every hop of every
        # request, so the budget is far above anything a cell produces
        tracer = CausalTracer(hop_budget=1_000_000)
    hub = LoopbackHub()
    node = ClusterNode("solo", hub.join("solo"),
                       serializer=PickleSerializer(),
                       config=BENCH_CONFIG, workers=workers,
                       tracer=tracer)
    measured: dict[int, float] = {}
    done = threading.Event()
    #: stamped *inside* the final handler: the request is over when its
    #: last message is handled, not when the driver thread wins the GIL
    #: back after ``done.wait`` — scheduler wakeup latency is not part
    #: of the request and would dilute attribution coverage under load
    end_t = [0.0]
    try:
        if cell == "bridge":
            world = node.spawn(BridgeWorld, node, name="world")
            collector_ref = RemoteRef(node, make_path("solo",
                                                      "collector"))

            from ..actors import Actor

            class _Collector(Actor):
                def receive(self, message, sender):
                    if message == "done":
                        end_t[0] = tracer.now()
                        done.set()

            node.spawn(_Collector, name="collector")
            cars, crossings = max(2, workers), max(4, scale)

            def one_request() -> None:
                world.tell(("start", cars, crossings),
                           sender=collector_ref)
        elif cell == "pingpong":
            node.spawn(Echo, name="echo")
            echo_ref = RemoteRef(node, make_path("solo", "echo"))
            pinger = node.spawn(
                Pinger, echo_ref, 8, done, name="pinger",
                sender_ref=RemoteRef(node, make_path("solo", "pinger")))
            rounds = max(8, scale * 8)

            def one_request() -> None:
                pinger.tell(("start", rounds))
        else:
            raise KeyError(f"unknown traced cell {cell!r}; "
                           "known: bridge, pingpong")

        for _ in range(requests):
            done.clear()
            ctx = tracer.start_request(cell)
            t0 = tracer.now()
            try:
                one_request()
            finally:
                clear_context()
            if not done.wait(timeout):
                raise RuntimeError(f"traced {cell} request timed out "
                                   f"(status: {node.status()})")
            # a stale end stamp (from a previous request) predates t0,
            # so cells without a collector fall back to wall time here
            end = end_t[0] if end_t[0] > t0 else tracer.now()
            measured[ctx.request_id] = end - t0
    finally:
        node.close()
    return tracer, measured
