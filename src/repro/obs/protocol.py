"""Session-typed protocol conformance monitors.

Jongmans & Arbab ("Modularizing and Specifying Protocols among
Threads") argue that the *conversation* between concurrent parties —
not just the individual sends — should be a first-class, checkable
artifact.  This module is that layer for the repro kernel and the
cluster runtime: a declarative :class:`Protocol` describes the legal
message sequences of a conversation as a tiny regular session type, and
a :class:`ProtocolMonitor` rides the shared
:class:`~repro.obs.monitors.MonitorBus`, checking every message the
runtimes already report against the protocol's automaton *online*.

Specs are built from combinators or the mini-language::

    msg("req") >> (msg("reply") | msg("err"))       # combinators
    Protocol("rpc", "(REQ -> (REPLY | ERR))*",      # mini-language
             parties=("server",))

Grammar of the mini-language (case-insensitive message kinds)::

    expr := cat ('|' cat)*          alternation
    cat  := post ('->'? post)*      sequencing ('->' is optional sugar)
    post := atom ('*'|'+'|'?')*     repetition / optionality
    atom := NAME | '(' expr ')'

Two common conversation disciplines ship as constructors:
:func:`turn_taking` (token-style strict alternation, ``(A -> B)*``)
and :func:`at_most_one_outstanding` (a new request only after the
previous reply, ``(REQ -> (REP1|REP2|...))*``).

The monitor is observation-only.  It consumes the exact event streams
every other detector consumes — kernel :class:`~repro.core.trace
.TraceEvent`\\ s from the :class:`~repro.core.scheduler.Scheduler`
(which the threaded-style kernel programs, the
:class:`~repro.actors.sim.SimActorSystem` actors and the explorer all
share), :class:`~repro.coroutines.CoChannel` taps from the
:class:`~repro.coroutines.CoScheduler`, and
:class:`~repro.cluster.observe.ClusterEvent`\\ s from
:class:`~repro.cluster.node.ClusterNode` (including the
zero-serialization local fast path, whose ``cluster-local`` instants
fold send and delivery into one observation) — so it can never perturb
scheduling, fingerprints or sleep sets, and ``explore(monitors=...)``
reports identical run/decision counts with it attached.

A non-conforming message raises a ``protocol-violation`` hazard naming
the offending message, the automaton state it arrived in (the recent
accepted trail), and the expected-next set; the machine then *resyncs*
by dropping the offending message, so one stray message yields one
hazard instead of cascading.
"""

from __future__ import annotations

import re
from collections import deque
from typing import Any, Callable, Iterable, Optional

from .monitors import Detector, Hazard, MonitorBus, default_detectors

__all__ = [
    "PExpr", "msg", "seq", "alt", "star", "plus", "opt", "parse",
    "turn_taking", "at_most_one_outstanding", "request_reply",
    "Protocol", "ProtocolMachine", "ProtocolMonitor", "protocol_bus",
    "message_kind", "kind_from_repr",
]


# ===========================================================================
# spec combinators
# ===========================================================================

class PExpr:
    """A protocol expression — a regular session type over message kinds.

    Compose with ``>>`` (sequence) and ``|`` (alternation), or the
    module-level :func:`seq`/:func:`alt`/:func:`star`/:func:`plus`/
    :func:`opt` constructors.
    """

    __slots__ = ()

    def __rshift__(self, other: "PExpr") -> "PExpr":
        return seq(self, other)

    def __or__(self, other: "PExpr") -> "PExpr":
        return alt(self, other)

    def star(self) -> "PExpr":
        return star(self)

    def plus(self) -> "PExpr":
        return plus(self)

    def opt(self) -> "PExpr":
        return opt(self)


class _Msg(PExpr):
    __slots__ = ("kind",)

    def __init__(self, kind: str):
        if not re.fullmatch(r"[A-Za-z_][\w.-]*", kind):
            raise ValueError(f"bad message kind {kind!r}")
        self.kind = kind.lower()

    def __str__(self) -> str:
        return self.kind.upper()


class _Seq(PExpr):
    __slots__ = ("parts",)

    def __init__(self, parts: tuple):
        self.parts = parts

    def __str__(self) -> str:
        return " -> ".join(_paren(p, self) for p in self.parts)


class _Alt(PExpr):
    __slots__ = ("parts",)

    def __init__(self, parts: tuple):
        self.parts = parts

    def __str__(self) -> str:
        return " | ".join(_paren(p, self) for p in self.parts)


class _Rep(PExpr):
    """Repetition/optionality: ``op`` is one of ``*`` ``+`` ``?``."""

    __slots__ = ("inner", "op")

    def __init__(self, inner: PExpr, op: str):
        self.inner = inner
        self.op = op

    def __str__(self) -> str:
        return f"{_paren(self.inner, self)}{self.op}"


def _paren(child: PExpr, parent: PExpr) -> str:
    """Parenthesize a child when flat printing would mis-bind."""
    need = (isinstance(child, _Alt)
            or (isinstance(child, _Seq) and isinstance(parent, _Rep)))
    return f"({child})" if need else str(child)


def msg(kind: str) -> PExpr:
    """One message of the given kind (case-insensitive)."""
    return _Msg(kind)


def seq(*parts: PExpr) -> PExpr:
    """``a`` then ``b`` then ... in order."""
    flat: list[PExpr] = []
    for p in parts:
        flat.extend(p.parts if isinstance(p, _Seq) else (p,))
    return flat[0] if len(flat) == 1 else _Seq(tuple(flat))


def alt(*parts: PExpr) -> PExpr:
    """Any one of the alternatives."""
    flat: list[PExpr] = []
    for p in parts:
        flat.extend(p.parts if isinstance(p, _Alt) else (p,))
    return flat[0] if len(flat) == 1 else _Alt(tuple(flat))


def star(inner: PExpr) -> PExpr:
    """Zero or more repetitions."""
    return _Rep(inner, "*")


def plus(inner: PExpr) -> PExpr:
    """One or more repetitions."""
    return _Rep(inner, "+")


def opt(inner: PExpr) -> PExpr:
    """Zero or one occurrence."""
    return _Rep(inner, "?")


def turn_taking(*kinds: str) -> PExpr:
    """Token-style strict alternation: ``(A -> B -> ...)*``."""
    if len(kinds) < 2:
        raise ValueError("turn_taking needs at least two kinds")
    return star(seq(*(msg(k) for k in kinds)))


def at_most_one_outstanding(request: str, *replies: str) -> PExpr:
    """A new request is legal only after the previous one's reply:
    ``(REQ -> (REP1 | REP2 | ...))*`` over the merged two-party stream —
    a pipelined second request shows up as REQ·REQ and violates."""
    if not replies:
        raise ValueError("need at least one reply kind")
    return star(seq(msg(request), alt(*(msg(r) for r in replies))))


#: alias matching the ISSUE/paper vocabulary: REQ -> (REPLY | ERR), looped
request_reply = at_most_one_outstanding


# ---------------------------------------------------------------------------
# mini-language parser
# ---------------------------------------------------------------------------

_TOKEN_RE = re.compile(r"\s*(->|[()|*+?]|[A-Za-z_][\w.-]*)")


def parse(text: str) -> PExpr:
    """Parse the protocol mini-language (see module docstring)."""
    tokens: list[str] = []
    pos = 0
    while pos < len(text):
        m = _TOKEN_RE.match(text, pos)
        if m is None:
            if text[pos:].strip():
                raise ValueError(
                    f"protocol spec syntax error at {text[pos:]!r}")
            break
        tokens.append(m.group(1))
        pos = m.end()
    if not tokens:
        raise ValueError("empty protocol spec")
    expr, rest = _parse_alt(tokens, 0)
    if rest != len(tokens):
        raise ValueError(
            f"protocol spec syntax error at {' '.join(tokens[rest:])!r}")
    return expr


def _parse_alt(toks: list[str], i: int) -> tuple[PExpr, int]:
    parts, i = [], i
    part, i = _parse_cat(toks, i)
    parts.append(part)
    while i < len(toks) and toks[i] == "|":
        part, i = _parse_cat(toks, i + 1)
        parts.append(part)
    return alt(*parts), i


def _parse_cat(toks: list[str], i: int) -> tuple[PExpr, int]:
    parts: list[PExpr] = []
    while i < len(toks) and toks[i] not in ("|", ")"):
        if toks[i] == "->":
            i += 1
            continue
        part, i = _parse_post(toks, i)
        parts.append(part)
    if not parts:
        raise ValueError("protocol spec: empty sequence")
    return seq(*parts), i


def _parse_post(toks: list[str], i: int) -> tuple[PExpr, int]:
    inner, i = _parse_atom(toks, i)
    while i < len(toks) and toks[i] in ("*", "+", "?"):
        inner = _Rep(inner, toks[i])
        i += 1
    return inner, i


def _parse_atom(toks: list[str], i: int) -> tuple[PExpr, int]:
    if i >= len(toks):
        raise ValueError("protocol spec: unexpected end")
    tok = toks[i]
    if tok == "(":
        inner, i = _parse_alt(toks, i + 1)
        if i >= len(toks) or toks[i] != ")":
            raise ValueError("protocol spec: unbalanced '('")
        return inner, i + 1
    if tok in (")", "|", "*", "+", "?", "->"):
        raise ValueError(f"protocol spec: unexpected {tok!r}")
    return msg(tok), i + 1


# ===========================================================================
# automaton compilation (Thompson NFA -> epsilon-free transition table)
# ===========================================================================

_UNSET = object()           # cache-miss sentinel (None is a valid value)


class _Compiled:
    __slots__ = ("start", "accept", "delta", "alphabet", "steps")

    def __init__(self, start: frozenset, accept: int,
                 delta: dict, alphabet: frozenset):
        self.start = start          # epsilon-closed initial state set
        self.accept = accept        # the single accepting NFA state
        self.delta = delta          # state -> kind -> frozenset(states)
        self.alphabet = alphabet
        #: (state set, kind) -> next state set | None, filled lazily.
        #: The subset construction done on demand: bounded by the DFA
        #: size, shared by every machine of the spec, and it turns the
        #: per-message advance into one dict probe on the hot path.
        self.steps: dict = {}


def _compile(expr: PExpr) -> _Compiled:
    eps: dict[int, set[int]] = {}
    moves: list[tuple[int, str, int]] = []
    counter = [0]

    def new_state() -> int:
        counter[0] += 1
        return counter[0] - 1

    def link(a: int, b: int) -> None:
        eps.setdefault(a, set()).add(b)

    def build(e: PExpr) -> tuple[int, int]:
        if isinstance(e, _Msg):
            s, t = new_state(), new_state()
            moves.append((s, e.kind, t))
            return s, t
        if isinstance(e, _Seq):
            first, last = build(e.parts[0])
            for part in e.parts[1:]:
                ns, nt = build(part)
                link(last, ns)
                last = nt
            return first, last
        if isinstance(e, _Alt):
            s, t = new_state(), new_state()
            for part in e.parts:
                ps, pt = build(part)
                link(s, ps)
                link(pt, t)
            return s, t
        if isinstance(e, _Rep):
            s, t = new_state(), new_state()
            ps, pt = build(e.inner)
            link(s, ps)
            link(pt, t)
            if e.op in ("*", "?"):
                link(s, t)
            if e.op in ("*", "+"):
                link(pt, ps)
            return s, t
        raise TypeError(f"not a protocol expression: {e!r}")

    start, accept = build(expr)

    closures: dict[int, frozenset] = {}

    def closure(state: int) -> frozenset:
        got = closures.get(state)
        if got is not None:
            return got
        seen = {state}
        stack = [state]
        while stack:
            for nxt in eps.get(stack.pop(), ()):
                if nxt not in seen:
                    seen.add(nxt)
                    stack.append(nxt)
        got = closures[state] = frozenset(seen)
        return got

    delta: dict[int, dict[str, frozenset]] = {}
    alphabet = set()
    for src, kind, dst in moves:
        alphabet.add(kind)
        delta.setdefault(src, {}).setdefault(kind, set())
    for src, kind, dst in moves:
        delta[src][kind] = frozenset(
            set(delta[src][kind]) | closure(dst))
    return _Compiled(closure(start), accept, delta, frozenset(alphabet))


class ProtocolMachine:
    """One live conformance automaton (the runtime state of a spec)."""

    __slots__ = ("_compiled", "current", "trail", "moved")

    def __init__(self, compiled: _Compiled):
        self._compiled = compiled
        self.current: frozenset = compiled.start
        #: recent accepted message kinds, for human-readable state labels
        self.trail: deque = deque(maxlen=8)
        self.moved = False

    def expected(self) -> tuple[str, ...]:
        """Message kinds legal in the current state, sorted."""
        delta = self._compiled.delta
        kinds: set[str] = set()
        for state in self.current:
            kinds.update(delta.get(state, ()))
        return tuple(sorted(kinds))

    @property
    def accepting(self) -> bool:
        return self._compiled.accept in self.current

    def advance(self, kind: str) -> bool:
        """Consume one message kind; False means non-conforming (the
        state is left unchanged so the caller can resync)."""
        compiled = self._compiled
        key = (self.current, kind)
        nxt = compiled.steps.get(key, _UNSET)
        if nxt is _UNSET:
            delta = compiled.delta
            acc: set[int] = set()
            for state in self.current:
                acc.update(delta.get(state, {}).get(kind, ()))
            nxt = compiled.steps[key] = frozenset(acc) if acc else None
        if nxt is None:
            return False
        self.current = nxt
        self.trail.append(kind)
        self.moved = True
        return True

    def state_label(self) -> str:
        if not self.trail:
            return "the initial state"
        return "state after " + "·".join(self.trail)


# ===========================================================================
# message-kind classification
# ===========================================================================

#: leading quoted token of a payload repr: "('req', 1)" / "'ping'" /
#: "['a', ...]" — also matches through the SimActorSystem envelope
#: shape "('req', 1)<-driver"
_KIND_RE = re.compile(r"^[(\[]?\s*[bu]?['\"]([A-Za-z_][\w.-]*)['\"]")
#: kernel Envelope repr: <Envelope #seq PAYLOAD from sender>
_ENV_RE = re.compile(r"^<Envelope #\d+ (.*) from [^ >]+>$")


#: head string / payload type -> kind token.  Classification runs once
#: per distinct message shape instead of once per message (the cluster
#: pump calls this for every delivery); the clear() bound keeps a
#: pathological stream of unique heads from growing it without limit.
_KIND_CACHE: dict = {}


def message_kind(message: Any) -> Optional[str]:
    """Kind token of a live message object (the cluster-side classifier).

    Tagged tuples/lists classify by their string head, strings by
    themselves, everything else by type name — the conventions every
    actor example in this repo already follows.
    """
    if isinstance(message, (tuple, list)) and message \
            and isinstance(message[0], str):
        key: Any = message[0]
    elif isinstance(message, str):
        key = message
    else:
        key = type(message)
    got = _KIND_CACHE.get(key, _UNSET)
    if got is _UNSET:
        if len(_KIND_CACHE) > 4096:
            _KIND_CACHE.clear()
        got = _KIND_CACHE[key] = (
            _norm_kind(key) if isinstance(key, str)
            else key.__name__.lower())
    return got


def kind_from_repr(text: str) -> Optional[str]:
    """Kind token recovered from a payload *repr* (the kernel-side
    classifier — detectors only ever see reprs, never live objects)."""
    m = _KIND_RE.match(text)
    if m is not None:
        return m.group(1).lower()
    m = re.match(r"^[A-Za-z_][\w.-]*$", text)
    if m is not None:                         # bare token, e.g. True
        return text.lower()
    return None


def _norm_kind(token: str) -> Optional[str]:
    token = token.lower()
    return token if re.fullmatch(r"[\w.-]+", token) else None


def _envelope_inner(payload_repr: Optional[str]) -> Optional[str]:
    if not payload_repr:
        return None
    m = _ENV_RE.match(payload_repr)
    return m.group(1) if m is not None else payload_repr


def _send_payload(effect_repr: str, mailbox: str) -> Optional[str]:
    """Payload repr out of a ``send <payload> to <mailbox>`` label."""
    if not effect_repr.startswith("send "):
        return None
    tail = f" to {mailbox}"
    body = effect_repr[5:]
    return body[:-len(tail)] if body.endswith(tail) else body


# ===========================================================================
# the protocol and its monitor
# ===========================================================================

class Protocol:
    """A named conformance spec bound to the parties it governs.

    ``spec`` is a :class:`PExpr` or mini-language text.  ``parties``
    names the conversation's observation points — kernel mailbox names,
    :class:`~repro.coroutines.CoChannel` names, or cluster actor names;
    empty means "any".  ``at`` selects the observation event:
    ``"deliver"`` (default — conversation order as the receiver sees
    it) or ``"send"`` (deposit order).  Message kinds outside the
    spec's alphabet are ignored unless ``strict=True``; with
    ``complete=True``, a run that ends mid-conversation additionally
    reports an informational ``protocol-incomplete`` hazard.
    ``classify`` overrides the payload-repr classifier
    (:func:`kind_from_repr`) for kernel events.
    """

    __slots__ = ("name", "expr", "text", "parties", "at", "strict",
                 "complete", "classify", "_compiled")

    def __init__(self, name: str, spec: Any, *,
                 parties: Iterable[str] = (),
                 at: str = "deliver", strict: bool = False,
                 complete: bool = False,
                 classify: Optional[Callable[[str], Optional[str]]] = None):
        if at not in ("deliver", "send"):
            raise ValueError(f"at must be 'deliver' or 'send', got {at!r}")
        self.name = name
        self.expr = parse(spec) if isinstance(spec, str) else spec
        if not isinstance(self.expr, PExpr):
            raise TypeError(f"spec must be a PExpr or str, got {spec!r}")
        self.text = spec if isinstance(spec, str) else str(self.expr)
        self.parties = tuple(parties)
        self.at = at
        self.strict = strict
        self.complete = complete
        self.classify = classify
        self._compiled = _compile(self.expr)

    @property
    def alphabet(self) -> frozenset:
        return self._compiled.alphabet

    def machine(self) -> ProtocolMachine:
        """A fresh automaton (specs are immutable and reusable)."""
        return ProtocolMachine(self._compiled)

    def watches(self, where: str) -> bool:
        return not self.parties or where in self.parties

    def describe(self) -> dict[str, Any]:
        return {"name": self.name, "spec": self.text,
                "parties": list(self.parties), "at": self.at,
                "alphabet": sorted(self.alphabet),
                "strict": self.strict, "complete": self.complete}

    def __repr__(self) -> str:
        where = f" @ {','.join(self.parties)}" if self.parties else ""
        return f"<Protocol {self.name!r}: {self.text}{where}>"


class ProtocolMonitor(Detector):
    """Online conformance checking of one or more :class:`Protocol`\\ s.

    Consumes kernel send/deliver events (any runtime riding the
    Scheduler — threads-style programs and SimActorSystem actors —
    plus CoChannel taps) and ``cluster-send``/``cluster-recv``/
    ``cluster-local`` events.  Violations are ``error`` hazards keyed
    on ``(kind, subject, wire seq)`` so the same non-conforming message
    observed from both ends of a cluster link counts once.
    """

    name = "protocol"
    #: tells event sources (ClusterNode) to stamp a ``msg`` kind token
    #: into the events they emit — cluster frames do not carry payloads
    wants_message_kinds = True

    def __init__(self, protocols: Iterable[Protocol],
                 max_violations: int = 8):
        self.protocols = tuple(protocols)
        self.max_violations = max_violations
        self._machines = [p.machine() for p in self.protocols]
        self._violations = [0] * len(self.protocols)

    # -- event classification ------------------------------------------
    @staticmethod
    def _observations(event: Any) -> list[tuple]:
        """(point, where, kind-token, payload-desc, wire-seq) tuples
        carried by one event, in happened order."""
        ek = event.kind
        obs: list[tuple] = []
        if ek.startswith("cluster-"):
            extra = getattr(event, "extra", None) or {}
            token = extra.get("msg")
            if token is None:
                return obs
            if ek == "cluster-recv":
                obs.append(("deliver", event.actor, token, token,
                            event.recv_seq))
            elif ek == "cluster-send":
                obs.append(("send", event.actor, token, token,
                            event.msg_seq))
            elif ek == "cluster-local":
                # the zero-serialization fast path folds send and
                # delivery into one instant: satisfy both watch points
                obs.append(("send", event.actor, token, token, None))
                obs.append(("deliver", event.actor, token, token, None))
            return obs
        recv_mbox = getattr(event, "recv_mbox", None)
        if recv_mbox is not None:
            raw = _envelope_inner(event.payload_repr)
            if raw is not None:
                obs.append(("deliver", recv_mbox, None, raw,
                            event.recv_seq))
        msg_seq = getattr(event, "msg_seq", None)
        if msg_seq is not None and event.obj_name:
            raw = _send_payload(event.effect_repr, event.obj_name)
            if raw is not None:
                obs.append(("send", event.obj_name, None, raw, msg_seq))
        return obs

    # -- Detector protocol ---------------------------------------------
    def on_event(self, view, event, ready):
        obs = self._observations(event)
        if not obs:
            return
        for i, proto in enumerate(self.protocols):
            machine = self._machines[i]
            for point, where, token, raw, seqv in obs:
                if proto.at != point or not proto.watches(where):
                    continue
                kind = token
                if kind is None:
                    kind = (proto.classify or kind_from_repr)(raw)
                if kind is None or kind not in proto.alphabet:
                    if not proto.strict or kind is None:
                        continue
                    hz = self._violation(i, machine, event.step,
                                         event.task_name, where,
                                         raw, kind, seqv,
                                         outside_alphabet=True)
                    if hz is not None:
                        yield hz
                    continue
                if machine.advance(kind):
                    continue
                hz = self._violation(i, machine, event.step,
                                     event.task_name, where,
                                     raw, kind, seqv)
                if hz is not None:
                    yield hz

    # -- cluster hot-path tap ------------------------------------------
    def cluster_points(self) -> frozenset:
        """Observation points ('send'/'deliver') any protocol consumes —
        lets an event source skip classifying messages at points no
        spec watches."""
        return frozenset(p.at for p in self.protocols)

    def cluster_tap(self, point: str, where: str, token: Optional[str],
                    seqv: Optional[int], step: int,
                    node: str) -> Optional[list]:
        """One cluster observation, without the event machinery.

        Semantically identical to :meth:`on_event` on a stamped
        ``cluster-*`` event carrying a single (point, where, token)
        observation, but built for the cluster runtime's per-message
        path: no ClusterEvent, no KernelView, no generator — just the
        automaton step.  Returns the violation hazards (``None`` in
        the conforming common case); the caller publishes them on its
        bus so cross-link dedup and ``on_hazard`` hooks behave exactly
        as on the fed path.
        """
        out = None
        for i, proto in enumerate(self.protocols):
            if proto.at != point or not proto.watches(where):
                continue
            if token is None or token not in proto.alphabet:
                if not proto.strict or token is None:
                    continue
                hz = self._violation(i, self._machines[i], step,
                                     f"{node}/{where}", where, token,
                                     token, seqv, outside_alphabet=True)
            elif self._machines[i].advance(token):
                continue
            else:
                hz = self._violation(i, self._machines[i], step,
                                     f"{node}/{where}", where, token,
                                     token, seqv)
            if hz is not None:
                if out is None:
                    out = []
                out.append(hz)
        return out

    def cluster_entries(self) -> list:
        """Flattened per-protocol rows for the cluster conformance pump:
        ``(at, watch, alphabet, strict, advance, index)``.

        Everything the per-message inner loop needs, pre-resolved to
        locals — ``watch`` is ``None`` for watch-everything specs,
        ``advance`` is the live machine's bound step.  Violations (the
        rare leg) come back through :meth:`cluster_violation`."""
        out = []
        for i, proto in enumerate(self.protocols):
            watch = frozenset(proto.parties) if proto.parties else None
            out.append((proto.at, watch, proto.alphabet, proto.strict,
                        self._machines[i].advance, i))
        return out

    def cluster_violation(self, i: int, where: str, token: Optional[str],
                          node: str, step: int, seqv: Optional[int],
                          outside_alphabet: bool = False
                          ) -> Optional[Hazard]:
        """Build the hazard for a non-conforming cluster message seen by
        the fast pump (same bookkeeping/capping as the fed path)."""
        return self._violation(i, self._machines[i], step,
                               f"{node}/{where}", where, token, token,
                               seqv, outside_alphabet=outside_alphabet)

    def _violation(self, i, machine, step, task, where, raw, kind, seqv,
                   outside_alphabet: bool = False) -> Optional[Hazard]:
        proto = self.protocols[i]
        self._violations[i] += 1
        if self._violations[i] > self.max_violations:
            return None
        expected = ", ".join(machine.expected()) or "end of session"
        what = ("outside the protocol alphabet" if outside_alphabet
                else f"cannot follow {machine.state_label()}")
        return Hazard(
            kind="protocol-violation", severity="error",
            message=f"protocol {proto.name!r} at {where}: message {raw} "
                    f"({kind!r}) {what}; expected {{{expected}}}",
            step=step, tasks=(task,),
            objects=(proto.name, where),
            subject=f"{proto.name}@{where}", seq=seqv)

    def on_end(self, view, outcome, detail):
        for proto, machine in zip(self.protocols, self._machines):
            if proto.complete and machine.moved and not machine.accepting:
                expected = ", ".join(machine.expected()) or "nothing"
                yield Hazard(
                    kind="protocol-incomplete", severity="info",
                    message=f"protocol {proto.name!r} ended in "
                            f"{machine.state_label()}; still expected "
                            f"{{{expected}}}",
                    step=0, objects=(proto.name,),
                    subject=f"{proto.name}")

    def counts(self) -> dict[str, int]:
        """Violations observed per protocol (capped hazards included)."""
        return {p.name: n for p, n in zip(self.protocols,
                                          self._violations) if n}


def protocol_bus(protocols: Iterable[Protocol],
                 include_default: bool = True,
                 max_violations: int = 8) -> MonitorBus:
    """A MonitorBus carrying a :class:`ProtocolMonitor` — optionally on
    top of the full shipped detector set."""
    detectors: list[Detector] = \
        default_detectors() if include_default else []
    detectors.append(ProtocolMonitor(protocols,
                                     max_violations=max_violations))
    return MonitorBus(detectors)
