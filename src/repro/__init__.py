"""repro — executable reproduction of Li & Kraemer,
"Programming with Concurrency: Threads, Actors, and Coroutines" (2013).

Subpackages
-----------
core
    Deterministic simulation kernel: generator tasks, effects, locks,
    monitors, mailboxes, channels, logical clocks, replayable schedules.
threads
    Java-flavored thread model: JThread, synchronized monitors,
    wait/notify, thread pools, concurrent data structures.
actors
    Scala-flavored actor model: ActorSystem, ActorRef, asynchronous
    send, selective receive, become, ask.
coroutines
    Coroutine model per de Moura & Ierusalimschy's taxonomy: asymmetric
    and symmetric first-class stackful coroutines, cooperative
    scheduler, channels, asyncio bridge.
pseudocode
    Lexer/parser/interpreter for the paper's language-independent
    pseudocode notation (Figures 1-5), with exhaustive output
    enumeration.
verify
    CHESS-style systematic interleaving explorer, safety/liveness
    properties, happens-before race detector, Test-1-style
    reachability queries.
problems
    The course's classical problems (single-lane bridge, sleeping
    barber, party matching, bounded buffer, dining philosophers, ...)
    each in thread / actor / coroutine form.
misconceptions
    The paper's misconception taxonomy (Table I) and each catalogued
    misconception (M1-M6, S1-S8) implemented as a mutated semantics.
study
    Cohort simulation, Test 1 generation/grading, grouping, surveys,
    statistics — regenerates Tables I-III and the survey paragraphs.
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
