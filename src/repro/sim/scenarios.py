"""Canned simulation worlds — including the PR-5 regression fixtures.

Each :class:`Scenario` builds a small cluster world (2–3 nodes, tight
protocol windows, a scripted fault) whose schedule space the explorer
can cover within a CI budget.  ``pins`` names the hazard kinds the
scenario exists to guard: on *fixed* code no schedule may raise them,
and the mutation fixtures in ``tests/test_sim_explore.py`` prove that
reverting the corresponding fix re-introduces a schedule that does —
the monitor, not the fix, is what the assertion exercises.

The fixed/mutated pairs pinned here (review fixes from the cluster
reliability PR):

========================  =======================================
pin                       reverted fix
========================  =======================================
``sim-resync-stall``      ``DedupTable.skip_to`` (SKIP resync)
``sim-credit-leak``       ``ClusterNode._abandon`` credit release
``sim-recovery-loss``     DOWN→ALIVE credit-gate re-mint
``sim-evict-leak``        ``ClusterNode._evict_peer``
``sim-duplicate-delivery``  ``DedupTable.fresh``
========================  =======================================
"""

from __future__ import annotations

from typing import Callable, Optional

from ..actors.actor import Actor
from ..cluster.message import ACK
from ..obs.monitors import MonitorBus
from .world import SimWorld, sim_config

__all__ = ["Scenario", "SCENARIOS", "Sink", "get"]


class Sink(Actor):
    """Accepts everything; the delivery ledger does the bookkeeping."""

    def receive(self, message, sender):
        pass


class Scenario:
    """A named, parameterless world recipe.

    ``build(bus, seed)`` returns a fresh :class:`SimWorld`;
    :meth:`factory` curries it into the one-argument factory the
    explorer re-invokes per run.
    """

    def __init__(self, name: str, title: str,
                 build: Callable[[Optional[MonitorBus], Optional[int]],
                                 SimWorld],
                 *, budget: int = 400, pins: tuple = ()):
        self.name = name
        self.title = title
        self.build = build
        self.budget = budget
        #: hazard kinds this scenario regression-pins (never raised on
        #: fixed code; raised by some schedule when the fix is reverted)
        self.pins = pins

    def factory(self, seed: Optional[int] = None):
        return lambda bus: self.build(bus, seed)


# ---------------------------------------------------------------------------
# recipes
# ---------------------------------------------------------------------------

def _skip_resync(bus, seed):
    """Lose one message forever; its SKIP must unblock the successors.

    ``m1``'s every transmission is eaten, so the sender exhausts its
    retries and advertises SKIP; ``m2``/``m3`` arrive out of order and
    sit sparse until the receiver compacts over the hole.  With
    ``DedupTable.skip_to`` reverted the sparse seqs outlive quiescence
    → ``sim-resync-stall``.
    """
    w = SimWorld(("a", "b"), config=sim_config(), bus=bus, seed=seed,
                 horizon=14.0)
    w.connect_all()
    w.spawn("b", Sink, name="sink")
    w.send("a", "b/sink", "m1", "m2", "m3", label="client")
    w.hub.drop_where("a", "b", lambda env: env.payload == "m1", count=8)
    return w


def _credit_return(bus, seed):
    """Exhaust retries on a lossy link; abandoned TELLs must return
    their credit.  With the ``_abandon`` release reverted the gate
    settles short of its window → ``sim-credit-leak``."""
    w = SimWorld(("a", "b"), config=sim_config(), bus=bus, seed=seed,
                 horizon=12.0)
    w.connect_all()
    w.spawn("b", Sink, name="sink")
    w.send("a", "b/sink", "c1", "c2", label="client")
    w.hub.drop_where("a", "b",
                     lambda env: env.payload in ("c1", "c2"), count=8)
    return w


def _recovery_remint(bus, seed):
    """Crash a peer long enough to be marked DOWN, then bring it back.

    Asymmetric detectors: ``a`` gives up on ``b`` after 4s of silence,
    ``b`` tolerates 30s — so when ``b`` rejoins it still heartbeats
    ``a`` and the DOWN→ALIVE transition happens.  The post-recovery
    send must mint a fresh credit gate; with the ``_heard_from`` gate
    re-mint reverted it hits the gate broken at down-time and
    dead-letters against a peer the detector says is ALIVE →
    ``sim-recovery-loss``.
    """
    cfg_a = sim_config(suspect_after=2.0, down_after=4.0,
                       evict_after=40.0)
    cfg_b = sim_config(suspect_after=25.0, down_after=30.0,
                       evict_after=40.0)
    w = SimWorld(("a", "b"), config={"a": cfg_a, "b": cfg_b}, bus=bus,
                 seed=seed, horizon=30.0)
    w.connect_all()
    w.spawn("b", Sink, name="sink")
    w.send("a", "b/sink", "r1", label="first")
    w.crash("b", after=("first",),
            when=lambda w: w.ledger["r1"].delivered > 0
            and not len(w.nodes["a"]._outboxes.get("b", ())))
    w.recover("b", after=("crash-b",),
              when=lambda w: w.nodes["a"].peer_state("b") == "down")
    w.send("a", "b/sink", "r2", label="second", after=("recover-b",),
           when=lambda w: w.nodes["a"].peer_state("b") == "alive")
    return w


def _eviction(bus, seed):
    """A peer that stays DOWN past the eviction window must be
    forgotten.  With ``_evict_peer`` reverted the corpse stays in the
    peer table far past its due date → ``sim-evict-leak``."""
    cfg_a = sim_config(heartbeat_interval=1.0, suspect_after=1.5,
                       down_after=2.0, evict_after=3.0)
    w = SimWorld(("a", "b"), config={"a": cfg_a, "b": sim_config()},
                 bus=bus, seed=seed, horizon=12.0)
    w.connect_all()
    w.crash("b")
    return w


def _dup_delivery(bus, seed):
    """Drop the first ACK so the sender retransmits a delivered
    message; dedup must swallow the copy.  With ``DedupTable.fresh``
    reverted every retransmission reaches the actor →
    ``sim-duplicate-delivery``."""
    w = SimWorld(("a", "b"), config=sim_config(), bus=bus, seed=seed,
                 horizon=12.0)
    w.connect_all()
    w.spawn("b", Sink, name="sink")
    w.send("a", "b/sink", "d1", "d2", label="client")
    w.hub.drop_where("b", "a", lambda env: env.kind == ACK, count=1)
    return w


def _chaos(bus, seed):
    """Seeded random loss on one link; the reliability layer must make
    every outcome clean (delivered or dead-lettered, credits home).
    Exists to prove fault injection is replayable: same seed ⇒ same
    drops ⇒ same digest."""
    w = SimWorld(("a", "b"), config=sim_config(max_attempts=3), bus=bus,
                 seed=seed if seed is not None else 0, horizon=20.0)
    w.connect_all()
    w.spawn("b", Sink, name="sink")
    w.hub.chaos(src="a", dst="b", drop=0.4, dup=0.1)
    w.send("a", "b/sink", "k1", "k2", "k3", "k4", label="client")
    return w


def _crash_rejoin(bus, seed):
    """The CI smoke world: three nodes, two client streams into one,
    crash the server mid-traffic, rejoin, keep sending."""
    cfg_client = sim_config(suspect_after=2.0, down_after=4.0,
                            evict_after=40.0)
    cfg_server = sim_config(suspect_after=25.0, down_after=30.0,
                            evict_after=40.0)
    w = SimWorld(("a", "b", "c"),
                 config={"a": cfg_client, "b": cfg_client,
                         "c": cfg_server},
                 bus=bus, seed=seed, horizon=30.0)
    w.connect_all()
    w.spawn("c", Sink, name="sink")
    w.send("a", "c/sink", "w1", label="first-a")
    w.send("b", "c/sink", "w2", label="first-b")
    w.crash("c", after=("first-a", "first-b"),
            when=lambda w: w.ledger["w1"].delivered > 0
            and w.ledger["w2"].delivered > 0
            and not len(w.nodes["a"]._outboxes.get("c", ()))
            and not len(w.nodes["b"]._outboxes.get("c", ())))
    w.recover("c", after=("crash-c",),
              when=lambda w: w.nodes["a"].peer_state("c") == "down"
              and w.nodes["b"].peer_state("c") == "down")
    w.send("a", "c/sink", "w3", label="second-a", after=("recover-c",),
           when=lambda w: w.nodes["a"].peer_state("c") == "alive")
    return w


SCENARIOS: dict[str, Scenario] = {s.name: s for s in (
    Scenario("skip_resync",
             "lost message: SKIP must resync the dedup prefix",
             _skip_resync, budget=400, pins=("sim-resync-stall",)),
    Scenario("credit_return",
             "retry exhaustion: abandoned TELLs return their credit",
             _credit_return, budget=400, pins=("sim-credit-leak",)),
    Scenario("recovery_remint",
             "DOWN→ALIVE: recovery re-mints broken credit gates",
             _recovery_remint, budget=500, pins=("sim-recovery-loss",)),
    Scenario("eviction",
             "long-dead peer is evicted from every table",
             _eviction, budget=300, pins=("sim-evict-leak",)),
    Scenario("dup_delivery",
             "lost ACK: dedup swallows the retransmitted copy",
             _dup_delivery, budget=400, pins=("sim-duplicate-delivery",)),
    Scenario("chaos",
             "seeded random loss/dup on one link, replayable by seed",
             _chaos, budget=500, pins=()),
    Scenario("crash_rejoin",
             "3 nodes: crash the server mid-traffic, rejoin, resume",
             _crash_rejoin, budget=600, pins=()),
)}


def get(name: str) -> Scenario:
    try:
        return SCENARIOS[name]
    except KeyError:
        raise KeyError(f"unknown scenario {name!r}; "
                       f"have: {', '.join(sorted(SCENARIOS))}") from None
