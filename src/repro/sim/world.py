"""SimWorld — a multi-node cluster as one explorable kernel program.

The world owns everything nondeterministic about a cluster run and
turns each piece into a *decision*:

* ``deliver src>dst`` — hand the head-of-line frame of one link to its
  destination node (cross-link interleaving = message reordering);
* ``actor node/name`` — let one inline actor process one mailbox
  message;
* ``do <label>`` — fire one scripted action (client sends, crash,
  recover) whose dependencies/guards are satisfied;
* ``advance`` — jump the shared virtual clock to the next protocol
  deadline (retry due, heartbeat, suspect/down/evict threshold) and
  run every live node's maintenance tick at that instant.

A single driver task yields :class:`~repro.core.effects.Choice` over
the currently-enabled decisions, so the existing DFS explorer
enumerates cluster schedules exactly like thread interleavings, and
:meth:`SimWorld.fingerprint` (wired to ``Scheduler.fingerprint_extra``)
lets the fingerprint reduction prune schedules that reconverge to the
same protocol state.

Nodes run with ``timer=False`` (no timer thread — ticks are decisions),
an :class:`~repro.sim.inline.InlineActorSystem` (no dispatch threads —
actor runs are decisions), ``trace=True`` (synchronous conformance, no
pump thread), and the world's :class:`~repro.sim.clock.SimClock` as
both ``clock`` and ``wall`` so retries/heartbeats/timeouts *and* the
timestamps on exported traces are virtual — a replayed run is
byte-comparable.

Crash semantics are SIGSTOP-style: a crashed node keeps its state but
is never ticked, its actors never run, its links are cut and their
in-flight frames purged; ``recover`` restores the links.  That is the
shape that exercises the DOWN→ALIVE protocol paths.

On top of the schedule machinery the world keeps a *delivery ledger*
for every payload handed to :meth:`send`, and :meth:`finish` audits it
— plus the protocol state of every live node — into hazards on the
monitor bus: ``sim-lost-message``, ``sim-duplicate-delivery``,
``sim-resync-stall`` (out-of-order deliveries never compacted at
quiescence — the SKIP-resync failure mode), ``sim-credit-leak``
(world quiescent but a healthy gate is short of its window),
``sim-recovery-loss`` (dead-lettered "node down" while the peer looks
ALIVE — the gate re-mint failure mode) and ``sim-evict-leak`` (a peer
DOWN far past the eviction window is still tracked).
"""

from __future__ import annotations

import hashlib
import zlib
from collections import deque
from typing import Any, Callable, Iterable, Optional, Union

from ..cluster.message import PickleSerializer, split_path
from ..cluster.node import ClusterConfig, ClusterNode, PeerState
from ..cluster.transport import LoopbackHub
from ..core.effects import Choice
from ..core.policy import FixedPolicy, RandomPolicy
from ..core.scheduler import Scheduler
from ..obs.monitors import Hazard, MonitorBus
from ..verify.explorer import ExplorationResult, explore
from .clock import SimClock
from .inline import InlineActorSystem

__all__ = ["SimHub", "SimWorld", "SimRun", "sim_config",
           "world_program", "explore_world", "run_world"]


def sim_config(**overrides: Any) -> ClusterConfig:
    """Small-world cluster tunables: tight windows and whole-second
    deadlines keep the enumerable schedule space small, and
    ``park_timeout=0`` makes backpressure fail fast (an observable
    dead letter) instead of blocking the single simulation thread."""
    base: dict[str, Any] = dict(
        mailbox_bound=4, credit_window=4, park_timeout=0.0,
        retry_timeout=1.0, retry_factor=2.0, max_attempts=2,
        heartbeat_interval=2.0, suspect_after=5.0, down_after=8.0,
        evict_after=8.0, tick_interval=1.0, ack_every=1,
        flight_sample=1)
    base.update(overrides)
    return ClusterConfig(**base)


class SimHub(LoopbackHub):
    """LoopbackHub with *deferred* delivery: frames queue per link and
    only move when the world schedules a ``deliver`` decision.

    Inherits the whole fault surface (count drops/dups, partitions,
    cuts, seeded chaos) via the shared ``_admit`` bookkeeping, and adds
    :meth:`drop_where` — deterministic selective drops matched on the
    decoded envelope (e.g. "eat every transmission of seq 1"), which is
    how fixtures force retry exhaustion without racing the retry count.
    """

    def __init__(self, seed: Optional[int] = None,
                 serializer: Optional[Any] = None):
        super().__init__(seed=seed)
        self.serializer = serializer if serializer is not None \
            else PickleSerializer()
        #: in-flight frames per (src, dst) link, FIFO per link
        self.queues: dict[tuple[str, str], deque] = {}
        # [src, dst, predicate(Envelope) -> bool, remaining]
        self._matchers: list[list] = []

    def drop_where(self, src: str, dst: str,
                   predicate: Callable[[Any], bool],
                   count: int = 1) -> None:
        """Drop the next ``count`` frames on ``src→dst`` whose decoded
        envelope satisfies ``predicate``."""
        self._matchers.append([src, dst, predicate, count])

    def _route(self, src: str, dst: str, frame: bytes) -> bool:
        for m in self._matchers:
            if m[3] > 0 and m[0] == src and m[1] == dst:
                try:
                    env = self.serializer.decode(frame)
                except Exception:
                    env = None
                if env is not None and m[2](env):
                    m[3] -= 1
                    self.dropped[(src, dst)] = \
                        self.dropped.get((src, dst), 0) + 1
                    return True
        copies = self._admit(src, dst, frame)
        if copies < 0:
            return False
        if copies:
            queue = self.queues.get((src, dst))
            if queue is None:
                queue = self.queues[(src, dst)] = deque()
            for _ in range(copies):
                queue.append(frame)
        return True

    def in_flight(self) -> list[tuple[str, str, int]]:
        """Non-empty links as (src, dst, depth), sorted — the world's
        ``deliver`` decision menu."""
        return [(s, d, len(q))
                for (s, d), q in sorted(self.queues.items()) if q]

    def deliver_next(self, src: str, dst: str) -> None:
        """Pop the head frame of one link into the destination node."""
        frame = self.queues[(src, dst)].popleft()
        self._nodes[dst]._deliver(frame)

    def purge(self, node: str) -> int:
        """Drop every queued frame to/from ``node`` (crash semantics);
        returns how many frames were lost."""
        lost = 0
        for (s, d), q in self.queues.items():
            if node in (s, d) and q:
                lost += len(q)
                self.dropped[(s, d)] = \
                    self.dropped.get((s, d), 0) + len(q)
                q.clear()
        return lost


class _Tracked:
    """Ledger row for one payload handed to :meth:`SimWorld.send`."""

    __slots__ = ("payload", "path", "delivered", "dead", "whys")

    def __init__(self, payload: Any, path: str):
        self.payload = payload
        self.path = path
        self.delivered = 0
        self.dead = 0
        self.whys: list[str] = []


class _Action:
    """One scripted step: fires at most once, when deps/guard allow."""

    __slots__ = ("label", "fn", "after", "when", "done")

    def __init__(self, label: str, fn: Callable[["SimWorld"], None],
                 after: tuple, when: Optional[Callable]):
        self.label = label
        self.fn = fn
        self.after = after
        self.when = when
        self.done = False


class SimWorld:
    """2–5 ClusterNodes + hub + virtual clock + script, fully steppable.

    ``config`` is one :class:`ClusterConfig` for every node or a
    ``{name: config}`` dict (asymmetric failure detectors are how a
    recovering node gets heard again before its peers also give up on
    it).  ``bus`` is the per-run :class:`MonitorBus` hazards publish
    to (None collects them on ``world.hazards`` only).
    """

    def __init__(self, names: Iterable[str] = ("a", "b"), *,
                 config: Union[ClusterConfig, dict, None] = None,
                 seed: Optional[int] = None,
                 horizon: float = 30.0,
                 bus: Optional[MonitorBus] = None):
        self.clock = SimClock()
        self.hub = SimHub(seed=seed)
        self.seed = seed
        self.horizon = float(horizon)
        self.bus = bus
        self.crashed: set[str] = set()
        self.decisions = 0
        self.log: list[str] = []
        self.hazards: list[Hazard] = []
        self._hazard_keys: set = set()
        self.ledger: dict[Any, _Tracked] = {}
        self._actions: list[_Action] = []
        self.finished = False

        self.nodes: dict[str, ClusterNode] = {}
        self.systems: dict[str, InlineActorSystem] = {}
        self.transports: dict[str, Any] = {}
        default = config if isinstance(config, ClusterConfig) else None
        for name in names:
            if isinstance(config, dict):
                cfg = config.get(name) or sim_config()
            else:
                cfg = default or sim_config()
            system = InlineActorSystem(name=f"{name}.sim")
            transport = self.hub.join(name)
            node = ClusterNode(name, transport, config=cfg,
                               system=system, timer=False, trace=True,
                               clock=self.clock, wall=self.clock,
                               monitors=bus)
            self.nodes[name] = node
            self.systems[name] = system
            self.transports[name] = transport
            system.on_deliver = \
                lambda actor, msg, _n=name: self._on_delivered(_n, actor,
                                                               msg)
            self._wrap_dead_letter(node)

    # ------------------------------------------------------------------
    # world construction helpers (used by scenarios)
    # ------------------------------------------------------------------
    def connect_all(self) -> None:
        for a in self.nodes.values():
            for b in self.nodes:
                if b != a.name:
                    a.connect(b)

    def spawn(self, node: str, actor_class: type, *args: Any,
              name: str = "", **kwargs: Any):
        return self.nodes[node].spawn(actor_class, *args, name=name,
                                      **kwargs)

    def act(self, label: str, fn: Callable[["SimWorld"], None],
            after: Iterable[str] = (),
            when: Optional[Callable[["SimWorld"], bool]] = None) -> str:
        """Register a scripted action; returns its label (for
        ``after=`` chaining)."""
        self._actions.append(_Action(label, fn, tuple(after), when))
        return label

    def send(self, src: str, path: str, *payloads: Any,
             label: Optional[str] = None, after: Iterable[str] = (),
             when: Optional[Callable[["SimWorld"], bool]] = None) -> str:
        """Scripted client send: tracks every payload in the delivery
        ledger, then tells ``path`` from ``src`` when the action
        fires.  Payloads must be hashable (they key the ledger)."""
        label = label or f"send-{src}:{len(self._actions)}"

        def fire(world: "SimWorld") -> None:
            node = world.nodes[src]
            for payload in payloads:
                world.track(payload, path)
                node.ref(path).tell(payload)
        return self.act(label, fire, after=after, when=when)

    def crash(self, node: str, label: Optional[str] = None,
              after: Iterable[str] = (),
              when: Optional[Callable[["SimWorld"], bool]] = None) -> str:
        label = label or f"crash-{node}"
        return self.act(label, lambda w: w.do_crash(node),
                        after=after, when=when)

    def recover(self, node: str, label: Optional[str] = None,
                after: Iterable[str] = (),
                when: Optional[Callable[["SimWorld"], bool]] = None
                ) -> str:
        label = label or f"recover-{node}"
        return self.act(label, lambda w: w.do_recover(node),
                        after=after, when=when)

    def track(self, payload: Any, path: str) -> None:
        self.ledger[payload] = _Tracked(payload, path)

    # ------------------------------------------------------------------
    # crash/recover primitives
    # ------------------------------------------------------------------
    def do_crash(self, name: str) -> None:
        self.crashed.add(name)
        self.hub.cut(name)
        self.hub.purge(name)

    def do_recover(self, name: str) -> None:
        self.crashed.discard(name)
        self.hub.restore(name)

    # ------------------------------------------------------------------
    # the decision surface
    # ------------------------------------------------------------------
    def options(self) -> list[str]:
        """Currently-enabled decisions, in canonical order."""
        opts = [f"deliver {s}>{d}" for s, d, _ in self.hub.in_flight()
                if s not in self.crashed and d not in self.crashed]
        for name in sorted(self.nodes):
            if name in self.crashed:
                continue
            for actor in self.systems[name].pending():
                opts.append(f"actor {name}/{actor}")
        done = {a.label for a in self._actions if a.done}
        for action in self._actions:
            if action.done or not set(action.after) <= done:
                continue
            if action.when is not None and not action.when(self):
                continue
            opts.append(f"do {action.label}")
        if self.clock.t < self.horizon - 1e-9:
            opts.append("advance")
        return opts

    def apply(self, option: str) -> None:
        self.decisions += 1
        self.log.append(option)
        if option == "advance":
            self._advance()
        elif option.startswith("deliver "):
            src, dst = option[8:].split(">", 1)
            self.hub.deliver_next(src, dst)
        elif option.startswith("actor "):
            node, actor = option[6:].split("/", 1)
            self.systems[node].process_one(actor)
        elif option.startswith("do "):
            label = option[3:]
            for action in self._actions:
                if action.label == label and not action.done:
                    action.done = True
                    action.fn(self)
                    return
            raise ValueError(f"unknown or spent action {label!r}")
        else:
            raise ValueError(f"unknown decision {option!r}")

    def _advance(self) -> None:
        """Jump to the earliest future protocol deadline (or the
        horizon) and tick every live node there, in name order."""
        now = self.clock.t
        nxt = self.horizon
        for name in sorted(self.nodes):
            if name in self.crashed:
                continue
            node = self.nodes[name]
            cfg = node.config
            cands: list[float] = []
            for peer in node._peers.values():
                if peer.state == PeerState.DOWN:
                    cands.append(peer.last_heard + cfg.down_after
                                 + cfg.evict_after)
                    continue
                cands.append(peer.last_beat + cfg.heartbeat_interval)
                cands.append(peer.last_heard + cfg.down_after)
                if peer.state == PeerState.ALIVE:
                    cands.append(peer.last_heard + cfg.suspect_after)
            for outbox in node._outboxes.values():
                cands.append(outbox._min_due)
            for cand in cands:
                if now + 1e-9 < cand < nxt:
                    nxt = cand
        self.clock.advance_to(nxt)
        for name in sorted(self.nodes):
            if name not in self.crashed:
                self.nodes[name].tick(nxt)

    # ------------------------------------------------------------------
    # ledger + invariants
    # ------------------------------------------------------------------
    def _on_delivered(self, node: str, actor: str, message: Any) -> None:
        try:
            entry = self.ledger.get(message)
        except TypeError:
            return
        if entry is not None and entry.path == f"{node}/{actor}":
            entry.delivered += 1

    def _wrap_dead_letter(self, node: ClusterNode) -> None:
        orig = node._dead_letter

        def wrapped(target: str, message: Any, why: str,
                    ctx: Any = None) -> None:
            self._on_dead(node, target, message, why)
            orig(target, message, why, ctx=ctx)
        node._dead_letter = wrapped

    def _on_dead(self, node: ClusterNode, target: str, message: Any,
                 why: str) -> None:
        try:
            entry = self.ledger.get(message)
        except TypeError:
            entry = None
        if entry is not None and entry.path == target:
            entry.dead += 1
            entry.whys.append(why)
        if "down" in why and "/" in target:
            # a drop blamed on a down peer while the failure detector
            # says the peer is ALIVE: the sender is refusing traffic it
            # could deliver — a stale broken credit gate survived the
            # peer's DOWN→ALIVE recovery
            dest = split_path(target)[0]
            peer = node._peers.get(dest)
            if dest not in self.crashed and peer is not None \
                    and peer.state == PeerState.ALIVE:
                self._hazard(
                    "sim-recovery-loss",
                    f"{node.name} dead-lettered {message!r} to {target} "
                    f"({why}) while its detector says {dest} is ALIVE",
                    subject=target)

    def _hazard(self, kind: str, message: str, subject: str = "",
                severity: str = "error") -> None:
        key = (kind, subject)
        if key in self._hazard_keys:
            return
        self._hazard_keys.add(key)
        hz = Hazard(kind=kind, severity=severity, message=message,
                    step=self.decisions, subject=subject)
        self.hazards.append(hz)
        if self.bus is not None:
            self.bus.publish(hz)

    def quiescent(self) -> bool:
        """No frame in flight, nothing staged or unacknowledged, every
        mailbox empty — the state end-of-run audits are valid in."""
        if any(q for q in self.hub.queues.values()):
            return False
        for name, node in self.nodes.items():
            if node._staged_total:
                return False
            if any(len(ob) for ob in node._outboxes.values()):
                return False
            if not self.systems[name]._quiet():
                return False
        return True

    def finish(self) -> None:
        """End-of-run audit: fold the delivery ledger and protocol state
        into hazards (published on the bus when one is attached)."""
        if self.finished:
            return
        self.finished = True
        quiet = self.quiescent()
        for payload, entry in sorted(self.ledger.items(),
                                     key=lambda kv: repr(kv[0])):
            subject = f"{entry.path}:{payload!r}"
            if entry.delivered > 1:
                self._hazard(
                    "sim-duplicate-delivery",
                    f"{payload!r} was delivered {entry.delivered}x to "
                    f"{entry.path}",
                    subject=subject)
            if quiet and not self.crashed \
                    and not entry.delivered and not entry.dead:
                self._hazard(
                    "sim-lost-message",
                    f"{payload!r} to {entry.path} was neither delivered "
                    f"nor dead-lettered in a quiescent world",
                    subject=subject)
        if quiet:
            # a quiescent link may not retain out-of-order deliveries:
            # the sender either still retries the gap (not quiescent)
            # or abandoned it and re-advertises SKIP every tick until
            # the receiver compacts — sparse seqs surviving quiescence
            # mean the resync never landed and every later send from
            # this origin will falsely expire
            for name, node in self.nodes.items():
                if name in self.crashed:
                    continue
                for origin, table in sorted(node._dedup.items()):
                    if origin in self.crashed or not table._sparse:
                        continue
                    self._hazard(
                        "sim-resync-stall",
                        f"{name} still holds out-of-order deliveries "
                        f"{sorted(table._sparse)} from {origin} above "
                        f"cumulative {table.high} at quiescence — the "
                        f"SKIP resync never advanced the prefix",
                        subject=f"{name}<{origin}")
        if quiet and not any(sum(n._credit_total.values())
                             for n in self.nodes.values()):
            for name, node in self.nodes.items():
                for path, gate in sorted(node._gates.items()):
                    dest = split_path(path)[0]
                    peer = node._peers.get(dest)
                    if gate.broken is not None or dest in self.crashed \
                            or peer is None \
                            or peer.state != PeerState.ALIVE:
                        continue
                    if gate.available < gate.window:
                        self._hazard(
                            "sim-credit-leak",
                            f"{name}: credit gate {path} settled at "
                            f"{gate.available}/{gate.window} with no "
                            f"credit owed anywhere — credits were lost",
                            subject=f"{name}:{path}")
        for name, node in self.nodes.items():
            if name in self.crashed:
                continue
            cfg = node.config
            overdue = cfg.down_after + cfg.evict_after \
                + 2 * cfg.heartbeat_interval
            for peer in list(node._peers.values()):
                if peer.state == PeerState.DOWN \
                        and self.clock.t - peer.last_heard > overdue:
                    self._hazard(
                        "sim-evict-leak",
                        f"{name} still tracks peer {peer.name}, DOWN and "
                        f"silent for {self.clock.t - peer.last_heard:.1f}s "
                        f"(eviction was due at "
                        f"{cfg.down_after + cfg.evict_after:.1f}s)",
                        subject=f"{name}:{peer.name}")

    # ------------------------------------------------------------------
    # explorer integration
    # ------------------------------------------------------------------
    def fingerprint(self) -> str:
        """Canonical digest of protocol-relevant world state.

        Two schedule prefixes with equal fingerprints lead to identical
        futures, so the explorer's fingerprint reduction prunes one —
        the reduction that makes small-world exploration converge."""
        parts: list[Any] = [
            round(self.clock.t, 9),
            # the driver's remaining budget is part of its local state
            self.decisions,
            tuple(sorted(self.crashed)),
            tuple((link, tuple(zlib.crc32(f) for f in q))
                  for link, q in sorted(self.hub.queues.items()) if q),
            tuple(sorted(self.hub._drops.items())),
            tuple(sorted(self.hub._dups.items())),
            tuple(m[3] for m in self.hub._matchers),
            zlib.crc32(repr(self.hub._rng.getstate()).encode()),
            tuple(sorted(a.label for a in self._actions if not a.done)),
        ]
        for name in sorted(self.nodes):
            node = self.nodes[name]
            system = self.systems[name]
            parts.append((
                name,
                tuple((p, node._peers[p].state,
                       round(node._peers[p].last_heard, 9),
                       round(node._peers[p].last_beat, 9))
                      for p in sorted(node._peers)),
                tuple(sorted(node._seq.items())),
                tuple((dest, tuple((s, pend.attempts,
                                    round(pend.next_due, 9))
                                   for s, pend in
                                   sorted(outbox._pending.items())))
                      for dest, outbox in sorted(node._outboxes.items())),
                tuple((origin, table.high, tuple(sorted(table._sparse)))
                      for origin, table in sorted(node._dedup.items())),
                tuple(sorted(node._skip.items())),
                tuple((path, gate._available, gate._broken)
                      for path, gate in sorted(node._gates.items())),
                tuple((actor, len(q))
                      for actor, q in sorted(node._staged.items()) if q),
                tuple(sorted(node._ack_owed.items())),
                tuple((origin, tuple(sorted(owed.items())))
                      for origin, owed in
                      sorted(node._credit_owed.items())),
                tuple((cell_name, cell.stopped,
                       tuple(zlib.crc32(repr(m).encode())
                             for m, _ in cell.mailbox))
                      for cell_name, cell in system._cells.items()),
                len(system.dead_letters),
            ))
        parts.append(tuple(
            (repr(k), e.delivered, e.dead)
            for k, e in sorted(self.ledger.items(),
                               key=lambda kv: repr(kv[0]))))
        return hashlib.blake2b(repr(parts).encode(),
                               digest_size=12).hexdigest()

    def observation(self) -> tuple:
        """Terminal value the explorer dedups runs by."""
        return (
            tuple(sorted({hz.kind for hz in self.hazards})),
            tuple((repr(k), e.delivered, e.dead)
                  for k, e in sorted(self.ledger.items(),
                                     key=lambda kv: repr(kv[0]))),
            tuple(sorted(self.crashed)),
        )

    def close(self) -> None:
        for node in self.nodes.values():
            node.close()
        for system in self.systems.values():
            system.shutdown()


# ===========================================================================
# program wrapper + entry points
# ===========================================================================

#: a world factory takes the per-run monitor bus (or None) and builds a
#: fresh world — the explorer re-executes the program from scratch on
#: every run, so worlds must never be shared between runs
WorldFactory = Callable[[Optional[MonitorBus]], SimWorld]


def world_program(factory: WorldFactory, budget: int = 400,
                  on_world: Optional[Callable[[SimWorld], None]] = None):
    """Wrap a world factory as a kernel program for ``explore()``.

    One driver task steps the world: forced states (a single enabled
    decision) execute without a scheduling point, everything else is a
    :class:`Choice` whose options are the world's decision labels —
    replay-stable strings, so recorded schedules replay across
    processes.  ``budget`` caps decisions per run (the CI exploration
    budget); :meth:`SimWorld.finish` runs before the driver exits so
    every terminal carries its audit hazards.
    """
    def program(sched: Scheduler):
        bus = getattr(sched, "monitors", None)
        world = factory(bus)
        if on_world is not None:
            on_world(world)
        sched.fingerprint_extra = world.fingerprint

        def driver():
            while world.decisions < budget:
                options = world.options()
                if not options:
                    break
                if len(options) == 1:
                    pick = options[0]
                else:
                    pick = yield Choice(tuple(options))
                world.apply(pick)
            world.finish()
        task = sched.spawn(driver, name="sim-world")
        # the driver keeps no local state beyond the world (exposed via
        # fingerprint_extra) and its decision count (folded into the
        # world fingerprint), so its Choice-input history must not
        # block state reconvergence — this is what arms the
        # fingerprint reduction for single-driver programs
        task.fingerprint_inputs = False
        return world.observation
    return program


def explore_world(factory: WorldFactory, *, budget: int = 400,
                  max_runs: int = 5000, max_steps: int = 200_000,
                  reduce: Any = "fingerprint",
                  detectors: Optional[Callable[[], list]] = None,
                  progress: Optional[Callable] = None,
                  clock: Optional[Callable[[], float]] = None
                  ) -> ExplorationResult:
    """Exhaustive (budgeted) DFS over one simulated world's schedules.

    ``detectors`` supplies extra per-run bus detectors (e.g.
    :class:`~repro.obs.protocol.ProtocolMonitor` rows); the world's own
    audit hazards always ride the bus.  Deterministic: same factory +
    budgets ⇒ identical runs, decisions, terminals and hazard set.
    """
    program = world_program(factory, budget=budget)

    def monitor_factory() -> MonitorBus:
        extra = list(detectors()) if detectors is not None else []
        return MonitorBus(detectors=extra)
    return explore(program, max_runs=max_runs, max_steps=max_steps,
                   reduce=reduce, monitors=monitor_factory,
                   progress=progress, clock=clock)


class SimRun:
    """Result of one scheduled simulation run (seeded or replayed)."""

    def __init__(self, world: SimWorld, outcome: str, seed: int,
                 hazards: list, schedule: list[int]):
        self.world = world
        self.outcome = outcome
        self.seed = seed
        self.hazards = hazards
        #: scheduler decision indices — feed back via ``schedule=`` for
        #: an exact replay
        self.schedule = schedule
        #: human-readable world decisions, in execution order
        self.log = list(world.log)
        self.observation = world.observation()

    @property
    def flagged(self) -> bool:
        return any(hz.severity in ("error", "warning")
                   for hz in self.hazards)

    def digest(self) -> str:
        """Stable digest of (schedule, hazards) — equal digests ⇒ the
        replay reproduced the run exactly."""
        key = (tuple(self.log),
               tuple(sorted(hz.key for hz in self.hazards)))
        return hashlib.blake2b(repr(key).encode(),
                               digest_size=8).hexdigest()


def run_world(factory: WorldFactory, *, seed: int = 0, budget: int = 400,
              max_steps: int = 200_000,
              detectors: Optional[Callable[[], list]] = None,
              schedule: Optional[list[int]] = None) -> SimRun:
    """One simulation run under a seeded random schedule.

    With ``schedule`` (recorded decision indices) the run replays that
    exact path first and only falls back to the seeded policy past its
    end — the ``repro sim replay`` entry point.  Same seed ⇒ identical
    decision log, hazard set and digest, every time.
    """
    extra = list(detectors()) if detectors is not None else []
    bus = MonitorBus(detectors=extra)
    worlds: list[SimWorld] = []
    program = world_program(factory, budget=budget,
                            on_world=worlds.append)
    if schedule is None:
        policy: Any = RandomPolicy(seed)
    else:
        policy = FixedPolicy(list(schedule), tail=RandomPolicy(seed))
    sched = Scheduler(policy, raise_on_deadlock=False,
                      raise_on_failure=False, max_steps=max_steps,
                      record_enabled=True, monitors=bus)
    observe = program(sched)
    trace = sched.run()
    if observe is not None:
        observe()
    return SimRun(worlds[0], trace.outcome, seed, list(bus.hazards),
                  trace.schedule())
