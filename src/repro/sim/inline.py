"""A single-threaded, externally-pumped actor system for simulation.

The threaded :class:`~repro.actors.system.ActorSystem` dispatches
mailboxes on a work-stealing executor — real parallelism, real
nondeterminism.  Under deterministic simulation that nondeterminism
must be *scheduled*, not raced, so :class:`InlineActorSystem` keeps
the same public surface the cluster node uses (``spawn``, ``stop``,
``set_directive``, ``dead_letters``/``_dl_lock``, ``_dead_letter``,
``_quiet``, ``shutdown``, ``failure_listener``) but never starts a
thread: ``tell`` only enqueues, and one message is processed when —
and only when — the simulation driver calls :meth:`process_one`.
Which actor runs next is therefore a schedulable decision like any
frame delivery.

Supervision semantics mirror the threaded system exactly: RESUME drops
the message, RESTART runs ``pre_restart`` (swallowing its errors),
STOP stops the cell and dead-letters the rest of its mailbox, and the
``failure_listener`` (the cluster node's watch-signal hook) is invoked
with ``(name, error, directive)`` either way.

Actor ids come from a per-instance counter, not the threaded system's
process-global one, so actor names and ref reprs are identical on
every replay of a schedule — a requirement for stable fingerprints.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Any, Callable, Optional

from ..actors.actor import Actor, ActorContext
from ..actors.ref import ActorRef
from ..actors.system import DeadLetter, SupervisionDirective

__all__ = ["InlineActorSystem"]


class _InlineStop:
    """Poison pill appended by ``stop`` (processed in mailbox order)."""


class _InlineCell:
    """One actor's state: mailbox deque + lifecycle flags, no threads."""

    __slots__ = ("system", "actor", "ref", "mailbox", "started",
                 "_stopped", "directive")

    def __init__(self, system: "InlineActorSystem", actor: Actor,
                 ref_name: str, actor_id: int,
                 directive: Optional[SupervisionDirective] = None):
        self.system = system
        self.actor = actor
        self.ref = ActorRef(actor_id, ref_name, self)
        self.mailbox: deque = deque()
        self.started = False
        self._stopped = False
        self.directive = directive

    # -- ActorCell protocol (what ActorRef.tell/is_stopped/pending use) --
    def enqueue(self, message: Any, sender: Optional[ActorRef],
                ctx: Any = None) -> None:
        if self._stopped:
            self.system._dead_letter(self.ref.name, message, sender,
                                     ctx=ctx)
            return
        self.mailbox.append((message, sender))

    @property
    def stopped(self) -> bool:
        return self._stopped

    def depth(self) -> int:
        return len(self.mailbox)


class InlineActorSystem:
    """Drop-in ``ActorSystem`` for :class:`~repro.sim.world.SimWorld`.

    ``on_deliver(actor_name, message)`` — optional hook called after
    every processed user message (the world's delivery ledger);
    ``on_dead_letter(target, message)`` — called on every dead letter.
    """

    def __init__(self, name: str = "sim-system",
                 directive: SupervisionDirective =
                 SupervisionDirective.RESTART):
        self.name = name
        self.directive = directive
        self._ids = 0                       # per-instance: replay-stable
        self._cells: dict[str, _InlineCell] = {}   # by ref name, ordered
        self.dead_letters: list[DeadLetter] = []
        # real (uncontended) lock: the cluster node snapshots
        # dead_letters under system._dl_lock
        self._dl_lock = threading.Lock()
        self._failures: list[tuple[str, BaseException]] = []
        self.failure_listener: Optional[Any] = None
        self.profiler = None
        self.tracer = None
        self.on_deliver: Optional[Callable[[str, Any], None]] = None
        self.on_dead_letter: Optional[Callable[[str, Any], None]] = None

    # ------------------------------------------------------------------
    # the ActorSystem surface the cluster node uses
    # ------------------------------------------------------------------
    def spawn(self, actor_class: type, *args: Any, name: str = "",
              directive: Optional[SupervisionDirective] = None,
              **kwargs: Any) -> ActorRef:
        if not issubclass(actor_class, Actor):
            raise TypeError(f"{actor_class.__name__} is not an Actor "
                            f"subclass")
        actor = actor_class(*args, **kwargs)
        self._ids += 1
        ref_name = name or f"{actor_class.__name__.lower()}-{self._ids}"
        if ref_name in self._cells and not self._cells[ref_name].stopped:
            raise ValueError(f"actor {ref_name!r} already exists")
        cell = _InlineCell(self, actor, ref_name, self._ids,
                           directive=directive)
        actor.context = ActorContext(self, cell.ref)
        self._cells[ref_name] = cell
        return cell.ref

    def stop(self, ref: ActorRef) -> None:
        """Graceful stop: earlier mailbox entries process first."""
        ref.tell(_InlineStop())

    def tell(self, ref: ActorRef, message: Any) -> None:
        ref.tell(message, sender=None)

    def set_directive(self, ref: ActorRef,
                      directive: Optional[SupervisionDirective]) -> None:
        cell = self._cells.get(ref.name)
        if cell is not None:
            cell.directive = directive

    def failures(self) -> list[tuple[str, BaseException]]:
        return list(self._failures)

    def _dead_letter(self, target: str, message: Any,
                     sender: Optional[ActorRef], ctx: Any = None) -> None:
        with self._dl_lock:
            self.dead_letters.append(DeadLetter(target, message, sender,
                                                ctx))
        if self.on_dead_letter is not None:
            self.on_dead_letter(target, message)

    def _quiet(self) -> bool:
        return all(not c.mailbox for c in self._cells.values())

    def drain(self, timeout: float = 10.0) -> bool:
        """Pump every pending message to quiescence (no waiting)."""
        guard = 1_000_000
        while not self._quiet() and guard:
            for name in self.pending():
                self.process_one(name)
            guard -= 1
        return self._quiet()

    def shutdown(self) -> None:
        for cell in list(self._cells.values()):
            if not cell.stopped:
                self._do_stop(cell)

    @property
    def actor_count(self) -> int:
        return sum(1 for c in self._cells.values() if not c.stopped)

    # ------------------------------------------------------------------
    # the simulation pump
    # ------------------------------------------------------------------
    def pending(self) -> list[str]:
        """Actor names with queued mail, in spawn order — the world
        turns each into one schedulable decision."""
        return [n for n, c in self._cells.items()
                if c.mailbox and not c.stopped]

    def process_one(self, name: str) -> bool:
        """Deliver exactly one mailbox message to ``name``.

        Returns False when there was nothing to process.  Everything
        the handler does (tells, spawns, stops) happens synchronously
        on the caller — new mail just queues for later decisions.
        """
        cell = self._cells.get(name)
        if cell is None or cell.stopped or not cell.mailbox:
            return False
        actor = cell.actor
        if not cell.started:
            cell.started = True
            try:
                actor.pre_start()
            except BaseException as exc:  # noqa: BLE001
                self._on_failure(cell, exc, "<pre_start>")
            if cell.stopped:          # STOP directive fired in pre_start
                return True
        message, sender = cell.mailbox.popleft()
        if isinstance(message, _InlineStop):
            self._do_stop(cell)
            return True
        context = actor.context
        context.sender = sender
        try:
            actor.current_behaviour()(message, sender)
        except BaseException as exc:  # noqa: BLE001
            self._on_failure(cell, exc, message)
        finally:
            context.sender = None
        if self.on_deliver is not None:
            self.on_deliver(name, message)
        return True

    # ------------------------------------------------------------------
    def _do_stop(self, cell: _InlineCell) -> None:
        if cell.stopped:
            return
        cell._stopped = True
        while cell.mailbox:
            late, late_sender = cell.mailbox.popleft()
            if not isinstance(late, _InlineStop):
                self._dead_letter(cell.ref.name, late, late_sender)
        try:
            cell.actor.post_stop()
        except BaseException:  # noqa: BLE001
            pass

    def _on_failure(self, cell: _InlineCell, error: BaseException,
                    message: Any) -> None:
        self._failures.append((cell.ref.name, error))
        directive = cell.directive if cell.directive is not None \
            else self.directive
        if directive is SupervisionDirective.RESTART:
            try:
                cell.actor.pre_restart(error, message)
            except BaseException:  # noqa: BLE001
                pass
        elif directive is SupervisionDirective.STOP:
            self._do_stop(cell)
        listener = self.failure_listener
        if listener is not None:
            try:
                listener(cell.ref.name, error, directive)
            except BaseException:  # noqa: BLE001
                pass
