"""repro.sim — deterministic simulation testing of the cluster protocols.

FoundationDB-style DST for :mod:`repro.cluster`: several
:class:`~repro.cluster.node.ClusterNode`\\ s run in one process on a
shared virtual clock over a deferred-delivery loopback hub, with every
source of nondeterminism — frame delivery order, retry backoff firing,
heartbeat ticks, crash/recover timing, drop/dup faults — turned into a
schedulable decision.  The whole multi-node world is exposed as a
kernel-style program, so the existing :func:`repro.verify.explore`
(DFS + state-fingerprint reduction) enumerates cluster schedules
exactly as it enumerates thread interleavings, and the hazard /
protocol-conformance monitors ride along on every run.

Entry points:

* :class:`SimWorld` — the steppable world (nodes, hub, clock, script);
* :func:`world_program` — wrap a world factory as an explorable program;
* :func:`explore_world` / :func:`run_world` — exhaustive DFS or one
  seeded random schedule;
* :mod:`repro.sim.scenarios` — the canned small worlds, including the
  PR-5 regression fixtures.
"""

from .clock import SimClock
from .inline import InlineActorSystem
from .world import (SimHub, SimWorld, explore_world, run_world,
                    world_program)

__all__ = [
    "SimClock", "InlineActorSystem", "SimHub", "SimWorld",
    "world_program", "explore_world", "run_world",
]
