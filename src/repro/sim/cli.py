"""``repro sim`` — drive deterministic cluster simulations from the CLI.

Subcommands:

* ``repro sim list`` — the scenario registry (and what each one pins);
* ``repro sim run`` — one seeded random schedule; exits non-zero and
  prints the replaying command when a monitor fires;
* ``repro sim explore`` — budgeted DFS over a scenario's schedules;
  writes the witness schedule of a hazard-bearing terminal to
  ``--witness`` so CI failures ship their repro;
* ``repro sim replay`` — re-run a seed (optionally pinned to a witness
  schedule file) and print the run digest; two replays of the same
  seed print the same digest, byte for byte.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Any

from .scenarios import SCENARIOS, get
from .world import explore_world, run_world

__all__ = ["add_sim_commands"]


def _scenario_flags(sp: argparse.ArgumentParser) -> None:
    sp.add_argument("--scenario", required=True,
                    choices=sorted(SCENARIOS),
                    help="world recipe from the scenario registry")
    sp.add_argument("--budget", type=int, default=None,
                    help="max decisions per run "
                         "(default: the scenario's own budget)")


def _cmd_sim_list(args: argparse.Namespace) -> int:
    if args.json:
        rows = [{"name": s.name, "title": s.title, "budget": s.budget,
                 "pins": list(s.pins)}
                for s in SCENARIOS.values()]
        print(json.dumps(rows, indent=2))
        return 0
    width = max(len(n) for n in SCENARIOS)
    for name in sorted(SCENARIOS):
        s = SCENARIOS[name]
        pins = f"  [pins {', '.join(s.pins)}]" if s.pins else ""
        print(f"{name:<{width}}  {s.title}{pins}")
    return 0


def _print_hazards(hazards: list) -> None:
    for hz in hazards:
        print(f"  {hz.describe()}", file=sys.stderr)


def _cmd_sim_run(args: argparse.Namespace) -> int:
    sc = get(args.scenario)
    budget = args.budget or sc.budget
    run = run_world(sc.factory(args.seed), seed=args.seed, budget=budget)
    payload: dict[str, Any] = {
        "scenario": sc.name, "seed": args.seed, "outcome": run.outcome,
        "decisions": run.world.decisions, "digest": run.digest(),
        "hazards": [hz.describe() for hz in run.hazards],
        "quiescent": run.world.quiescent(),
    }
    if args.json:
        print(json.dumps(payload, indent=2))
    else:
        print(f"{sc.name}: seed={args.seed} outcome={run.outcome} "
              f"decisions={run.world.decisions} digest={run.digest()}")
    if run.hazards:
        _print_hazards(run.hazards)
        print(f"replay: repro sim replay --scenario {sc.name} "
              f"--seed {args.seed}", file=sys.stderr)
        return 1
    return 0


def _cmd_sim_explore(args: argparse.Namespace) -> int:
    sc = get(args.scenario)
    budget = args.budget or sc.budget
    res = explore_world(sc.factory(args.seed), budget=budget,
                        max_runs=args.runs)
    payload: dict[str, Any] = {
        "scenario": sc.name, "seed": args.seed, "runs": res.runs,
        "complete": res.complete, "decisions": res.decisions,
        "pruned_runs": res.pruned_runs,
        "terminals": len(res.terminals),
        "hazards": [hz.describe() for hz in res.hazards],
        "hazard_counts": res.hazard_counts(),
    }
    if args.json:
        print(json.dumps(payload, indent=2))
    else:
        print(f"{sc.name}: {res.summary()}")
        print(f"  decisions={res.decisions} pruned={res.pruned_runs}")
    if not res.hazards:
        return 0
    _print_hazards(res.hazards)
    # ship the repro: the recorded schedule of the first terminal whose
    # observation carries a hazard kind replays the exact decision path
    if args.witness:
        for key, trace in res.witnesses.items():
            obs = key[1]
            if isinstance(obs, tuple) and obs and obs[0]:
                with open(args.witness, "w") as fh:
                    json.dump({"scenario": sc.name, "seed": args.seed,
                               "schedule": trace.schedule()}, fh)
                print(f"witness schedule -> {args.witness}",
                      file=sys.stderr)
                break
    return 1


def _cmd_sim_replay(args: argparse.Namespace) -> int:
    schedule = None
    scenario, seed = args.scenario, args.seed
    if args.witness:
        try:
            with open(args.witness) as fh:
                saved = json.load(fh)
        except OSError as exc:
            print(f"cannot read witness file: {exc}", file=sys.stderr)
            return 2
        schedule = saved.get("schedule")
        scenario = saved.get("scenario", scenario)
        seed = saved.get("seed", seed)
    if scenario is None:
        print("replay needs --scenario or a --witness file",
              file=sys.stderr)
        return 2
    sc = get(scenario)
    budget = args.budget or sc.budget
    run = run_world(sc.factory(seed), seed=seed or 0, budget=budget,
                    schedule=schedule)
    print(f"{sc.name}: seed={seed} outcome={run.outcome} "
          f"digest={run.digest()}")
    for line in run.log:
        print(f"  {line}")
    if run.hazards:
        _print_hazards(run.hazards)
        return 1
    return 0


def add_sim_commands(sub: Any) -> None:
    """Install the ``sim`` subcommand tree on the main CLI."""
    p = sub.add_parser(
        "sim", help="deterministic cluster simulation: run, explore and "
                    "replay multi-node schedules on a virtual clock")
    ssub = p.add_subparsers(dest="sim_command", required=True)

    p_list = ssub.add_parser("list", help="available scenarios")
    p_list.add_argument("--json", action="store_true")
    p_list.set_defaults(fn=_cmd_sim_list)

    p_run = ssub.add_parser(
        "run", help="one seeded random schedule of a scenario")
    _scenario_flags(p_run)
    p_run.add_argument("--seed", type=int, default=0,
                       help="schedule seed (same seed ⇒ same run)")
    p_run.add_argument("--json", action="store_true")
    p_run.set_defaults(fn=_cmd_sim_run)

    p_exp = ssub.add_parser(
        "explore", help="enumerate a scenario's schedules (DFS + "
                        "fingerprint pruning)")
    _scenario_flags(p_exp)
    p_exp.add_argument("--runs", type=int, default=2000,
                       help="exploration run budget")
    p_exp.add_argument("--seed", type=int, default=None,
                       help="fault-injection seed for the world's RNG")
    p_exp.add_argument("--witness", default=None, metavar="FILE",
                       help="on hazards, write a replayable witness "
                            "schedule here")
    p_exp.add_argument("--json", action="store_true")
    p_exp.set_defaults(fn=_cmd_sim_explore)

    p_rep = ssub.add_parser(
        "replay", help="re-run a seed or a recorded witness schedule")
    p_rep.add_argument("--scenario", choices=sorted(SCENARIOS),
                       default=None)
    p_rep.add_argument("--seed", type=int, default=None)
    p_rep.add_argument("--budget", type=int, default=None)
    p_rep.add_argument("--witness", default=None, metavar="FILE",
                       help="witness schedule file from `sim explore`")
    p_rep.set_defaults(fn=_cmd_sim_replay)
