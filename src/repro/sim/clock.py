"""The simulated clock — one virtual time source for a whole world.

A :class:`SimClock` is a plain callable returning virtual seconds, so
it plugs straight into every clock seam the runtime already has:
``ClusterNode(clock=..., wall=...)``, ``CreditGate(clock=...)`` and
``repro.obs.profile.wall_clock``.  Time only moves when the simulation
driver says so (:meth:`advance_to`), which is what makes retry
backoff, heartbeat cadence and failure-detector thresholds schedulable
decisions instead of wall-time races.
"""

from __future__ import annotations

__all__ = ["SimClock"]


class SimClock:
    """Monotonic virtual clock; starts at ``start`` virtual seconds."""

    __slots__ = ("t",)

    def __init__(self, start: float = 0.0):
        self.t = float(start)

    def __call__(self) -> float:
        return self.t

    def now(self) -> float:
        return self.t

    def advance_to(self, t: float) -> None:
        """Jump forward to virtual time ``t`` (never backward)."""
        if t > self.t:
            self.t = float(t)

    def advance(self, dt: float) -> None:
        if dt > 0:
            self.t += float(dt)

    def __repr__(self) -> str:
        return f"SimClock(t={self.t:.6f})"
