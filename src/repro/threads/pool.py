"""Fixed thread pool + futures — the course's "thread pool arithmetic
program" (the week-1 lab students run while watching CPU utilization).

A :class:`ThreadPool` owns N worker JThreads draining one BlockingQueue
of work items; :meth:`submit` returns a :class:`PoolFuture`.  Shutdown
is cooperative via queue close — no poison pills in user code.
"""

from __future__ import annotations

import threading
from typing import Any, Callable, Iterable, Optional, TypeVar

from .collections import BlockingQueue, QueueClosed
from .jthread import JThread
from .sync import Monitor

__all__ = ["PoolFuture", "ThreadPool", "parallel_map"]

T = TypeVar("T")


class PoolFuture:
    """Result holder for a submitted task (a minimal j.u.c. Future)."""

    def __init__(self) -> None:
        self._monitor = Monitor("future")
        self._done = False
        self._result: Any = None
        self._error: Optional[BaseException] = None
        self._cancelled = False

    def _complete(self, result: Any = None,
                  error: Optional[BaseException] = None) -> None:
        with self._monitor:
            self._result = result
            self._error = error
            self._done = True
            self._monitor.notify_all()

    def cancel(self) -> bool:
        """Best-effort: succeeds only if the task has not completed."""
        with self._monitor:
            if self._done:
                return False
            self._cancelled = True
            self._done = True
            self._monitor.notify_all()
            return True

    def done(self) -> bool:
        with self._monitor:
            return self._done

    def result(self, timeout: Optional[float] = None) -> Any:
        with self._monitor:
            if not self._monitor.wait_until(lambda: self._done, timeout):
                raise TimeoutError("future result timed out")
            if self._cancelled:
                raise RuntimeError("task was cancelled")
            if self._error is not None:
                raise self._error
            return self._result


class ThreadPool:
    """Fixed-size worker pool; usable as a context manager.

    ::

        with ThreadPool(4) as pool:
            futures = [pool.submit(fib, n) for n in range(20)]
            values = [f.result() for f in futures]
    """

    def __init__(self, workers: int = 4, queue_capacity: int = 0,
                 name: str = "pool", profiler: Optional[Any] = None,
                 tracer: Optional[Any] = None):
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.name = name
        self.profiler = profiler
        #: optional :class:`repro.obs.causal.CausalTracer` — submit
        #: captures the caller's request context into the work item and
        #: the worker re-installs it around the task (a pool-exec span)
        self.tracer = tracer
        self._queue: BlockingQueue = BlockingQueue(queue_capacity,
                                                   f"{name}.queue",
                                                   profiler=profiler)
        self._workers = [
            JThread(target=self._worker_loop, name=f"{name}-w{i}",
                    daemon=True, profiler=profiler)
            for i in range(workers)]
        for w in self._workers:
            w.start()
        self._shut = False
        self._submitted = 0
        self._completed = 0
        self._stats_lock = threading.Lock()

    # ------------------------------------------------------------------
    def _worker_loop(self) -> None:
        while True:
            try:
                fn, args, future, ctx = self._queue.take()
            except QueueClosed:
                return
            if future.done():          # cancelled while queued
                continue
            prof = self.profiler
            trc = self.tracer
            t0 = prof.now() if prof is not None else 0.0
            if trc is not None and ctx is not None \
                    and trc.admit(ctx.request_id):
                w0 = trc.now()
                sid = trc.next_id()
                trc.install(trc.context(ctx.request_id, sid))
                try:
                    future._complete(result=fn(*args))
                except BaseException as exc:  # noqa: BLE001
                    future._complete(error=exc)
                finally:
                    trc.record(sid, ctx.span_id, ctx.request_id,
                               "pool-exec", self.name, w0, trc.now())
                    trc.uninstall()
            else:
                try:
                    future._complete(result=fn(*args))
                except BaseException as exc:  # noqa: BLE001 - to future
                    future._complete(error=exc)
            if prof is not None:
                prof.inc("pool.tasks")
                prof.observe_us("pool.task_us", prof.now() - t0)
            with self._stats_lock:
                self._completed += 1

    # ------------------------------------------------------------------
    def submit(self, fn: Callable[..., T], *args: Any) -> PoolFuture:
        if self._shut:
            raise RuntimeError(f"{self.name} is shut down")
        future = PoolFuture()
        trc = self.tracer
        ctx = trc.current() if trc is not None else None
        self._queue.put((fn, args, future, ctx))
        with self._stats_lock:
            self._submitted += 1
        return future

    def map(self, fn: Callable[[Any], T], items: Iterable[Any]) -> list[T]:
        futures = [self.submit(fn, item) for item in items]
        return [f.result() for f in futures]

    def shutdown(self, wait: bool = True) -> None:
        """Stop accepting work; optionally join workers after draining."""
        self._shut = True
        self._queue.close()
        if wait:
            for w in self._workers:
                w.join()

    @property
    def stats(self) -> dict[str, int]:
        with self._stats_lock:
            return {"submitted": self._submitted,
                    "completed": self._completed,
                    "queued": len(self._queue),
                    "workers": len(self._workers)}

    def __enter__(self) -> "ThreadPool":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.shutdown(wait=True)


def parallel_map(fn: Callable[[Any], T], items: Iterable[Any],
                 workers: int = 4) -> list[T]:
    """One-shot pooled map — the arithmetic-lab entry point."""
    with ThreadPool(workers) as pool:
        return pool.map(fn, items)
