"""repro.threads — the Java thread model, in Python.

Mirrors what the course teaches with Java: ``Thread`` subclassing
(:class:`JThread`), ``synchronized`` + ``wait``/``notify``
(:class:`Monitor`, :func:`synchronized`), atomics, and the
java.util.concurrent structures the labs rely on (blocking queue,
concurrent map, latch, barrier, thread pool).

All of this runs on real OS threads.  CPython's GIL serializes
bytecode, so these primitives demonstrate *blocking structure and
correctness*, not parallel speedup — the benchmark notes flag every
throughput comparison accordingly.
"""

from .atomic import AtomicBoolean, AtomicInteger, AtomicReference
from .collections import (BlockingQueue, BrokenBarrierError, ConcurrentMap,
                          CountDownLatch, CyclicBarrier, QueueClosed)
from .jthread import JThread, join_all, spawn_all
from .pool import PoolFuture, ThreadPool, parallel_map
from .sync import Monitor, MonitorStateError, synchronized

__all__ = [
    "JThread", "spawn_all", "join_all",
    "Monitor", "synchronized", "MonitorStateError",
    "AtomicInteger", "AtomicReference", "AtomicBoolean",
    "BlockingQueue", "QueueClosed", "ConcurrentMap", "CountDownLatch",
    "CyclicBarrier", "BrokenBarrierError",
    "ThreadPool", "PoolFuture", "parallel_map",
]
