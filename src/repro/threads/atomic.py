"""Atomic value holders — java.util.concurrent.atomic for the course.

CPython's GIL makes single bytecode operations atomic, but read-modify-
write sequences (``x += 1``) are not; these classes make the atomicity
explicit and lock-protected so the semantics survive free-threaded
builds and document intent the way AtomicInteger does in Java.
"""

from __future__ import annotations

import threading
from typing import Any, Callable, Generic, Optional, TypeVar

__all__ = ["AtomicInteger", "AtomicReference", "AtomicBoolean"]

T = TypeVar("T")


class AtomicInteger:
    """Lock-protected integer with Java's method set."""

    def __init__(self, value: int = 0):
        self._value = value
        self._lock = threading.Lock()

    def get(self) -> int:
        with self._lock:
            return self._value

    def set(self, value: int) -> None:
        with self._lock:
            self._value = value

    def increment_and_get(self, delta: int = 1) -> int:
        with self._lock:
            self._value += delta
            return self._value

    def get_and_increment(self, delta: int = 1) -> int:
        with self._lock:
            old = self._value
            self._value += delta
            return old

    def decrement_and_get(self) -> int:
        return self.increment_and_get(-1)

    def add_and_get(self, delta: int) -> int:
        return self.increment_and_get(delta)

    def compare_and_set(self, expect: int, update: int) -> bool:
        with self._lock:
            if self._value == expect:
                self._value = update
                return True
            return False

    def get_and_update(self, fn: Callable[[int], int]) -> int:
        with self._lock:
            old = self._value
            self._value = fn(old)
            return old

    def __repr__(self) -> str:
        return f"AtomicInteger({self.get()})"


class AtomicReference(Generic[T]):
    """Lock-protected reference cell with compare-and-set."""

    def __init__(self, value: Optional[T] = None):
        self._value = value
        self._lock = threading.Lock()

    def get(self) -> Optional[T]:
        with self._lock:
            return self._value

    def set(self, value: Optional[T]) -> None:
        with self._lock:
            self._value = value

    def get_and_set(self, value: Optional[T]) -> Optional[T]:
        with self._lock:
            old = self._value
            self._value = value
            return old

    def compare_and_set(self, expect: Any, update: Optional[T]) -> bool:
        """Identity comparison, like Java's reference CAS."""
        with self._lock:
            if self._value is expect:
                self._value = update
                return True
            return False

    def update_and_get(self, fn: Callable[[Optional[T]], Optional[T]]
                       ) -> Optional[T]:
        with self._lock:
            self._value = fn(self._value)
            return self._value

    def __repr__(self) -> str:
        return f"AtomicReference({self.get()!r})"


class AtomicBoolean:
    """Lock-protected flag; ``test_and_set`` gives one-shot latching."""

    def __init__(self, value: bool = False):
        self._value = bool(value)
        self._lock = threading.Lock()

    def get(self) -> bool:
        with self._lock:
            return self._value

    def set(self, value: bool) -> None:
        with self._lock:
            self._value = bool(value)

    def test_and_set(self) -> bool:
        """Set True; return the *previous* value."""
        with self._lock:
            old = self._value
            self._value = True
            return old

    def compare_and_set(self, expect: bool, update: bool) -> bool:
        with self._lock:
            if self._value == expect:
                self._value = update
                return True
            return False

    def __repr__(self) -> str:
        return f"AtomicBoolean({self.get()})"
