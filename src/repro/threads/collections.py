"""Concurrent data structures — the java.util.concurrent subset the
course relies on, built on :class:`repro.threads.sync.Monitor` so their
internals demonstrate the same monitor discipline the labs teach.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Any, Callable, Generic, Iterator, Optional, TypeVar

from .sync import Monitor

__all__ = ["BlockingQueue", "QueueClosed", "ConcurrentMap",
           "CountDownLatch", "CyclicBarrier", "BrokenBarrierError"]

T = TypeVar("T")
K = TypeVar("K")
V = TypeVar("V")


class QueueClosed(RuntimeError):
    """put on a closed queue, or take on a closed drained queue."""


class BlockingQueue(Generic[T]):
    """Bounded FIFO with blocking put/take — the bounded buffer.

    ``close()`` lets producers signal end-of-stream: blocked takers wake
    and raise :class:`QueueClosed` once drained, the usual shutdown
    idiom the course's bounded-buffer lab needs but Java hides inside
    poison pills.
    """

    def __init__(self, capacity: int = 0, name: str = "",
                 profiler: Optional[Any] = None):
        if capacity < 0:
            raise ValueError("capacity must be >= 0 (0 = unbounded)")
        self.capacity = capacity
        self._items: deque[T] = deque()
        self._monitor = Monitor(name or "blocking-queue", profiler=profiler)
        self._closed = False

    # ------------------------------------------------------------------
    def put(self, item: T, timeout: Optional[float] = None) -> None:
        with self._monitor:
            ok = self._monitor.wait_until(
                lambda: self._closed or self.capacity == 0
                or len(self._items) < self.capacity,
                timeout)
            if not ok:
                raise TimeoutError("put timed out")
            if self._closed:
                raise QueueClosed("put on closed queue")
            self._items.append(item)
            self._monitor.notify_all()

    def take(self, timeout: Optional[float] = None) -> T:
        with self._monitor:
            ok = self._monitor.wait_until(
                lambda: self._items or self._closed, timeout)
            if not ok:
                raise TimeoutError("take timed out")
            if not self._items:
                raise QueueClosed("take on closed drained queue")
            item = self._items.popleft()
            self._monitor.notify_all()
            return item

    def offer(self, item: T) -> bool:
        """Non-blocking put; False if full or closed."""
        with self._monitor:
            if self._closed or (self.capacity and
                                len(self._items) >= self.capacity):
                return False
            self._items.append(item)
            self._monitor.notify_all()
            return True

    def poll(self) -> Optional[T]:
        """Non-blocking take; None if empty."""
        with self._monitor:
            if not self._items:
                return None
            item = self._items.popleft()
            self._monitor.notify_all()
            return item

    def close(self) -> None:
        with self._monitor:
            self._closed = True
            self._monitor.notify_all()

    def __len__(self) -> int:
        with self._monitor:
            return len(self._items)

    @property
    def closed(self) -> bool:
        with self._monitor:
            return self._closed

    def drain(self) -> list[T]:
        """Take everything currently queued without blocking."""
        with self._monitor:
            items, self._items = list(self._items), deque()
            self._monitor.notify_all()
            return items


class ConcurrentMap(Generic[K, V]):
    """Thread-safe dict with the atomic compound operations that make
    check-then-act races impossible to write by accident."""

    def __init__(self) -> None:
        self._data: dict[K, V] = {}
        self._lock = threading.RLock()

    def get(self, key: K, default: Optional[V] = None) -> Optional[V]:
        with self._lock:
            return self._data.get(key, default)

    def put(self, key: K, value: V) -> Optional[V]:
        with self._lock:
            old = self._data.get(key)
            self._data[key] = value
            return old

    def put_if_absent(self, key: K, value: V) -> Optional[V]:
        with self._lock:
            if key in self._data:
                return self._data[key]
            self._data[key] = value
            return None

    def remove(self, key: K) -> Optional[V]:
        with self._lock:
            return self._data.pop(key, None)

    def compute(self, key: K, fn: Callable[[K, Optional[V]], Optional[V]]
                ) -> Optional[V]:
        """Atomically rewrite one entry (None result removes it)."""
        with self._lock:
            new = fn(key, self._data.get(key))
            if new is None:
                self._data.pop(key, None)
            else:
                self._data[key] = new
            return new

    def update_atomically(self, fn: Callable[[dict[K, V]], Any]) -> Any:
        """Run ``fn`` over the raw dict under the lock (multi-key txns)."""
        with self._lock:
            return fn(self._data)

    def snapshot(self) -> dict[K, V]:
        with self._lock:
            return dict(self._data)

    def __len__(self) -> int:
        with self._lock:
            return len(self._data)

    def __contains__(self, key: K) -> bool:
        with self._lock:
            return key in self._data

    def items(self) -> Iterator[tuple[K, V]]:
        return iter(self.snapshot().items())


class CountDownLatch:
    """One-shot gate: ``await_()`` blocks until ``count_down()`` hits 0."""

    def __init__(self, count: int):
        if count < 0:
            raise ValueError("count must be >= 0")
        self._count = count
        self._monitor = Monitor("latch")

    def count_down(self) -> None:
        with self._monitor:
            if self._count > 0:
                self._count -= 1
                if self._count == 0:
                    self._monitor.notify_all()

    def await_(self, timeout: Optional[float] = None) -> bool:
        with self._monitor:
            return self._monitor.wait_until(lambda: self._count == 0, timeout)

    @property
    def count(self) -> int:
        with self._monitor:
            return self._count


class BrokenBarrierError(RuntimeError):
    """A party timed out or failed; the barrier generation is broken."""


class CyclicBarrier:
    """Reusable barrier for ``parties`` threads, with generation reset."""

    def __init__(self, parties: int,
                 action: Optional[Callable[[], None]] = None):
        if parties < 1:
            raise ValueError("parties must be >= 1")
        self.parties = parties
        self._action = action
        self._monitor = Monitor("barrier")
        self._waiting = 0
        self._generation = 0
        self._broken = False

    def await_(self, timeout: Optional[float] = None) -> int:
        """Returns the arrival index (parties-1 .. 0, last arrival = 0)."""
        with self._monitor:
            if self._broken:
                raise BrokenBarrierError("barrier is broken")
            generation = self._generation
            self._waiting += 1
            index = self.parties - self._waiting
            if self._waiting == self.parties:
                self._waiting = 0
                self._generation += 1
                if self._action is not None:
                    self._action()
                self._monitor.notify_all()
                return index
            ok = self._monitor.wait_until(
                lambda: self._generation != generation or self._broken,
                timeout)
            if not ok or self._broken:
                self._broken = True
                self._monitor.notify_all()
                raise BrokenBarrierError("barrier wait timed out")
            return index

    @property
    def broken(self) -> bool:
        with self._monitor:
            return self._broken
