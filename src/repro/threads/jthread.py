"""Java-flavoured thread class over :mod:`threading`.

The course's Java programs subclass ``Thread`` and override ``run()``;
:class:`JThread` keeps that shape so the three-model implementations of
each classic problem read like their course counterparts.  Adds the two
things tests constantly need and ``threading.Thread`` lacks: a result
value from ``join()`` and exception capture.
"""

from __future__ import annotations

import threading
from typing import Any, Callable, Optional

__all__ = ["JThread", "spawn_all", "join_all"]


class JThread:
    """Subclass and override :meth:`run`, or pass a target callable.

    ``join()`` returns the value :meth:`run` returned; if ``run``
    raised, ``join()`` re-raises that exception in the joiner (closer to
    what students expect than Java's silent UncaughtExceptionHandler).
    """

    _counter = 0

    def __init__(self, target: Optional[Callable[..., Any]] = None,
                 args: tuple = (), name: str = "", daemon: bool = False,
                 profiler: Optional[Any] = None,
                 tracer: Optional[Any] = None):
        JThread._counter += 1
        self.name = name or f"jthread-{JThread._counter}"
        self._target = target
        self._args = args
        self._result: Any = None
        self._error: Optional[BaseException] = None
        self._thread = threading.Thread(
            target=self._bootstrap, name=self.name, daemon=daemon)
        self._started = False
        #: optional :class:`repro.obs.Profiler` — start latency + counts
        self.profiler = profiler
        #: optional :class:`repro.obs.causal.CausalTracer` — the
        #: starter's request context is captured at ``start()`` and
        #: re-installed inside the new thread around :meth:`run`
        self.tracer = tracer
        self._ctx: Any = None
        self._start_t = 0.0

    # -- to be overridden ----------------------------------------------------
    def run(self) -> Any:
        if self._target is not None:
            return self._target(*self._args)
        return None

    # -- lifecycle -----------------------------------------------------------
    def _bootstrap(self) -> None:
        prof = self.profiler
        if prof is not None:
            # OS scheduling delay between start() and the first instruction
            prof.inc("thread.started")
            prof.observe_us("thread.start_latency_us",
                            prof.now() - self._start_t)
        trc = self.tracer
        if trc is not None and self._ctx is not None \
                and trc.admit(self._ctx.request_id):
            # carry the starter's causal position across the handoff:
            # run() executes as a thread-exec span chained on it
            t0 = trc.now()
            sid = trc.next_id()
            trc.install(trc.context(self._ctx.request_id, sid))
            try:
                self._result = self.run()
            except BaseException as exc:  # noqa: BLE001
                self._error = exc
            finally:
                trc.record(sid, self._ctx.span_id, self._ctx.request_id,
                           "thread-exec", self.name, t0, trc.now())
                trc.uninstall()
        else:
            try:
                self._result = self.run()
            except BaseException as exc:  # noqa: BLE001 - captured for joiner
                self._error = exc
        if prof is not None:
            prof.inc("thread.finished")

    def start(self) -> "JThread":
        if self._started:
            raise RuntimeError(f"{self.name} already started")
        self._started = True
        if self.profiler is not None:
            self._start_t = self.profiler.now()
        if self.tracer is not None:
            self._ctx = self.tracer.current()
        self._thread.start()
        return self

    def join(self, timeout: Optional[float] = None) -> Any:
        self._thread.join(timeout)
        if self._thread.is_alive():
            raise TimeoutError(f"join on {self.name} timed out")
        if self._error is not None:
            raise self._error
        return self._result

    def is_alive(self) -> bool:
        return self._thread.is_alive()

    @property
    def error(self) -> Optional[BaseException]:
        return self._error

    def __repr__(self) -> str:
        state = ("unstarted" if not self._started
                 else "alive" if self.is_alive() else "dead")
        return f"<JThread {self.name} {state}>"


def spawn_all(*targets: Callable[[], Any], prefix: str = "worker"
              ) -> list[JThread]:
    """Start one JThread per callable; the PARA idiom for real threads."""
    threads = [JThread(target=t, name=f"{prefix}-{i}")
               for i, t in enumerate(targets)]
    for t in threads:
        t.start()
    return threads


def join_all(threads: list[JThread], timeout: Optional[float] = None
             ) -> list[Any]:
    """Join every thread, returning their results in order."""
    return [t.join(timeout) for t in threads]
