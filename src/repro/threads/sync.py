"""Java-style monitors over real Python threads.

The course teaches Java's intrinsic-lock idiom — ``synchronized`` blocks
plus ``wait()``/``notify()``/``notifyAll()``.  :class:`Monitor` packages
that idiom over :mod:`threading`: a reentrant lock fused with one
condition queue, entered with ``with monitor:`` and signalled with the
Java method names.

``@synchronized`` marks methods the way Java's keyword does: the paper's
misconception S7 ("conflate order of method invocation/return with
get/release lock") is precisely about the *difference* between calling a
synchronized method and holding its monitor — the decorator acquires the
monitor only once the call frame is entered, and the test suite pins
that distinction.
"""

from __future__ import annotations

import functools
import threading
import time
from typing import Any, Callable, Optional, TypeVar

__all__ = ["Monitor", "synchronized", "MonitorStateError"]

F = TypeVar("F", bound=Callable[..., Any])


class MonitorStateError(RuntimeError):
    """wait/notify called without holding the monitor (Java's
    IllegalMonitorStateException)."""


class Monitor:
    """Reentrant lock + condition queue with Java naming.

    ::

        m = Monitor()
        with m:
            while not ready:
                m.wait()
            ...
            m.notify_all()
    """

    def __init__(self, name: str = "", profiler: Optional[Any] = None):
        self.name = name or f"monitor@{id(self):x}"
        self._lock = threading.RLock()
        self._cond = threading.Condition(self._lock)
        self._owner: Optional[int] = None
        self._depth = 0
        #: lifetime entries / WAIT parks / NOTIFY signals — observability
        #: counters matching the kernel SimMonitor's; only mutated while
        #: the monitor is held, so no extra synchronization is needed
        self.acquire_count = 0
        self.wait_count = 0
        self.notify_count = 0
        #: optional :class:`repro.obs.Profiler` — lock wait times and
        #: contention counts; None keeps every path allocation-free
        self.profiler = profiler

    # -- lock protocol -----------------------------------------------------
    def __enter__(self) -> "Monitor":
        prof = self.profiler
        if prof is None:
            self._lock.acquire()
        elif self._lock.acquire(blocking=False):
            prof.inc("lock.acquires")
        else:
            # contended: somebody else holds the lock — time the wait
            t0 = prof.now()
            self._lock.acquire()
            prof.inc("lock.acquires")
            prof.inc("lock.contended")
            prof.observe_us("lock.wait_us", prof.now() - t0)
        self._owner = threading.get_ident()
        self._depth += 1
        if self._depth == 1:
            self.acquire_count += 1
        return self

    def __exit__(self, *exc: Any) -> None:
        self._depth -= 1
        if self._depth == 0:
            self._owner = None
        self._lock.release()

    def acquire(self) -> None:
        self.__enter__()

    def release(self) -> None:
        self.__exit__()

    @property
    def held_by_me(self) -> bool:
        return self._owner == threading.get_ident()

    def _require_held(self, op: str) -> None:
        if not self.held_by_me:
            raise MonitorStateError(
                f"{op} on {self.name} without holding the monitor")

    # -- condition protocol ---------------------------------------------------
    def wait(self, timeout: Optional[float] = None) -> bool:
        """Release the monitor and park; True unless the timeout expired.

        Mesa semantics: callers must re-check their predicate in a loop.
        """
        self._require_held("wait()")
        self.wait_count += 1
        prof = self.profiler
        t0 = 0.0
        if prof is not None:
            prof.inc("monitor.waits")
            t0 = prof.now()
        depth = self._depth
        # threading.Condition handles full release/reacquire of the RLock
        self._depth = 0
        self._owner = None
        try:
            signalled = self._cond.wait(timeout)
        finally:
            self._owner = threading.get_ident()
            self._depth = depth
        if prof is not None:
            prof.inc("monitor.wakeups")
            prof.observe_us("monitor.wait_us", prof.now() - t0)
        return signalled

    def wait_until(self, predicate: Callable[[], bool],
                   timeout: Optional[float] = None) -> bool:
        """Guarded wait: ``WHILE NOT predicate() WAIT()`` from Figure 4."""
        self._require_held("wait_until()")
        deadline = None if timeout is None else time.monotonic() + timeout
        while not predicate():
            remaining = None
            if deadline is not None:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    return False
            self.wait(remaining)
        return True

    def notify(self, n: int = 1) -> None:
        self._require_held("notify()")
        self.notify_count += 1
        if self.profiler is not None:
            self.profiler.inc("monitor.notifies")
        self._cond.notify(n)

    def notify_all(self) -> None:
        """The paper's NOTIFY(): every waiter finishes its WAIT()."""
        self._require_held("notifyAll()")
        self.notify_count += 1
        if self.profiler is not None:
            self.profiler.inc("monitor.notifies")
        self._cond.notify_all()

    def __repr__(self) -> str:
        return f"<Monitor {self.name}>"


def synchronized(method: F) -> F:
    """Java's ``synchronized`` method modifier.

    Serializes callers on a per-instance monitor stored as
    ``obj._monitor`` (created on first use; share it across methods of
    the same object, exactly like Java's intrinsic lock).  Inside the
    method, ``self._monitor.wait()`` / ``.notify_all()`` provide the
    condition queue.
    """

    @functools.wraps(method)
    def wrapper(self: Any, *args: Any, **kwargs: Any) -> Any:
        monitor = _intrinsic_monitor(self)
        with monitor:
            return method(self, *args, **kwargs)

    return wrapper  # type: ignore[return-value]


_intrinsic_guard = threading.Lock()


def _intrinsic_monitor(obj: Any) -> Monitor:
    monitor = getattr(obj, "_monitor", None)
    if monitor is None:
        with _intrinsic_guard:
            monitor = getattr(obj, "_monitor", None)
            if monitor is None:
                monitor = Monitor(f"{type(obj).__name__}@{id(obj):x}")
                obj._monitor = monitor
    return monitor
