"""Command-line interface: ``python -m repro <command>``.

Commands:

``run FILE``
    Execute a pseudocode file under a fair scheduler and print its
    output (``--seed N`` runs a seeded random schedule instead).

``outputs FILE``
    Exhaustively enumerate the program's output possibilities —
    the figures' "Output possibility 1/2/..." lists.

``check FILE``
    Static analysis report: globals, exclusion groups, warnings;
    then explore for deadlocks and task failures (``--progress`` streams
    live exploration statistics to stderr).

``trace PROBLEM``
    Run one schedule of a named kernel problem and export the trace —
    Chrome ``trace_event`` JSON (open in chrome://tracing or Perfetto)
    or a JSONL event stream.

``stats PROBLEM``
    Run one schedule of a named kernel problem with kernel metrics
    attached and print the counter/histogram report (``--json`` for the
    machine-readable snapshot, ``--explore`` to add exploration
    statistics).

``monitor PROBLEM``
    Watch a named kernel problem with the online hazard monitors:
    one schedule by default, every schedule with ``--explore``.
    Prints the hazard report; exits non-zero if any error/warning
    hazard fired.

``explain PROBLEM``
    Hunt for a violation (deadlock / task failure) of a named kernel
    problem and explain it: delta-debugged minimal schedule, the
    critical transition pair, causal narrative (``--html`` for a
    self-contained report).

``protocol list`` / ``protocol check TARGET``
    Session-typed conformance: ``list`` prints the bug gallery's
    protocol registry (each specimen's spec in the mini-language);
    ``check`` explores a kernel problem or ``bug:<id>`` with a
    :class:`~repro.obs.protocol.ProtocolMonitor` attached — the
    gallery entry's bundled spec by default, or an ad-hoc one via
    ``--spec '(REQ -> (REPLY | ERR))*' --parties server``.  Exits
    non-zero if any schedule violates the protocol.

``bench``
    Race the *real* runtimes — threads vs actors vs coroutines — on the
    classical problems under one parameterized workload, with the
    runtime profiler attached.  Prints the paper-style comparison table
    (``--report`` for per-cell profile detail, ``--json`` for the
    schema-stable payload); ``--baseline BENCH_runtimes.json`` gates on
    throughput regressions, ``--trace-dir`` exports a Chrome trace of
    the repetitions.

``top``
    Live cluster dashboard fed by the telemetry plane: per-node
    throughput, mailbox depth, credit stalls, p95 latency, and firing
    SLO burn-rate alerts.  ``--connect HOST:PORT`` polls a node serving
    with ``cluster serve --telemetry``; ``--demo`` runs a
    self-contained in-process two-node pingpong cluster
    (``--requests`` adds a causally-traced per-request drill-down).

``critical``
    Causal critical-path report: run traced requests of a cluster
    bench cell on a loopback node and print where each request's
    latency went, segment by segment (handler execution, mailbox wait,
    executor queueing, backpressure parks, wire time, decode).
    ``--trace-out`` additionally writes the raw spans as a Chrome
    trace with ``request_id`` args.

``whatif``
    Coz-style what-if profiling over the same traced run: virtually
    speed one segment up (``--segment mailbox-wait --speedup 20%``)
    by rescheduling the recorded span DAG, and rank every segment by
    its predicted end-to-end win — "what should we optimize next".

``postmortem``
    Inspect the flight-recorder postmortem bundles a telemetry agent
    dumps on actor failure / peer DOWN / SLO burn: list bundles, print
    the cross-node narrative, extract the merged Chrome trace.

``trace``/``stats``/``explain``/``bench`` accept ``--out -`` to stream
the artifact to stdout instead of a file.

``bridge QUESTION``
    Answer a Test-1-style bridge question given as
    ``section:history...=>scenario...`` (see ``--help-bridge``).

``study``
    Run the full §V study and print Tables I-III + surveys.

``figures``
    Regenerate every Figure 1-5 example and verify against the paper.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

__all__ = ["main"]


def _write_out(dest: str, text: str) -> Path | None:
    """Write ``text`` to a file, or to stdout when ``dest`` is ``-``.

    Returns the path written, or None for stdout (callers print their
    "wrote ..." summary only for real files, on stderr otherwise)."""
    if dest == "-":
        sys.stdout.write(text)
        if text and not text.endswith("\n"):
            sys.stdout.write("\n")
        return None
    path = Path(dest)
    path.write_text(text)
    return path


def _cmd_run(args: argparse.Namespace) -> int:
    import json

    from .core import RandomPolicy
    from .pseudocode import compile_program
    runtime = compile_program(Path(args.file).read_text())
    policy = RandomPolicy(args.seed) if args.seed is not None else None
    bus = None
    if args.monitor:
        from .obs import MonitorBus
        bus = MonitorBus()
    result = runtime.run(policy, raise_on_deadlock=False,
                         raise_on_failure=False, monitors=bus)
    if args.json:
        payload = {
            "outcome": result.outcome,
            "output": result.output_text(),
            "detail": result.trace.detail,
            "events": len(result.trace.events),
            "seed": args.seed,
        }
        if bus is not None:
            payload["hazards"] = [h.describe() for h in bus.hazards]
        print(json.dumps(payload, sort_keys=True))
        return 0 if result.outcome == "done" and not (
            bus is not None and bus.flagged) else 1
    sys.stdout.write(result.output_text())
    if not result.output_text().endswith("\n") and result.output_text():
        sys.stdout.write("\n")
    status = 0
    if result.outcome != "done":
        print(f"[outcome: {result.outcome}] {result.trace.detail}",
              file=sys.stderr)
        status = 1
    if bus is not None and bus.hazards:
        print(bus.format(), file=sys.stderr)
        if bus.flagged:
            status = 1
    return status


def _cmd_outputs(args: argparse.Namespace) -> int:
    import json

    from .pseudocode import possible_outputs
    outputs = possible_outputs(Path(args.file).read_text(),
                               max_runs=args.max_runs)
    if args.json:
        print(json.dumps({"possibilities": sorted(outputs),
                          "count": len(outputs)}, sort_keys=True))
        return 0
    for i, output in enumerate(sorted(outputs), start=1):
        print(f"possibility {i}: {output}")
    return 0


def _cmd_check(args: argparse.Namespace) -> int:
    from .pseudocode import compile_program
    from .verify import explore
    runtime = compile_program(Path(args.file).read_text())
    info = runtime.info
    print(f"globals          : {sorted(info.globals) or '(none)'}")
    print(f"exclusion groups : "
          f"{ {k: list(v) for k, v in info.groups.items()} or '(none)'}")
    for warning in info.warnings:
        print(f"warning          : {warning}")
    reduce = () if args.reduce == "none" else args.reduce
    progress = None
    if args.progress:
        def progress(stats):
            print(f"  ... {stats.runs} runs, {stats.decisions} decisions, "
                  f"{stats.sleep_prunes} sleep prunes, "
                  f"{stats.fingerprint_hits} fingerprint hits",
                  file=sys.stderr)
    result = explore(runtime.make_program(), max_runs=args.max_runs,
                     reduce=reduce, workers=args.workers,
                     progress=progress, progress_every=args.progress_every)
    print(f"exploration      : {result.summary()}")
    if args.progress:
        s = result.stats
        print(f"stats            : {s.decisions} decisions in "
              f"{s.elapsed_seconds:.3f}s ({s.decisions_per_sec:.0f}/s), "
              f"frontier depth {s.max_frontier_depth}")
    if reduce or args.workers > 1:
        print(f"reductions       : reduce={args.reduce} "
              f"workers={args.workers} "
              f"({result.decisions} decisions, "
              f"{result.pruned_runs} pruned runs)")
    status = 0
    if result.outcomes.get("deadlock"):
        print("DEADLOCK reachable; sample blocked state:")
        print("  " + result.deadlocks[0].detail)
        status = 1
    if result.outcomes.get("failed"):
        print("RUNTIME FAILURE reachable on some schedule")
        status = 1
    from .verify import find_races
    race = None
    for trace in result.witnesses.values():
        races = find_races(trace, max_races=1)
        if races:
            race = races[0]
            break
    if race is not None:
        print(f"DATA RACE        : {race.describe()}")
        status = 1
    if status == 0:
        print("no deadlocks, no failures, no races"
              + ("" if result.complete else " (within budget)"))
    return status


def _run_problem(name: str, seed: int | None):
    """One instrumented run of a named kernel problem."""
    from .core.policy import RandomPolicy
    from .core.scheduler import Scheduler
    from .obs import KernelMetrics
    from .problems import kernel_program
    metrics = KernelMetrics()
    policy = RandomPolicy(seed) if seed is not None else None
    sched = Scheduler(policy, raise_on_deadlock=False,
                      raise_on_failure=False, metrics=metrics)
    kernel_program(name)(sched)
    return sched.run(), metrics


def _cmd_trace(args: argparse.Namespace) -> int:
    import json

    from .problems import kernel_program_names
    try:
        trace, _ = _run_problem(args.problem, args.seed)
    except KeyError:
        print(f"unknown problem {args.problem!r}; known: "
              + ", ".join(kernel_program_names()), file=sys.stderr)
        return 2
    if args.format == "chrome":
        payload = trace.to_chrome_trace(scale=args.scale)
        out = _write_out(args.out, json.dumps(payload, sort_keys=True))
        lanes = sum(1 for e in payload["traceEvents"]
                    if e["ph"] == "M" and e["name"] == "thread_name")
        summary = (f"{len(payload['traceEvents'])} trace events, "
                   f"{lanes} lanes, outcome: {trace.outcome}) — open in "
                   f"chrome://tracing or https://ui.perfetto.dev")
        if out is not None:
            print(f"wrote {out} ({summary}")
    else:
        out = _write_out(args.out, trace.to_jsonl())
        if out is not None:
            print(f"wrote {out} ({len(trace.events)} steps + summary, "
                  f"outcome: {trace.outcome})")
    return 0 if trace.outcome == "done" else 1


def _cmd_stats(args: argparse.Namespace) -> int:
    import json

    from .problems import kernel_program, kernel_program_names
    try:
        trace, metrics = _run_problem(args.problem, args.seed)
    except KeyError:
        print(f"unknown problem {args.problem!r}; known: "
              + ", ".join(kernel_program_names()), file=sys.stderr)
        return 2
    explo = None
    if args.explore:
        from .verify import explore
        explo = explore(kernel_program(args.problem),
                        max_runs=args.max_runs, reduce=True)
    if args.json:
        payload = {"problem": args.problem, "seed": args.seed,
                   "outcome": trace.outcome, "metrics": metrics.snapshot()}
        if explo is not None:
            payload["exploration"] = explo.stats.as_dict()
            payload["exploration"]["complete"] = explo.complete
            payload["exploration"]["terminals"] = len(explo.terminals)
        report = json.dumps(payload, sort_keys=True)
    else:
        lines = [f"problem : {args.problem} (outcome: {trace.outcome}, "
                 f"{len(trace.events)} steps)",
                 metrics.format()]
        if explo is not None:
            s = explo.stats
            lines.append(f"exploration : {explo.summary()}")
            lines.append(
                f"            : {s.decisions} decisions in "
                f"{s.elapsed_seconds:.3f}s ({s.decisions_per_sec:.0f}/s), "
                f"{s.sleep_prunes} sleep prunes, "
                f"{s.fingerprint_hits} fingerprint hits, "
                f"frontier depth {s.max_frontier_depth}")
        report = "\n".join(lines)
    out = _write_out(args.out, report)
    if out is not None:
        print(f"wrote {out}", file=sys.stderr)
    return 0 if trace.outcome == "done" else 1


def _cmd_monitor(args: argparse.Namespace) -> int:
    import json

    from .problems import kernel_program, kernel_program_names
    try:
        program = kernel_program(args.problem)
    except KeyError:
        print(f"unknown problem {args.problem!r}; known: "
              + ", ".join(kernel_program_names()), file=sys.stderr)
        return 2
    # gallery specimens bound to a session type are flagged *by* that
    # protocol — arm it next to the default detectors
    protocols = []
    if args.problem.startswith("bug:"):
        from .problems.bug_gallery import gallery
        spec = next((s for s in gallery()
                     if s.bug_id == args.problem[4:]), None)
        if spec is not None and spec.protocol is not None:
            protocols.append(spec.protocol)
    if args.explore:
        from .obs import protocol_bus
        from .verify import explore
        monitors = (lambda: protocol_bus(protocols)) if protocols \
            else True
        res = explore(program, max_runs=args.max_runs, reduce=True,
                      monitors=monitors)
        hazards = res.hazards
        summary = f"{args.problem}: {res.summary()}"
    else:
        from .core.policy import RandomPolicy
        from .core.scheduler import Scheduler
        from .obs import MonitorBus, protocol_bus
        bus = protocol_bus(protocols) if protocols else MonitorBus()
        policy = RandomPolicy(args.seed) if args.seed is not None else None
        sched = Scheduler(policy, raise_on_deadlock=False,
                          raise_on_failure=False, monitors=bus)
        program(sched)
        trace = sched.run()
        hazards = bus.hazards
        summary = (f"{args.problem}: 1 run, outcome {trace.outcome}, "
                   f"{len(trace.events)} steps")
    flagged = any(h.severity in ("error", "warning") for h in hazards)
    if args.json:
        print(json.dumps({
            "problem": args.problem,
            "explored": bool(args.explore),
            "flagged": flagged,
            "hazards": [{"kind": h.kind, "severity": h.severity,
                         "message": h.message, "step": h.step,
                         "tasks": list(h.tasks),
                         "objects": list(h.objects),
                         "refutes": list(h.refutes)} for h in hazards],
        }, sort_keys=True))
    else:
        print(summary)
        if hazards:
            for h in hazards:
                print(h.describe())
        else:
            print("no hazards detected")
    return 1 if flagged else 0


def _cmd_explain(args: argparse.Namespace) -> int:
    from .problems import kernel_program, kernel_program_names
    try:
        program = kernel_program(args.problem)
    except KeyError:
        print(f"unknown problem {args.problem!r}; known: "
              + ", ".join(kernel_program_names()), file=sys.stderr)
        return 2
    from .obs import explain_program, html_report
    explanation = explain_program(program, max_runs=args.max_runs)
    if explanation is None:
        print(f"{args.problem}: no violation found "
              f"(within {args.max_runs} runs)")
        return 0
    text = (html_report(explanation,
                        title=f"{args.problem}: {explanation.kind}")
            if args.html else explanation.narrative())
    out = _write_out(args.out, text)
    if out is not None:
        print(f"wrote {out} ({explanation.kind}; minimized to "
              f"{len(explanation.schedule)} decisions from "
              f"{len(explanation.original_schedule)}; "
              f"{explanation.replays} replays)", file=sys.stderr)
    return 1


def _cmd_protocol_list(args: argparse.Namespace) -> int:
    import json

    from .problems.bug_gallery import gallery
    rows = [spec for spec in gallery() if spec.protocol is not None]
    if args.json:
        print(json.dumps(
            [{"bug": s.bug_id, "category": s.category,
              **s.protocol.describe()} for s in rows],
            sort_keys=True))
        return 0
    for s in rows:
        p = s.protocol
        where = ",".join(p.parties) or "(any)"
        print(f"bug:{s.bug_id:<24} {p.name:<10} {p.text:<24} "
              f"@ {where} [{p.at}]")
    print(f"{len(rows)} protocol-governed specimens — check one with "
          f"`repro protocol check bug:<id>`")
    return 0


def _cmd_protocol_check(args: argparse.Namespace) -> int:
    import json

    from .obs.protocol import Protocol, protocol_bus
    from .problems import kernel_program, kernel_program_names
    proto = None
    variant = None
    if args.target.startswith("bug:"):
        from .problems.bug_gallery import gallery
        spec = next((s for s in gallery()
                     if s.bug_id == args.target[4:]), None)
        if spec is None:
            print(f"unknown gallery bug {args.target!r}; known: "
                  + ", ".join(f"bug:{s.bug_id}" for s in gallery()),
                  file=sys.stderr)
            return 2
        program = spec.fixed if args.fixed else spec.buggy
        variant = "fixed" if args.fixed else "buggy"
        proto = spec.protocol
    else:
        if args.fixed:
            print("repro protocol check: --fixed only applies to "
                  "bug:<id> targets", file=sys.stderr)
            return 2
        try:
            program = kernel_program(args.target)
        except KeyError:
            print(f"unknown problem {args.target!r}; known: "
                  + ", ".join(kernel_program_names()), file=sys.stderr)
            return 2
    if args.spec is not None:
        parties = tuple(p for p in (args.parties or "").split(",") if p)
        try:
            proto = Protocol(args.name, args.spec, parties=parties,
                             at=args.at)
        except ValueError as exc:
            print(f"repro protocol check: {exc}", file=sys.stderr)
            return 2
    if proto is None:
        print(f"{args.target!r} ships no protocol spec; supply one "
              f"with --spec (see `repro protocol list`)",
              file=sys.stderr)
        return 2
    from .verify import explore
    res = explore(program, max_runs=args.max_runs, reduce=True,
                  monitors=lambda: protocol_bus([proto]))
    hazards = [h for h in res.hazards if h.kind.startswith("protocol-")]
    flagged = any(h.severity == "error" for h in hazards)
    if args.json:
        print(json.dumps({
            "target": args.target, "variant": variant,
            "protocol": proto.describe(), "flagged": flagged,
            "explored": res.summary(),
            "hazards": [{"kind": h.kind, "severity": h.severity,
                         "message": h.message, "subject": h.subject}
                        for h in hazards],
        }, sort_keys=True))
    else:
        vtxt = f" ({variant})" if variant else ""
        print(f"{args.target}{vtxt} against protocol "
              f"{proto.name!r}: {proto.text}")
        print(f"exploration: {res.summary()}")
        if hazards:
            shown = hazards if args.limit <= 0 \
                else hazards[:args.limit]
            for h in shown:
                print(h.describe())
            if len(hazards) > len(shown):
                print(f"... and {len(hazards) - len(shown)} more "
                      f"(--limit 0 for all, --json for the full list)")
        else:
            print("conforms: no protocol hazards on any "
                  "explored schedule")
    return 1 if flagged else 0


def _cmd_bench(args: argparse.Namespace) -> int:
    import json

    from .bench import (DEFAULT, QUICK, Workload, bench_problems,
                        bench_runtimes, compare_to_baseline, load_baseline,
                        make_baseline, run_bench)
    problems = args.problems.split(",") if args.problems else None
    runtimes = args.runtimes.split(",") if args.runtimes else None
    base_w = QUICK if args.quick else DEFAULT
    workload = Workload(
        workers=args.workers if args.workers is not None else base_w.workers,
        ops=args.ops if args.ops is not None else base_w.ops,
        warmup=args.warmup if args.warmup is not None else base_w.warmup,
        repetitions=(args.repetitions if args.repetitions is not None
                     else base_w.repetitions))

    progress = None
    if not args.json:
        def progress(msg: str) -> None:
            print(f"bench: {msg}", file=sys.stderr)

    core_problems = problems
    if args.cluster and problems is not None:
        # cluster-only cells (e.g. pingpong-local) have no core
        # counterpart — keep them out of run_bench's validation
        from .cluster.bench import cluster_bench_problems
        cluster_only = set(cluster_bench_problems()) - set(bench_problems())
        core_problems = [p for p in problems if p not in cluster_only]
    try:
        if core_problems == []:
            from .bench import BenchResult
            result = BenchResult(workload, [], [])
        else:
            result = run_bench(problems=core_problems, runtimes=runtimes,
                               workload=workload, progress=progress)
    except KeyError as exc:
        print(f"bench: {exc.args[0]}", file=sys.stderr)
        print("known problems: " + ", ".join(bench_problems()),
              file=sys.stderr)
        print("known runtimes: " + ", ".join(bench_runtimes()),
              file=sys.stderr)
        return 2

    if args.cluster:
        from .cluster.bench import cluster_bench_problems, run_cluster_bench
        cluster_problems = None
        if problems is not None:
            cluster_problems = [p for p in problems
                                if p in cluster_bench_problems()]
        if cluster_problems is None or cluster_problems:
            cluster = run_cluster_bench(problems=cluster_problems,
                                        workload=workload,
                                        progress=progress)
            result.cells.extend(cluster.cells)
            result.spans.extend(cluster.spans)

    if args.trace_dir:
        trace_dir = Path(args.trace_dir)
        trace_dir.mkdir(parents=True, exist_ok=True)
        trace_path = trace_dir / "bench_trace.json"
        trace_path.write_text(json.dumps(result.chrome_trace(),
                                         sort_keys=True))
        print(f"wrote {trace_path} ({len(result.spans)} spans) — open in "
              f"chrome://tracing or https://ui.perfetto.dev",
              file=sys.stderr)

    regressions: list[str] = []
    if args.baseline:
        baseline = load_baseline(args.baseline)
        if args.update_baseline:
            Path(args.baseline).write_text(
                json.dumps(make_baseline(
                    result, tolerance=float(baseline.get("tolerance", 0.8))),
                    indent=2, sort_keys=True) + "\n")
            print(f"updated baseline {args.baseline}", file=sys.stderr)
        else:
            regressions = compare_to_baseline(result, baseline)

    if args.json:
        payload = result.as_dict()
        payload["regressions"] = regressions
        out = _write_out(args.out, json.dumps(payload, sort_keys=True))
    else:
        out = _write_out(args.out, result.markdown(detail=args.report))
    if out is not None:
        print(f"wrote {out}", file=sys.stderr)
    if regressions:
        for line in regressions:
            print(f"REGRESSION: {line}", file=sys.stderr)
        return 1
    return 0


def _demo_telemetry_cluster(interval: float, tracer=None):
    """Two loopback nodes, telemetry agents, and a pingpong load.

    The self-contained `repro top --demo` topology: alpha pings, beta
    echoes, frames flow both ways, and alpha's aggregator (the one the
    snapshot reads) sees the whole two-node cluster.  With a tracer, a
    probe actor additionally runs one causally-traced cross-node
    request per refresh — the ``--requests`` drill-down rows.  Returns
    ``(snapshot, cleanup, probe)`` closures (``probe`` is None when
    untraced).
    """
    from .actors import Actor
    from .cluster.node import ClusterConfig, ClusterNode
    from .cluster.transport import LoopbackHub
    from .obs.profile import Profiler
    from .obs.telemetry import TelemetryAgent

    class _Echo(Actor):
        def receive(self, message, sender):
            if sender is not None:
                sender.tell(message, sender=self.self_ref)

    class _Pinger(Actor):
        def __init__(self, target):
            super().__init__()
            self.target = target

        def receive(self, message, sender):
            if message == "start":
                for i in range(8):       # pipelined in-flight window
                    self.target.tell(i, sender=self.self_ref)
                return
            self.target.tell(message, sender=self.self_ref)

    hub = LoopbackHub()
    config = ClusterConfig(telemetry_interval=max(0.05, interval / 4))
    alpha = ClusterNode("alpha", hub.join("alpha"), config=config,
                        workers=2, profiler=Profiler(), tracer=tracer)
    beta = ClusterNode("beta", hub.join("beta"), config=config,
                       workers=2, profiler=Profiler(), tracer=tracer)
    agent = TelemetryAgent().attach(alpha)
    TelemetryAgent().attach(beta)
    alpha.connect("beta")
    beta.connect("alpha")
    beta.spawn(_Echo, name="echo")
    pinger = alpha.spawn(_Pinger, alpha.ref("beta/echo"), name="pinger")
    pinger.tell("start")

    probe = None
    if tracer is not None:
        from .obs.causal import clear_context
        probe_target = alpha.ref("beta/echo")

        class _Probe(Actor):
            # one finite round trip per "go": alpha/probe -> beta/echo
            # -> alpha/probe; the echoed reply is not "go", so the
            # chain ends there instead of bouncing forever like the
            # pinger load
            def receive(self, message, sender):
                if message == "go":
                    probe_target.tell("probe-ping", sender=self.self_ref)

        probe_ref = alpha.spawn(_Probe, name="probe")

        def probe() -> None:
            tracer.start_request("top-probe")
            try:
                probe_ref.tell("go")
            finally:
                clear_context()

    def cleanup() -> None:
        alpha.close()
        beta.close()

    return agent.snapshot, cleanup, probe


def _cmd_top(args: argparse.Namespace) -> int:
    import json
    import time

    from .obs.telemetry import render_top
    cleanup = None
    tracer = None
    probe = None
    if args.demo:
        if args.requests:
            from .obs.causal import CausalTracer
            tracer = CausalTracer()
        snapshot, cleanup, probe = _demo_telemetry_cluster(args.interval,
                                                           tracer)
        if probe is not None:
            probe()
        time.sleep(max(0.5, args.interval / 2))   # let frames flow
    elif args.connect:
        if args.requests:
            print("repro top: --requests drill-down needs the in-process "
                  "--demo cluster (remote spans stay on their node)",
                  file=sys.stderr)
            return 2
        import uuid

        from .cluster.message import serializer as _serializer
        from .cluster.node import ClusterNode
        from .cluster.transport import SocketTransport
        address = args.connect
        name = f"top-{uuid.uuid4().hex[:8]}"
        node = ClusterNode(name, SocketTransport(name, listen=False),
                           serializer=_serializer(args.serializer))
        node.connect(args.peer, address)
        cleanup = node.close

        def snapshot():
            reply = node.status_of(args.peer, timeout=args.timeout,
                                   telemetry=True)
            snap = reply.get("telemetry")
            if snap is None:
                raise RuntimeError(
                    f"node {args.peer!r} serves no telemetry — start it "
                    f"with `repro cluster serve --telemetry`")
            return snap
    else:
        print("repro top: need --connect HOST:PORT or --demo",
              file=sys.stderr)
        return 2
    deadline = None if args.duration is None \
        else time.monotonic() + args.duration
    try:
        while True:
            snap = snapshot()
            if args.json:
                if tracer is not None:
                    from .obs.causal import critical_report
                    snap["requests"] = critical_report(tracer.spans())
                print(json.dumps(snap, sort_keys=True, default=str))
            else:
                color = sys.stdout.isatty()
                print(render_top(snap, color=color,
                                 clear=color and not args.once))
                if tracer is not None:
                    from .obs.causal import format_requests
                    print()
                    print(format_requests(tracer.spans()))
            if args.once or (deadline is not None
                             and time.monotonic() >= deadline):
                return 0
            if probe is not None:
                probe()      # one fresh traced request per refresh
            time.sleep(args.interval)
    except KeyboardInterrupt:
        return 0
    except (RuntimeError, TimeoutError) as exc:
        print(f"repro top: {exc}", file=sys.stderr)
        return 1
    finally:
        if cleanup is not None:
            cleanup()


def _cmd_critical(args: argparse.Namespace) -> int:
    import json

    from .obs.causal import (chrome_trace_from_causal, critical_report,
                             format_critical, trace_cluster_cell)
    try:
        tracer, measured = trace_cluster_cell(
            cell=args.cell, requests=args.requests,
            workers=args.workers, scale=args.scale)
    except KeyError as exc:
        print(f"repro critical: {exc.args[0]}", file=sys.stderr)
        return 2
    spans = tracer.spans()
    report = critical_report(spans, measured_e2e=measured)
    if args.trace_out:
        Path(args.trace_out).write_text(
            json.dumps(chrome_trace_from_causal(spans), sort_keys=True))
        print(f"wrote {args.trace_out} ({len(spans)} causal spans — open "
              f"in chrome://tracing or https://ui.perfetto.dev)",
              file=sys.stderr)
    if args.json:
        payload = {"cell": args.cell, "spans": len(spans), **report}
        out = _write_out(args.out, json.dumps(payload, sort_keys=True))
    else:
        out = _write_out(args.out, format_critical(report))
    if out is not None:
        print(f"wrote {out}", file=sys.stderr)
    return 0


def _cmd_whatif(args: argparse.Namespace) -> int:
    import json

    from .obs.causal import (SEGMENTS, format_whatif, parse_speedup,
                             rank_targets, trace_cluster_cell,
                             whatif_report)
    try:
        speedup = parse_speedup(args.speedup)
    except ValueError as exc:
        print(f"repro whatif: {exc}", file=sys.stderr)
        return 2
    if args.segment is not None and args.segment not in SEGMENTS:
        print(f"repro whatif: unknown segment {args.segment!r}; known: "
              + ", ".join(SEGMENTS), file=sys.stderr)
        return 2
    try:
        tracer, _ = trace_cluster_cell(
            cell=args.cell, requests=args.requests,
            workers=args.workers, scale=args.scale)
    except KeyError as exc:
        print(f"repro whatif: {exc.args[0]}", file=sys.stderr)
        return 2
    spans = tracer.spans()
    ranked = rank_targets(spans, speedup)
    chosen = whatif_report(spans, args.segment, speedup) \
        if args.segment is not None else None
    if args.json:
        payload: dict = {"cell": args.cell, "speedup": speedup,
                         "spans": len(spans), "targets": ranked}
        if chosen is not None:
            payload["chosen"] = chosen
        out = _write_out(args.out, json.dumps(payload, sort_keys=True))
    else:
        out = _write_out(args.out, format_whatif(ranked, chosen))
    if out is not None:
        print(f"wrote {out}", file=sys.stderr)
    return 0


def _cmd_postmortem(args: argparse.Namespace) -> int:
    import json
    dirp = Path(args.dir)
    bundles = sorted(dirp.glob("pm-*.json")) if dirp.is_dir() else []
    if not args.bundle:
        if not bundles:
            print(f"no postmortem bundles under {dirp}/")
            return 1
        for path in bundles:
            try:
                b = json.loads(path.read_text())
            except (OSError, ValueError):
                print(f"{path.name}: unreadable")
                continue
            firing = [a for a in b.get("alerts", ())
                      if a.get("state") == "firing"]
            events = b.get("events") or {}
            print(f"{path.name}: {b.get('kind')} on node "
                  f"{b.get('node')!r} — {sum(events.values())} flight "
                  f"event(s) from {len(events)} node(s), "
                  f"{len(firing)} firing alert(s)")
        return 0
    if args.bundle == "latest":
        if not bundles:
            print(f"no postmortem bundles under {dirp}/", file=sys.stderr)
            return 1
        path = bundles[-1]
    else:
        path = Path(args.bundle)
        if not path.exists():
            path = dirp / args.bundle
    try:
        b = json.loads(path.read_text())
    except (OSError, ValueError) as exc:
        print(f"repro postmortem: cannot read {path}: {exc}",
              file=sys.stderr)
        return 1
    if args.trace_out:
        Path(args.trace_out).write_text(
            json.dumps(b.get("trace") or {}, sort_keys=True))
        print(f"wrote {args.trace_out} (merged Chrome trace — open in "
              f"chrome://tracing or https://ui.perfetto.dev)",
              file=sys.stderr)
    if args.json:
        print(json.dumps(b, sort_keys=True, default=str))
    else:
        print(b.get("narrative") or "(bundle has no narrative)")
    return 0


def _cmd_study(args: argparse.Namespace) -> int:
    from .study import run_full_study
    study = run_full_study(seed=args.seed if args.seed is not None else 2013)
    print(study.render())
    return 0


def _cmd_figures(args: argparse.Namespace) -> int:
    from .pseudocode import possible_outputs
    checks = [
        ("Figure 3a", 'PARA\nPRINT "hello "\nPRINT "world "\nENDPARA',
         {"hello world", "world hello"}),
        ("Figure 4a", 'x = 10\nDEFINE changeX(d)\n EXC_ACC\n  x = x + d\n'
         ' END_EXC_ACC\nENDDEF\nPARA\n changeX(1)\n changeX(-2)\nENDPARA\n'
         'PRINTLN x', {"9"}),
    ]
    ok = True
    for name, source, expected in checks:
        computed = possible_outputs(source, max_runs=100_000)
        match = computed == expected
        ok &= match
        print(f"{name}: {'ok' if match else f'MISMATCH {computed}'}")
    print("run `python examples/pseudocode_playground.py` for all figures")
    return 0 if ok else 1


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Programming with Concurrency — reproduction toolkit")
    sub = parser.add_subparsers(dest="command", required=True)

    p_run = sub.add_parser("run", help="execute a pseudocode file")
    p_run.add_argument("file")
    p_run.add_argument("--seed", type=int, default=None,
                       help="random schedule seed (default: fair RR)")
    p_run.add_argument("--json", action="store_true",
                       help="machine-readable result on stdout")
    p_run.add_argument("--monitor", action="store_true",
                       help="attach the online hazard monitors; exit "
                            "non-zero if any error/warning hazard fires")
    p_run.set_defaults(fn=_cmd_run)

    p_out = sub.add_parser("outputs",
                           help="enumerate all output possibilities")
    p_out.add_argument("file")
    p_out.add_argument("--max-runs", type=int, default=200_000)
    p_out.add_argument("--json", action="store_true",
                       help="machine-readable possibility list on stdout")
    p_out.set_defaults(fn=_cmd_outputs)

    p_check = sub.add_parser("check", help="analyze + explore a program")
    p_check.add_argument("file")
    p_check.add_argument("--max-runs", type=int, default=50_000)
    p_check.add_argument("--reduce", choices=("none", "sleep", "fingerprint",
                                              "sleep+fingerprint", "all"),
                         default="none",
                         help="exploration reductions (default: naive DFS)")
    p_check.add_argument("--workers", type=int, default=0,
                         help="parallel subtree exploration processes")
    p_check.add_argument("--progress", action="store_true",
                         help="stream live exploration stats to stderr")
    p_check.add_argument("--progress-every", type=int, default=200,
                         help="runs between progress lines (default 200)")
    p_check.set_defaults(fn=_cmd_check)

    p_trace = sub.add_parser(
        "trace", help="export one run of a kernel problem as a trace file")
    p_trace.add_argument("problem",
                         help="problem name (see repro.problems)")
    p_trace.add_argument("--out", required=True,
                         help="output file path ('-' for stdout)")
    p_trace.add_argument("--format", choices=("chrome", "jsonl"),
                         default="chrome",
                         help="chrome trace_event JSON (default) or JSONL")
    p_trace.add_argument("--seed", type=int, default=None,
                         help="random schedule seed (default: fair RR)")
    p_trace.add_argument("--scale", type=int, default=10,
                         help="microseconds per logical step (chrome)")
    p_trace.set_defaults(fn=_cmd_trace)

    p_stats = sub.add_parser(
        "stats", help="run a kernel problem and report kernel metrics")
    p_stats.add_argument("problem",
                         help="problem name (see repro.problems)")
    p_stats.add_argument("--seed", type=int, default=None,
                         help="random schedule seed (default: fair RR)")
    p_stats.add_argument("--json", action="store_true",
                         help="machine-readable snapshot on stdout")
    p_stats.add_argument("--explore", action="store_true",
                         help="also explore the schedule space (reduced)")
    p_stats.add_argument("--max-runs", type=int, default=20_000,
                         help="exploration budget for --explore")
    p_stats.add_argument("--out", default="-",
                         help="report destination (default '-': stdout)")
    p_stats.set_defaults(fn=_cmd_stats)

    p_mon = sub.add_parser(
        "monitor", help="watch a kernel problem with the hazard monitors")
    p_mon.add_argument("problem",
                       help="problem name (see repro.problems; "
                            "'bug:<id>' for gallery bugs)")
    p_mon.add_argument("--explore", action="store_true",
                       help="monitor every schedule, not just one run")
    p_mon.add_argument("--seed", type=int, default=None,
                       help="random schedule seed for the single run")
    p_mon.add_argument("--max-runs", type=int, default=20_000,
                       help="exploration budget for --explore")
    p_mon.add_argument("--json", action="store_true",
                       help="machine-readable hazard list on stdout")
    p_mon.set_defaults(fn=_cmd_monitor)

    p_exp = sub.add_parser(
        "explain", help="minimize and explain a violating schedule")
    p_exp.add_argument("problem",
                       help="problem name (see repro.problems; "
                            "'bug:<id>' for gallery bugs)")
    p_exp.add_argument("--out", default="-",
                       help="report destination (default '-': stdout)")
    p_exp.add_argument("--html", action="store_true",
                       help="self-contained HTML report instead of text")
    p_exp.add_argument("--max-runs", type=int, default=20_000,
                       help="exploration budget for the violation hunt")
    p_exp.set_defaults(fn=_cmd_explain)

    p_proto = sub.add_parser(
        "protocol", help="session-typed conformance: list the "
                         "gallery's protocol specs or check a program "
                         "against one online")
    proto_sub = p_proto.add_subparsers(dest="action", required=True)
    p_plist = proto_sub.add_parser(
        "list", help="print the bug gallery's protocol registry")
    p_plist.add_argument("--json", action="store_true",
                         help="machine-readable registry on stdout")
    p_plist.set_defaults(fn=_cmd_protocol_list)
    p_pcheck = proto_sub.add_parser(
        "check", help="explore a program with a conformance monitor "
                      "attached; exit non-zero on violation")
    p_pcheck.add_argument("target",
                          help="problem name (see repro.problems) or "
                               "'bug:<id>' for gallery specimens")
    p_pcheck.add_argument("--spec", default=None,
                          help="protocol mini-language text, e.g. "
                               "'(REQ -> (REPLY | ERR))*' (default: "
                               "the gallery entry's bundled spec)")
    p_pcheck.add_argument("--parties", default=None,
                          help="comma-separated mailbox/channel/actor "
                               "names the spec governs (default: any)")
    p_pcheck.add_argument("--at", choices=("deliver", "send"),
                          default="deliver",
                          help="observation point for --spec "
                               "(default: deliver order)")
    p_pcheck.add_argument("--name", default="cli",
                          help="protocol name used in hazard messages")
    p_pcheck.add_argument("--fixed", action="store_true",
                          help="for bug:<id>: check the corrected twin "
                               "(expected to conform)")
    p_pcheck.add_argument("--max-runs", type=int, default=20_000,
                          help="exploration budget (default 20000)")
    p_pcheck.add_argument("--limit", type=int, default=10,
                          help="hazards to print before eliding "
                               "(default 10; 0 = all)")
    p_pcheck.add_argument("--json", action="store_true",
                          help="machine-readable verdict on stdout")
    p_pcheck.set_defaults(fn=_cmd_protocol_check)

    p_bench = sub.add_parser(
        "bench", help="race the real runtimes: threads vs actors vs "
                      "coroutines on the classical problems")
    p_bench.add_argument("--problems", default=None,
                         help="comma-separated problem subset "
                              "(default: all six)")
    p_bench.add_argument("--runtimes", default=None,
                         help="comma-separated runtime subset "
                              "(default: threads,actors,coroutines)")
    p_bench.add_argument("--workers", type=int, default=None,
                         help="workload scale: concurrent participants")
    p_bench.add_argument("--ops", type=int, default=None,
                         help="workload scale: operations per participant")
    p_bench.add_argument("--warmup", type=int, default=None,
                         help="discarded warmup repetitions per cell")
    p_bench.add_argument("--repetitions", type=int, default=None,
                         help="measured repetitions per cell")
    p_bench.add_argument("--quick", action="store_true",
                         help="CI smoke workload (small + fast)")
    p_bench.add_argument("--cluster", action="store_true",
                         help="also run the cluster cells (pingpong, "
                              "pingpong-local, bridge) and merge them "
                              "into the matrix")
    p_bench.add_argument("--json", action="store_true",
                         help="schema-stable JSON report on stdout")
    p_bench.add_argument("--report", action="store_true",
                         help="full Markdown report with per-cell "
                              "profile detail (default: table only)")
    p_bench.add_argument("--out", default="-",
                         help="report destination (default '-': stdout)")
    p_bench.add_argument("--trace-dir", default=None,
                         help="also write a Chrome trace of the bench "
                              "repetitions into this directory")
    p_bench.add_argument("--baseline", default=None,
                         help="compare against this BENCH_runtimes.json; "
                              "exit 1 on regression beyond its tolerance")
    p_bench.add_argument("--update-baseline", action="store_true",
                         help="rewrite --baseline from this run instead "
                              "of gating against it")
    p_bench.set_defaults(fn=_cmd_bench)

    from .cluster.cli import add_cluster_commands
    add_cluster_commands(sub)

    from .sim.cli import add_sim_commands
    add_sim_commands(sub)

    p_top = sub.add_parser(
        "top", help="live cluster dashboard from the telemetry plane "
                    "(per-node throughput, mailbox depth, stalls, p95 "
                    "latency, firing SLO alerts)")
    from .cluster.cli import _address
    p_top.add_argument("--connect", type=_address, default=None,
                       metavar="HOST:PORT",
                       help="address of a node serving with --telemetry")
    p_top.add_argument("--peer", default="worker",
                       help="node name of the serving node "
                            "(default: worker)")
    p_top.add_argument("--serializer", choices=("json", "pickle"),
                       default="json",
                       help="wire format (must match the server)")
    p_top.add_argument("--timeout", type=float, default=5.0,
                       help="per-poll STATUS timeout (seconds)")
    p_top.add_argument("--demo", action="store_true",
                       help="run against a self-contained in-process "
                            "two-node pingpong cluster instead of "
                            "connecting anywhere")
    p_top.add_argument("--interval", type=float, default=1.0,
                       help="refresh period in seconds (default 1.0)")
    p_top.add_argument("--once", action="store_true",
                       help="render a single frame and exit")
    p_top.add_argument("--json", action="store_true",
                       help="emit raw aggregator snapshots as JSON lines "
                            "instead of the ANSI table")
    p_top.add_argument("--for", dest="duration", type=float, default=None,
                       metavar="SECS",
                       help="stop after this many seconds (default: "
                            "until Ctrl-C)")
    p_top.add_argument("--requests", action="store_true",
                       help="with --demo: causally trace one probe "
                            "request per refresh and render a "
                            "per-request critical-path drill-down")
    p_top.set_defaults(fn=_cmd_top)

    p_crit = sub.add_parser(
        "critical", help="causal critical-path report: where each "
                         "traced request's latency went, by segment")
    p_crit.add_argument("--cell", choices=("bridge", "pingpong"),
                        default="bridge",
                        help="traced cluster bench cell (default bridge)")
    p_crit.add_argument("--requests", type=int, default=10,
                        help="traced requests to run (default 10)")
    p_crit.add_argument("--workers", type=int, default=4,
                        help="actor-system workers (default 4)")
    p_crit.add_argument("--scale", type=int, default=8,
                        help="per-request workload scale (default 8)")
    p_crit.add_argument("--json", action="store_true",
                        help="machine-readable report on stdout")
    p_crit.add_argument("--out", default="-",
                        help="report destination (default '-': stdout)")
    p_crit.add_argument("--trace-out", default=None,
                        help="also write the raw causal spans as a "
                             "Chrome trace (request_id in args)")
    p_crit.set_defaults(fn=_cmd_critical)

    p_wi = sub.add_parser(
        "whatif", help="Coz-style what-if: predict the end-to-end win "
                       "of speeding one segment up, and rank all of "
                       "them")
    p_wi.add_argument("--cell", choices=("bridge", "pingpong"),
                      default="bridge",
                      help="traced cluster bench cell (default bridge)")
    p_wi.add_argument("--segment", default=None,
                      help="segment to speed up (e.g. mailbox-wait; "
                           "omit for the ranking alone)")
    p_wi.add_argument("--speedup", default="20%",
                      help="virtual speedup: '20%%' or '0.2' "
                           "(default 20%%)")
    p_wi.add_argument("--requests", type=int, default=10,
                      help="traced requests to run (default 10)")
    p_wi.add_argument("--workers", type=int, default=4,
                      help="actor-system workers (default 4)")
    p_wi.add_argument("--scale", type=int, default=8,
                      help="per-request workload scale (default 8)")
    p_wi.add_argument("--json", action="store_true",
                      help="machine-readable report on stdout")
    p_wi.add_argument("--out", default="-",
                      help="report destination (default '-': stdout)")
    p_wi.set_defaults(fn=_cmd_whatif)

    p_pm = sub.add_parser(
        "postmortem", help="inspect flight-recorder postmortem bundles "
                           "dumped by a telemetry agent")
    p_pm.add_argument("bundle", nargs="?", default=None,
                      help="bundle file name, path, or 'latest' "
                           "(omit to list all bundles in --dir)")
    p_pm.add_argument("--dir", default="postmortems",
                      help="bundle directory (the serve node's "
                           "--postmortem-dir; default: postmortems)")
    p_pm.add_argument("--json", action="store_true",
                      help="dump the full bundle as JSON instead of the "
                           "narrative")
    p_pm.add_argument("--trace-out", default=None,
                      help="also write the bundle's merged cross-node "
                           "Chrome trace to this file")
    p_pm.set_defaults(fn=_cmd_postmortem)

    p_study = sub.add_parser("study", help="run the full §V study")
    p_study.add_argument("--seed", type=int, default=None)
    p_study.set_defaults(fn=_cmd_study)

    p_fig = sub.add_parser("figures", help="verify figure examples")
    p_fig.set_defaults(fn=_cmd_figures)

    args = parser.parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
