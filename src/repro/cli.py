"""Command-line interface: ``python -m repro <command>``.

Commands:

``run FILE``
    Execute a pseudocode file under a fair scheduler and print its
    output (``--seed N`` runs a seeded random schedule instead).

``outputs FILE``
    Exhaustively enumerate the program's output possibilities —
    the figures' "Output possibility 1/2/..." lists.

``check FILE``
    Static analysis report: globals, exclusion groups, warnings;
    then explore for deadlocks and task failures.

``bridge QUESTION``
    Answer a Test-1-style bridge question given as
    ``section:history...=>scenario...`` (see ``--help-bridge``).

``study``
    Run the full §V study and print Tables I-III + surveys.

``figures``
    Regenerate every Figure 1-5 example and verify against the paper.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

__all__ = ["main"]


def _cmd_run(args: argparse.Namespace) -> int:
    from .core import RandomPolicy
    from .pseudocode import compile_program
    runtime = compile_program(Path(args.file).read_text())
    policy = RandomPolicy(args.seed) if args.seed is not None else None
    result = runtime.run(policy, raise_on_deadlock=False,
                         raise_on_failure=False)
    sys.stdout.write(result.output_text())
    if not result.output_text().endswith("\n") and result.output_text():
        sys.stdout.write("\n")
    if result.outcome != "done":
        print(f"[outcome: {result.outcome}] {result.trace.detail}",
              file=sys.stderr)
        return 1
    return 0


def _cmd_outputs(args: argparse.Namespace) -> int:
    from .pseudocode import possible_outputs
    outputs = possible_outputs(Path(args.file).read_text(),
                               max_runs=args.max_runs)
    for i, output in enumerate(sorted(outputs), start=1):
        print(f"possibility {i}: {output}")
    return 0


def _cmd_check(args: argparse.Namespace) -> int:
    from .pseudocode import compile_program
    from .verify import explore
    runtime = compile_program(Path(args.file).read_text())
    info = runtime.info
    print(f"globals          : {sorted(info.globals) or '(none)'}")
    print(f"exclusion groups : "
          f"{ {k: list(v) for k, v in info.groups.items()} or '(none)'}")
    for warning in info.warnings:
        print(f"warning          : {warning}")
    reduce = () if args.reduce == "none" else args.reduce
    result = explore(runtime.make_program(), max_runs=args.max_runs,
                     reduce=reduce, workers=args.workers)
    print(f"exploration      : {result.summary()}")
    if reduce or args.workers > 1:
        print(f"reductions       : reduce={args.reduce} "
              f"workers={args.workers} "
              f"({result.decisions} decisions, "
              f"{result.pruned_runs} pruned runs)")
    status = 0
    if result.outcomes.get("deadlock"):
        print("DEADLOCK reachable; sample blocked state:")
        print("  " + result.deadlocks[0].detail)
        status = 1
    if result.outcomes.get("failed"):
        print("RUNTIME FAILURE reachable on some schedule")
        status = 1
    from .verify import find_races
    race = None
    for trace in result.witnesses.values():
        races = find_races(trace, max_races=1)
        if races:
            race = races[0]
            break
    if race is not None:
        print(f"DATA RACE        : {race.describe()}")
        status = 1
    if status == 0:
        print("no deadlocks, no failures, no races"
              + ("" if result.complete else " (within budget)"))
    return status


def _cmd_study(args: argparse.Namespace) -> int:
    from .study import run_full_study
    study = run_full_study(seed=args.seed if args.seed is not None else 2013)
    print(study.render())
    return 0


def _cmd_figures(args: argparse.Namespace) -> int:
    from .pseudocode import possible_outputs
    checks = [
        ("Figure 3a", 'PARA\nPRINT "hello "\nPRINT "world "\nENDPARA',
         {"hello world", "world hello"}),
        ("Figure 4a", 'x = 10\nDEFINE changeX(d)\n EXC_ACC\n  x = x + d\n'
         ' END_EXC_ACC\nENDDEF\nPARA\n changeX(1)\n changeX(-2)\nENDPARA\n'
         'PRINTLN x', {"9"}),
    ]
    ok = True
    for name, source, expected in checks:
        computed = possible_outputs(source, max_runs=100_000)
        match = computed == expected
        ok &= match
        print(f"{name}: {'ok' if match else f'MISMATCH {computed}'}")
    print("run `python examples/pseudocode_playground.py` for all figures")
    return 0 if ok else 1


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Programming with Concurrency — reproduction toolkit")
    sub = parser.add_subparsers(dest="command", required=True)

    p_run = sub.add_parser("run", help="execute a pseudocode file")
    p_run.add_argument("file")
    p_run.add_argument("--seed", type=int, default=None,
                       help="random schedule seed (default: fair RR)")
    p_run.set_defaults(fn=_cmd_run)

    p_out = sub.add_parser("outputs",
                           help="enumerate all output possibilities")
    p_out.add_argument("file")
    p_out.add_argument("--max-runs", type=int, default=200_000)
    p_out.set_defaults(fn=_cmd_outputs)

    p_check = sub.add_parser("check", help="analyze + explore a program")
    p_check.add_argument("file")
    p_check.add_argument("--max-runs", type=int, default=50_000)
    p_check.add_argument("--reduce", choices=("none", "sleep", "fingerprint",
                                              "all"), default="none",
                         help="exploration reductions (default: naive DFS)")
    p_check.add_argument("--workers", type=int, default=0,
                         help="parallel subtree exploration processes")
    p_check.set_defaults(fn=_cmd_check)

    p_study = sub.add_parser("study", help="run the full §V study")
    p_study.add_argument("--seed", type=int, default=None)
    p_study.set_defaults(fn=_cmd_study)

    p_fig = sub.add_parser("figures", help="verify figure examples")
    p_fig.set_defaults(fn=_cmd_figures)

    args = parser.parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
