"""Party matching — the course's other in-class lab problem.

Boys and girls arrive at a party individually and may only leave with a
partner of the opposite sex.  The synchronization shape is a symmetric
rendezvous: an arrival either pairs with a waiting opposite or waits.

Audited properties: every pair is boy+girl; nobody leaves twice; with
equal arrivals everyone leaves.
"""

from __future__ import annotations

from typing import Any, Iterator, Optional

from ..core import (Acquire, Effect, Emit, Notify, Release, Scheduler,
                    SimMonitor, Wait)

__all__ = ["party_program", "audit_pairs", "run_threads_party",
           "run_actor_party", "run_coroutine_party"]


def party_program(boys: int = 2, girls: int = 2):
    """Kernel program for the explorer.  Observation: sorted pair list."""

    def program(sched: Scheduler):
        monitor = SimMonitor("party")
        state: dict[str, Any] = {"waiting_boys": [], "waiting_girls": [],
                                 "pairs": []}

        def guest(name: str, sex: str) -> Iterator[Effect]:
            mine = "waiting_boys" if sex == "boy" else "waiting_girls"
            theirs = "waiting_girls" if sex == "boy" else "waiting_boys"
            yield Acquire(monitor)
            if state[theirs]:
                partner = state[theirs].pop(0)
                pair = tuple(sorted((name, partner)))
                state["pairs"].append(pair)
                yield Emit(("paired", pair))
                yield Notify(monitor, all=True)
            else:
                state[mine].append(name)
                while not any(name in p for p in state["pairs"]):
                    yield Wait(monitor)
            yield Release(monitor)

        for b in range(boys):
            sched.spawn(guest, f"boy-{b}", "boy", name=f"boy-{b}")
        for g in range(girls):
            sched.spawn(guest, f"girl-{g}", "girl", name=f"girl-{g}")
        return lambda: tuple(sorted(state["pairs"]))

    return program


def audit_pairs(pairs: list[tuple], boys: int, girls: int) -> Optional[str]:
    """Every pair must be one boy + one girl; no guest appears twice."""
    seen: set[str] = set()
    for pair in pairs:
        kinds = sorted(name.split("-")[0] for name in pair)
        if kinds != ["boy", "girl"]:
            return f"invalid pair {pair!r}"
        for name in pair:
            if name in seen:
                return f"{name} left twice"
            seen.add(name)
    expected = min(boys, girls)
    if len(pairs) != expected:
        return f"{len(pairs)} pairs formed, expected {expected}"
    return None


def run_threads_party(boys: int = 10, girls: int = 10) -> list[tuple]:
    """Monitor-based matcher on real threads."""
    from ..threads import JThread, Monitor

    monitor = Monitor("party")
    waiting: dict[str, list[str]] = {"boy": [], "girl": []}
    pairs: list[tuple] = []
    matched: set[str] = set()

    def guest(name: str, sex: str) -> None:
        other = "girl" if sex == "boy" else "boy"
        with monitor:
            if waiting[other]:
                partner = waiting[other].pop(0)
                pairs.append(tuple(sorted((name, partner))))
                matched.add(name)
                matched.add(partner)
                monitor.notify_all()
            else:
                waiting[sex].append(name)
                monitor.wait_until(lambda: name in matched)

    threads = ([JThread(target=guest, args=(f"boy-{b}", "boy"),
                        name=f"boy-{b}") for b in range(boys)]
               + [JThread(target=guest, args=(f"girl-{g}", "girl"),
                          name=f"girl-{g}") for g in range(girls)])
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=30)
    problem = audit_pairs(pairs, boys, girls)
    if problem:
        raise AssertionError(problem)
    return pairs


def run_actor_party(boys: int = 10, girls: int = 10) -> list[tuple]:
    """Matchmaker actor pairs arrivals — the message-passing solution
    replaces the shared wait-lists with actor-private ones."""
    import threading
    from ..actors import Actor, ActorSystem

    pairs: list[tuple] = []
    done = threading.Event()
    expected = min(boys, girls)

    class Matchmaker(Actor):
        def __init__(self) -> None:
            super().__init__()
            self.waiting: dict[str, list[str]] = {"boy": [], "girl": []}

        def receive(self, message: Any, sender: Any) -> None:
            sex, name = message
            other = "girl" if sex == "boy" else "boy"
            if self.waiting[other]:
                partner = self.waiting[other].pop(0)
                pairs.append(tuple(sorted((name, partner))))
                if len(pairs) >= expected:
                    done.set()
            else:
                self.waiting[sex].append(name)

    with ActorSystem(workers=2) as system:
        matchmaker = system.spawn(Matchmaker, name="matchmaker")
        for b in range(boys):
            matchmaker.tell(("boy", f"boy-{b}"))
        for g in range(girls):
            matchmaker.tell(("girl", f"girl-{g}"))
        done.wait(timeout=30)

    problem = audit_pairs(pairs, boys, girls)
    if problem:
        raise AssertionError(problem)
    return pairs


def run_coroutine_party(boys: int = 10, girls: int = 10) -> list[tuple]:
    """Cooperative matcher: arrivals inspect the wait lists atomically."""
    from ..coroutines import CoScheduler, pause

    waiting: dict[str, list[str]] = {"boy": [], "girl": []}
    pairs: list[tuple] = []
    matched: set[str] = set()

    def guest(name: str, sex: str):
        other = "girl" if sex == "boy" else "boy"
        if waiting[other]:
            partner = waiting[other].pop(0)
            pairs.append(tuple(sorted((name, partner))))
            matched.add(name)
            matched.add(partner)
        else:
            waiting[sex].append(name)
            while name not in matched:
                yield pause()

    sched = CoScheduler()
    for b in range(boys):
        sched.spawn(guest, f"boy-{b}", "boy", name=f"boy-{b}")
    for g in range(girls):
        sched.spawn(guest, f"girl-{g}", "girl", name=f"girl-{g}")
    sched.run()
    problem = audit_pairs(pairs, boys, girls)
    if problem:
        raise AssertionError(problem)
    return pairs
