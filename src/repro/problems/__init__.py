"""repro.problems — the course's classical concurrency problems.

Each module implements one problem in every applicable form: a kernel
program (or exact LTS) for exploration/model checking, plus runnable
threads / actors / coroutines implementations with invariant audits.

============================  ==========================================
single_lane_bridge            Test-1 problem; SM + MP LTS models with
                              misconception flags, 3 runnable forms
sleeping_barber               in-class lab; kernel + 3 forms
party_matching                in-class lab; kernel + 3 forms
bounded_buffer                homeworks 2-3; kernel + 3 forms
dining_philosophers           week-1 demo; deadlock/ordered/waiter
readers_writers               fairness case study; priority knob
sum_workers                   first quiz; lost-update race demo
book_inventory                semester lab; SM class + MP actor
thread_pool_arith             week-1 lab; pool-size timing sweep
============================  ==========================================
"""

from . import (book_inventory, bounded_buffer, dining_philosophers,
               party_matching, readers_writers, single_lane_bridge,
               sleeping_barber, sum_workers, thread_pool_arith)

__all__ = [
    "single_lane_bridge", "sleeping_barber", "party_matching",
    "bounded_buffer", "dining_philosophers", "readers_writers",
    "sum_workers", "book_inventory", "thread_pool_arith",
]
