"""repro.problems — the course's classical concurrency problems.

Each module implements one problem in every applicable form: a kernel
program (or exact LTS) for exploration/model checking, plus runnable
threads / actors / coroutines implementations with invariant audits.

============================  ==========================================
single_lane_bridge            Test-1 problem; SM + MP LTS models with
                              misconception flags, 3 runnable forms
sleeping_barber               in-class lab; kernel + 3 forms
party_matching                in-class lab; kernel + 3 forms
bounded_buffer                homeworks 2-3; kernel + 3 forms
dining_philosophers           week-1 demo; deadlock/ordered/waiter
readers_writers               fairness case study; priority knob
sum_workers                   first quiz; lost-update race demo
book_inventory                semester lab; SM class + MP actor
thread_pool_arith             week-1 lab; pool-size timing sweep
pingpong                      message-passing smoke test (flow arrows)
============================  ==========================================

:func:`kernel_program` maps a problem name to its kernel program
factory, so tools (the CLI's ``trace``/``stats``/``check`` subcommands,
benchmarks, notebooks) can address problems by string.
"""

from typing import Callable

from . import (book_inventory, bounded_buffer, dining_philosophers,
               party_matching, pingpong, readers_writers,
               single_lane_bridge, sleeping_barber, sum_workers,
               thread_pool_arith)

__all__ = [
    "single_lane_bridge", "sleeping_barber", "party_matching",
    "bounded_buffer", "dining_philosophers", "readers_writers",
    "sum_workers", "book_inventory", "thread_pool_arith", "pingpong",
    "kernel_program", "kernel_program_names",
]


def _bridge_2car(**kwargs):
    """Two opposing cars, one crossing each — the reduction benchmark."""
    return single_lane_bridge.bridge_program(
        cars=(("redCarA", "red"), ("blueCarA", "blue")), **kwargs)


def _bridge_bug(**kwargs):
    """The barging bridge: if-guarded wait, two opposing cars, two
    crossings each — the smallest configuration where a stale wakeup
    trips the collision sensor."""
    kwargs.setdefault("cars", (("redCarA", "red"), ("blueCarA", "blue")))
    kwargs.setdefault("crossings", 2)
    kwargs.setdefault("guard", "if")
    return single_lane_bridge.bridge_program(**kwargs)


#: problem name → kernel-program factory (call it, optionally with the
#: factory's own keyword arguments, to get a ``program(sched)`` callable)
_KERNEL_PROGRAMS: dict[str, Callable] = {
    "bounded_buffer": bounded_buffer.buffer_program,
    "bridge": single_lane_bridge.bridge_program,
    "single_lane_bridge": single_lane_bridge.bridge_program,
    "bridge_2car": _bridge_2car,
    "bridge_bug": _bridge_bug,
    "dining_philosophers": dining_philosophers.philosophers_program,
    "party_matching": party_matching.party_program,
    "pingpong": pingpong.pingpong_program,
    "readers_writers": readers_writers.rw_program,
    "sleeping_barber": sleeping_barber.barber_program,
    "sum_workers": sum_workers.sum_program,
}


def kernel_program_names() -> list[str]:
    """Names accepted by :func:`kernel_program`, sorted.

    Includes a ``bug:<id>`` entry per bug-gallery specimen (the buggy
    variant), so CLI tools can trace/monitor/explain gallery bugs by
    name."""
    from .bug_gallery import BUG_IDS
    return sorted(_KERNEL_PROGRAMS) + [f"bug:{b}" for b in BUG_IDS]


def kernel_program(name: str, **kwargs) -> Callable:
    """Build the kernel program for ``name`` (see module table).

    Keyword arguments pass through to the problem's factory (sizes,
    policies...).  ``bug:<id>`` names resolve to the gallery bug's
    buggy program (no keyword arguments accepted).  Raises ``KeyError``
    with the known names on a miss.
    """
    if name.startswith("bug:"):
        from .bug_gallery import gallery
        for spec in gallery():
            if spec.bug_id == name[4:]:
                if kwargs:
                    raise TypeError(
                        f"{name!r} takes no keyword arguments")
                return spec.buggy
        raise KeyError(
            f"unknown kernel program {name!r}; known: "
            + ", ".join(kernel_program_names())) from None
    try:
        factory = _KERNEL_PROGRAMS[name]
    except KeyError:
        raise KeyError(
            f"unknown kernel program {name!r}; known: "
            + ", ".join(kernel_program_names())) from None
    return factory(**kwargs)
