"""Bounded buffer (producer/consumer) — homework 2's shared-memory
problem and homework 3's message-passing problem, in all three models
plus a kernel program for exhaustive exploration.

The invariant all variants are audited against: every produced item is
consumed exactly once, in FIFO order per producer, and the buffer never
exceeds its capacity.
"""

from __future__ import annotations

from typing import Any, Iterator, Optional

from ..core import (Acquire, Effect, Emit, Notify, Release, Scheduler,
                    SimMonitor, Wait)

__all__ = ["PSEUDOCODE", "buffer_program", "audit_consumption",
           "audit_fifo_single",
           "run_threads_buffer", "run_actor_buffer", "run_coroutine_buffer"]

#: the pseudocode students write for homework 2 (shared-memory form)
PSEUDOCODE = '''\
count = 0
in_slot = 0
out_slot = 0
produced = 0
consumed = 0

DEFINE produce()
  EXC_ACC
    WHILE count >= 2
      WAIT()
    ENDWHILE
    count = count + 1
    produced = produced + 1
    NOTIFY()
  END_EXC_ACC
ENDDEF

DEFINE consume()
  EXC_ACC
    WHILE count <= 0
      WAIT()
    ENDWHILE
    count = count - 1
    consumed = consumed + 1
    NOTIFY()
  END_EXC_ACC
ENDDEF

PARA
  produce()
  produce()
  consume()
  consume()
ENDPARA
PRINT count
'''


def buffer_program(capacity: int = 2, producers: int = 2, consumers: int = 2,
                   items_each: int = 2):
    """Kernel program (for :func:`repro.verify.explore`): monitor-guarded
    ring buffer with multiple producers and consumers.

    Observation: (consumed-items-in-order, leftover-count).
    """

    def program(sched: Scheduler):
        monitor = SimMonitor("buffer")
        state: dict[str, Any] = {"items": [], "consumed": []}

        def producer(pid: int) -> Iterator[Effect]:
            for k in range(items_each):
                yield Acquire(monitor)
                while len(state["items"]) >= capacity:
                    yield Wait(monitor)
                state["items"].append((pid, k))
                yield Emit(("put", pid, k))
                yield Notify(monitor, all=True)
                yield Release(monitor)

        def consumer(cid: int) -> Iterator[Effect]:
            quota = (producers * items_each) // consumers
            for _ in range(quota):
                yield Acquire(monitor)
                while not state["items"]:
                    yield Wait(monitor)
                item = state["items"].pop(0)
                state["consumed"].append(item)
                yield Emit(("got", cid, item))
                yield Notify(monitor, all=True)
                yield Release(monitor)

        for p in range(producers):
            sched.spawn(producer, p, name=f"producer-{p}")
        for c in range(consumers):
            sched.spawn(consumer, c, name=f"consumer-{c}")
        # expose the buffer contents to scheduler fingerprints so the
        # explorer's state-deduplication reduction stays sound here
        sched.fingerprint_extra = lambda: (
            tuple(state["items"]), tuple(state["consumed"]))
        return lambda: (tuple(state["consumed"]), len(state["items"]))

    return program


def audit_consumption(consumed: list[tuple], producers: int,
                      items_each: int) -> Optional[str]:
    """Exactly-once delivery: the consumed multiset equals the produced set.

    Global per-producer *order* is only guaranteed with a single
    consumer (a consumer may be descheduled between taking an item and
    recording it), so order is deliberately not part of this audit —
    :func:`audit_fifo_single` checks it for the 1-consumer case.
    """
    expected = {(p, k) for p in range(producers) for k in range(items_each)}
    got = list(consumed)
    if len(got) != len(set(got)):
        dupes = sorted({x for x in got if got.count(x) > 1})
        return f"duplicated items: {dupes[:5]}"
    missing = expected - set(got)
    extra = set(got) - expected
    if missing or extra:
        return f"missing={sorted(missing)[:5]} extra={sorted(extra)[:5]}"
    return None


def audit_fifo_single(consumed: list[tuple], producers: int) -> Optional[str]:
    """Per-producer order — valid only for single-consumer runs."""
    last_seen = {p: -1 for p in range(producers)}
    for pid, k in consumed:
        if k <= last_seen[pid]:
            return f"producer {pid}: item {k} after {last_seen[pid]}"
        last_seen[pid] = k
    return None


# ---------------------------------------------------------------------------
# the three course models
# ---------------------------------------------------------------------------

def run_threads_buffer(capacity: int = 4, producers: int = 2,
                       consumers: int = 2, items_each: int = 50,
                       profiler=None) -> list[tuple]:
    """Monitor-based bounded buffer on real threads; returns consumed."""
    from ..threads import JThread, Monitor

    monitor = Monitor("buffer", profiler=profiler)
    items: list[tuple] = []
    consumed: list[tuple] = []
    total = producers * items_each

    def producer(pid: int) -> None:
        for k in range(items_each):
            with monitor:
                monitor.wait_until(lambda: len(items) < capacity)
                items.append((pid, k))
                monitor.notify_all()

    def consumer() -> None:
        while True:
            with monitor:
                monitor.wait_until(
                    lambda: items or len(consumed) >= total)
                if not items and len(consumed) >= total:
                    return
                if not items:
                    continue
                consumed.append(items.pop(0))
                monitor.notify_all()

    threads = ([JThread(target=producer, args=(p,), name=f"prod-{p}",
                        profiler=profiler)
                for p in range(producers)]
               + [JThread(target=consumer, name=f"cons-{c}",
                          profiler=profiler)
                  for c in range(consumers)])
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=30)
    problem = audit_consumption(consumed, producers, items_each)
    if problem:
        raise AssertionError(problem)
    return consumed


def run_actor_buffer(capacity: int = 4, producers: int = 2,
                     consumers: int = 2, items_each: int = 50,
                     profiler=None) -> list[tuple]:
    """Buffer actor mediating producers and consumers by messages.

    The buffer defers Get requests while empty and Put requests while
    full — the message-passing translation of conditional waiting that
    homework 3 asks for.
    """
    from ..actors import Actor, ActorSystem

    consumed: list[tuple] = []
    import threading
    done = threading.Event()
    total = producers * items_each

    class Buffer(Actor):
        def __init__(self) -> None:
            super().__init__()
            self.items: list[tuple] = []
            self.waiting_get: list[Any] = []
            self.waiting_put: list[tuple] = []

        def receive(self, message: Any, sender: Any) -> None:
            kind = message[0]
            if kind == "put":
                item = message[1]
                if len(self.items) < capacity:
                    self.items.append(item)
                    sender.tell(("ok",), sender=self.self_ref)
                    self._serve_getters()
                else:
                    self.waiting_put.append((item, sender))
            elif kind == "get":
                if self.items:
                    sender.tell(("item", self.items.pop(0)),
                                sender=self.self_ref)
                    self._serve_putters()
                else:
                    self.waiting_get.append(sender)

        def _serve_getters(self) -> None:
            while self.items and self.waiting_get:
                self.waiting_get.pop(0).tell(
                    ("item", self.items.pop(0)), sender=self.self_ref)

        def _serve_putters(self) -> None:
            while self.waiting_put and len(self.items) < capacity:
                item, sender = self.waiting_put.pop(0)
                self.items.append(item)
                sender.tell(("ok",), sender=self.self_ref)
                self._serve_getters()

    class Producer(Actor):
        def __init__(self, pid: int, buffer: Any) -> None:
            super().__init__()
            self.pid = pid
            self.buffer = buffer
            self.next_k = 0

        def pre_start(self) -> None:
            self._put()

        def _put(self) -> None:
            self.buffer.tell(("put", (self.pid, self.next_k)),
                             sender=self.self_ref)
            self.next_k += 1

        def receive(self, message: Any, sender: Any) -> None:
            if message[0] == "ok" and self.next_k < items_each:
                self._put()

    class Consumer(Actor):
        def __init__(self, buffer: Any) -> None:
            super().__init__()
            self.buffer = buffer

        def pre_start(self) -> None:
            self.buffer.tell(("get",), sender=self.self_ref)

        def receive(self, message: Any, sender: Any) -> None:
            if message[0] == "item":
                consumed.append(message[1])
                if len(consumed) >= total:
                    done.set()
                else:
                    self.buffer.tell(("get",), sender=self.self_ref)

    with ActorSystem(workers=4, profiler=profiler) as system:
        buffer = system.spawn(Buffer, name="buffer")
        for p in range(producers):
            system.spawn(Producer, p, buffer, name=f"prod-{p}")
        for c in range(consumers):
            system.spawn(Consumer, buffer, name=f"cons-{c}")
        done.wait(timeout=30)

    problem = audit_consumption(consumed, producers, items_each)
    if problem:
        raise AssertionError(problem)
    return consumed


def run_coroutine_buffer(capacity: int = 4, producers: int = 2,
                         consumers: int = 2, items_each: int = 50,
                         profiler=None) -> list[tuple]:
    """Cooperative bounded buffer over CoChannel."""
    from ..coroutines import CoChannel, CoScheduler

    chan = CoChannel(capacity=capacity)
    consumed: list[tuple] = []

    def producer(pid: int):
        for k in range(items_each):
            yield from chan.put((pid, k))

    def consumer(quota: int):
        for _ in range(quota):
            consumed.append((yield from chan.get()))

    sched = CoScheduler(profiler=profiler)
    for p in range(producers):
        sched.spawn(producer, p, name=f"prod-{p}")
    quota = (producers * items_each) // consumers
    for c in range(consumers):
        sched.spawn(consumer, quota, name=f"cons-{c}")
    sched.run()
    problem = audit_consumption(consumed, producers, items_each)
    if problem:
        raise AssertionError(problem)
    return consumed
