"""Readers-writers — the course's fairness case study.

Readers may share the resource; writers need it exclusively.  The
classic design decision is who gets priority, and the kernel program
exposes it as a knob so the fairness benchmarks can show writer
starvation under ``"readers"`` priority and its absence under
``"writers"`` / ``"fair"``.
"""

from __future__ import annotations

from typing import Any, Iterator

from ..core import (Acquire, Effect, Emit, Notify, Release, Scheduler,
                    SimMonitor, Wait)

__all__ = ["rw_program", "rw_invariant", "ReadWriteLock",
           "run_threads_rw", "run_actor_rw", "run_coroutine_rw"]


def rw_program(readers: int = 2, writers: int = 1, rounds: int = 1,
               priority: str = "readers"):
    """Kernel readers-writers with a priority policy.

    ``priority``: ``"readers"`` (readers barge while any reader active),
    ``"writers"`` (readers defer to waiting writers), ``"fair"``
    (alternating preference via a simple turn counter).

    Observation: (max concurrent readers seen, writer overlaps seen).
    """
    if priority not in ("readers", "writers", "fair"):
        raise ValueError(f"unknown priority {priority!r}")

    def program(sched: Scheduler):
        monitor = SimMonitor("rw")
        state = {"readers": 0, "writer": False, "waiting_writers": 0,
                 "max_readers": 0, "overlap": 0, "turn": 0}

        def reader(i: int) -> Iterator[Effect]:
            for _ in range(rounds):
                yield Acquire(monitor)
                while state["writer"] or (
                        priority in ("writers", "fair")
                        and state["waiting_writers"] > 0):
                    yield Wait(monitor)
                state["readers"] += 1
                state["max_readers"] = max(state["max_readers"],
                                           state["readers"])
                yield Release(monitor)

                yield Emit(("read", i))

                yield Acquire(monitor)
                state["readers"] -= 1
                if state["readers"] == 0:
                    yield Notify(monitor, all=True)
                yield Release(monitor)

        def writer(i: int) -> Iterator[Effect]:
            for _ in range(rounds):
                yield Acquire(monitor)
                state["waiting_writers"] += 1
                while state["writer"] or state["readers"] > 0:
                    yield Wait(monitor)
                state["waiting_writers"] -= 1
                if state["writer"] or state["readers"] > 0:
                    state["overlap"] += 1
                state["writer"] = True
                yield Release(monitor)

                yield Emit(("write", i))

                yield Acquire(monitor)
                state["writer"] = False
                yield Notify(monitor, all=True)
                yield Release(monitor)

        for i in range(readers):
            sched.spawn(reader, i, name=f"reader-{i}")
        for i in range(writers):
            sched.spawn(writer, i, name=f"writer-{i}")
        return lambda: (state["max_readers"], state["overlap"])

    return program


def rw_invariant(obs: tuple) -> bool:
    """No writer ever overlapped a reader or another writer."""
    _, overlap = obs
    return overlap == 0


class ReadWriteLock:
    """Real-thread readers-writer lock with writer priority.

    The shape Java students build from ``synchronized``/``wait`` in the
    lab: a monitor guarding reader/writer counters.
    """

    def __init__(self, profiler: Any = None) -> None:
        from ..threads import Monitor
        self._monitor = Monitor("rwlock", profiler=profiler)
        self._readers = 0
        self._writer = False
        self._waiting_writers = 0

    # -- reader side -----------------------------------------------------
    def acquire_read(self) -> None:
        with self._monitor:
            self._monitor.wait_until(
                lambda: not self._writer and self._waiting_writers == 0)
            self._readers += 1

    def release_read(self) -> None:
        with self._monitor:
            self._readers -= 1
            if self._readers == 0:
                self._monitor.notify_all()

    # -- writer side -----------------------------------------------------
    def acquire_write(self) -> None:
        with self._monitor:
            self._waiting_writers += 1
            try:
                self._monitor.wait_until(
                    lambda: not self._writer and self._readers == 0)
            finally:
                self._waiting_writers -= 1
            self._writer = True

    def release_write(self) -> None:
        with self._monitor:
            self._writer = False
            self._monitor.notify_all()

    # -- context-manager views ---------------------------------------------
    class _Guard:
        def __init__(self, enter, exit_):
            self._enter, self._exit = enter, exit_

        def __enter__(self):
            self._enter()
            return self

        def __exit__(self, *exc):
            self._exit()

    def read(self) -> "_Guard":
        return self._Guard(self.acquire_read, self.release_read)

    def write(self) -> "_Guard":
        return self._Guard(self.acquire_write, self.release_write)


def run_threads_rw(readers: int = 4, writers: int = 2, rounds: int = 50,
                   profiler=None) -> dict[str, Any]:
    """Hammer a shared value through ReadWriteLock; audit consistency.

    Writers write (round, writer_id) pairs atomically into two cells;
    readers must always observe matching cells.
    """
    from ..threads import JThread

    lock = ReadWriteLock(profiler=profiler)
    cell = {"a": (0, -1), "b": (0, -1)}
    torn_reads = [0]
    reads_done = [0]

    def writer(w: int) -> None:
        for r in range(rounds):
            with lock.write():
                cell["a"] = (r, w)
                cell["b"] = (r, w)

    def reader() -> None:
        for _ in range(rounds):
            with lock.read():
                if cell["a"] != cell["b"]:
                    torn_reads[0] += 1
                reads_done[0] += 1

    threads = ([JThread(target=writer, args=(w,), name=f"w{w}",
                        profiler=profiler)
                for w in range(writers)]
               + [JThread(target=reader, name=f"r{i}", profiler=profiler)
                  for i in range(readers)])
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=30)
    return {"torn_reads": torn_reads[0], "reads": readers * rounds,
            "final": dict(cell)}


def run_actor_rw(readers: int = 4, writers: int = 2, rounds: int = 20,
                 profiler=None) -> dict[str, Any]:
    """Message-passing readers-writers: one Cell actor owns the data.

    The actor model's answer to the fairness case study — serialization
    through the cell's mailbox makes torn reads structurally impossible,
    so the audit's interesting output here is the message traffic, not
    the (always-zero) torn count.
    """
    import threading

    from ..actors import Actor, ActorSystem

    totals = {"reads": 0, "torn": 0}
    done = threading.Event()
    expected = readers * rounds + writers * rounds

    class Cell(Actor):
        def __init__(self) -> None:
            super().__init__()
            self.a = (0, -1)
            self.b = (0, -1)
            self.handled = 0

        def receive(self, message: Any, sender: Any) -> None:
            kind = message[0]
            if kind == "write":
                _, r, w = message
                self.a = (r, w)
                self.b = (r, w)
            else:
                if self.a != self.b:
                    totals["torn"] += 1
                totals["reads"] += 1
            self.handled += 1
            if self.handled >= expected:
                done.set()

    class Reader(Actor):
        def __init__(self, cell: Any) -> None:
            super().__init__()
            self.cell = cell

        def pre_start(self) -> None:
            for _ in range(rounds):
                self.cell.tell(("read",), sender=self.self_ref)

        def receive(self, message: Any, sender: Any) -> None:
            pass

    class Writer(Actor):
        def __init__(self, w: int, cell: Any) -> None:
            super().__init__()
            self.w = w
            self.cell = cell

        def pre_start(self) -> None:
            for r in range(rounds):
                self.cell.tell(("write", r, self.w), sender=self.self_ref)

        def receive(self, message: Any, sender: Any) -> None:
            pass

    with ActorSystem(workers=4, profiler=profiler) as system:
        cell = system.spawn(Cell, name="cell")
        for w in range(writers):
            system.spawn(Writer, w, cell, name=f"w{w}")
        for i in range(readers):
            system.spawn(Reader, cell, name=f"r{i}")
        done.wait(timeout=30)

    return {"torn_reads": totals["torn"], "reads": totals["reads"]}


def run_coroutine_rw(readers: int = 4, writers: int = 2, rounds: int = 20,
                     profiler=None) -> dict[str, Any]:
    """Cooperative readers-writers: atomicity between yields makes the
    lock almost trivial — the point of contrast with threads."""
    from ..coroutines import CoScheduler, pause

    state = {"readers": 0, "writer": False}
    cell = {"a": (0, -1), "b": (0, -1)}
    torn = [0]

    def writer(w: int):
        for r in range(rounds):
            while state["writer"] or state["readers"]:
                yield pause()
            state["writer"] = True
            cell["a"] = (r, w)
            yield pause()          # deliberately split the write
            cell["b"] = (r, w)
            state["writer"] = False
            yield pause()

    def reader():
        for _ in range(rounds):
            while state["writer"]:
                yield pause()
            state["readers"] += 1
            if cell["a"] != cell["b"]:
                torn[0] += 1
            state["readers"] -= 1
            yield pause()

    sched = CoScheduler(profiler=profiler)
    for w in range(writers):
        sched.spawn(writer, w, name=f"w{w}")
    for i in range(readers):
        sched.spawn(reader, name=f"r{i}")
    sched.run()
    return {"torn_reads": torn[0], "reads": readers * rounds}
