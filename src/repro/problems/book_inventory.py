"""Book inventory system — the semester-long lab (UML-modelled in week
3, implemented in shared-memory and message-passing forms at the end).

Operations: ``add_stock``, ``place_order`` (reserves copies or rejects),
``ship_order`` (consumes reserved copies), ``cancel_order`` (returns
them), ``query``.  The invariants every implementation is audited
against:

* ``stock >= 0`` and ``reserved >= 0`` for every title, always;
* copies are conserved: added == on-shelf + reserved + shipped;
* an order is shipped or cancelled at most once.
"""

from __future__ import annotations

import itertools
import threading
from dataclasses import dataclass, field
from typing import Any, Optional

__all__ = ["InventoryError", "Order", "SharedMemoryInventory",
           "spawn_inventory_actor", "inventory_invariants",
           "run_concurrent_inventory_demo"]


class InventoryError(Exception):
    """Business-rule violation (unknown title, over-order, double ship)."""


@dataclass(frozen=True)
class Order:
    order_id: int
    title: str
    copies: int


@dataclass
class _Title:
    stock: int = 0       # copies on the shelf
    reserved: int = 0    # copies held by open orders
    shipped: int = 0     # copies that left the store
    added: int = 0       # total copies ever added


class SharedMemoryInventory:
    """Monitor-protected inventory — the shared-memory lab solution.

    Every public operation is a critical section over one monitor;
    ``place_order`` demonstrates check-then-act done right (the check
    and the reservation are one atomic unit).
    """

    def __init__(self) -> None:
        from ..threads import Monitor
        self._monitor = Monitor("inventory")
        self._titles: dict[str, _Title] = {}
        self._orders: dict[int, Order] = {}
        self._closed_orders: set[int] = set()
        self._order_ids = itertools.count(1)

    # ------------------------------------------------------------------
    def add_stock(self, title: str, copies: int) -> None:
        if copies <= 0:
            raise InventoryError("copies must be positive")
        with self._monitor:
            entry = self._titles.setdefault(title, _Title())
            entry.stock += copies
            entry.added += copies
            self._monitor.notify_all()

    def place_order(self, title: str, copies: int,
                    wait: bool = False, timeout: Optional[float] = None
                    ) -> Order:
        """Reserve copies; with ``wait`` blocks until stock suffices."""
        if copies <= 0:
            raise InventoryError("copies must be positive")
        with self._monitor:
            entry = self._titles.get(title)
            if entry is None:
                raise InventoryError(f"unknown title {title!r}")
            if wait:
                ok = self._monitor.wait_until(
                    lambda: entry.stock >= copies, timeout)
                if not ok:
                    raise InventoryError("timed out waiting for stock")
            if entry.stock < copies:
                raise InventoryError(
                    f"only {entry.stock} of {title!r} available")
            entry.stock -= copies
            entry.reserved += copies
            order = Order(next(self._order_ids), title, copies)
            self._orders[order.order_id] = order
            return order

    def ship_order(self, order_id: int) -> Order:
        with self._monitor:
            order = self._open_order(order_id)
            entry = self._titles[order.title]
            entry.reserved -= order.copies
            entry.shipped += order.copies
            self._closed_orders.add(order_id)
            return order

    def cancel_order(self, order_id: int) -> Order:
        with self._monitor:
            order = self._open_order(order_id)
            entry = self._titles[order.title]
            entry.reserved -= order.copies
            entry.stock += order.copies
            self._closed_orders.add(order_id)
            self._monitor.notify_all()
            return order

    def _open_order(self, order_id: int) -> Order:
        order = self._orders.get(order_id)
        if order is None:
            raise InventoryError(f"unknown order {order_id}")
        if order_id in self._closed_orders:
            raise InventoryError(f"order {order_id} already closed")
        return order

    def query(self, title: str) -> dict[str, int]:
        with self._monitor:
            entry = self._titles.get(title)
            if entry is None:
                raise InventoryError(f"unknown title {title!r}")
            return {"stock": entry.stock, "reserved": entry.reserved,
                    "shipped": entry.shipped, "added": entry.added}

    def snapshot(self) -> dict[str, dict[str, int]]:
        with self._monitor:
            return {t: {"stock": e.stock, "reserved": e.reserved,
                        "shipped": e.shipped, "added": e.added}
                    for t, e in self._titles.items()}


def inventory_invariants(snapshot: dict[str, dict[str, int]]
                         ) -> Optional[str]:
    """None if conservation and non-negativity hold for every title."""
    for title, e in snapshot.items():
        if e["stock"] < 0 or e["reserved"] < 0:
            return f"{title}: negative stock/reserved {e}"
        if e["added"] != e["stock"] + e["reserved"] + e["shipped"]:
            return f"{title}: copies not conserved {e}"
    return None


# ---------------------------------------------------------------------------
# message-passing form
# ---------------------------------------------------------------------------

def spawn_inventory_actor(system: Any, name: str = "inventory") -> Any:
    """Spawn the message-passing inventory on an ActorSystem.

    Protocol (all requests carry a reply-to sender):

    ``("add", title, copies)``            → ``("ok",)``
    ``("order", title, copies)``          → ``("order", Order)`` or
                                            ``("rejected", reason)``
    ``("ship"|"cancel", order_id)``       → ``("ok",)`` / ``("rejected", r)``
    ``("query", title)``                  → ``("stats", dict)``
    ``("snapshot",)``                     → ``("snapshot", dict)``

    State is actor-private — the message-passing answer to the lab's
    race conditions is that there is nothing shared to race on.
    """
    from ..actors import Actor

    class InventoryActor(Actor):
        def __init__(self) -> None:
            super().__init__()
            self.titles: dict[str, _Title] = {}
            self.orders: dict[int, Order] = {}
            self.closed: set[int] = set()
            self.ids = itertools.count(1)
            self.backorders: list[tuple[str, int, Any]] = []

        def receive(self, message: Any, sender: Any) -> None:
            kind = message[0]
            if kind == "add":
                _, title, copies = message
                entry = self.titles.setdefault(title, _Title())
                entry.stock += copies
                entry.added += copies
                if sender:
                    sender.tell(("ok",), sender=self.self_ref)
                self._retry_backorders()
            elif kind == "order":
                _, title, copies = message
                self._try_order(title, copies, sender, queue=True)
            elif kind == "ship" or kind == "cancel":
                self._close(kind, message[1], sender)
            elif kind == "query":
                entry = self.titles.get(message[1])
                stats = ({} if entry is None else
                         {"stock": entry.stock, "reserved": entry.reserved,
                          "shipped": entry.shipped, "added": entry.added})
                sender.tell(("stats", stats), sender=self.self_ref)
            elif kind == "snapshot":
                snap = {t: {"stock": e.stock, "reserved": e.reserved,
                            "shipped": e.shipped, "added": e.added}
                        for t, e in self.titles.items()}
                sender.tell(("snapshot", snap), sender=self.self_ref)

        def _try_order(self, title: str, copies: int, sender: Any,
                       queue: bool) -> None:
            entry = self.titles.get(title)
            if entry is None or copies <= 0:
                sender.tell(("rejected", "unknown title or bad count"),
                            sender=self.self_ref)
                return
            if entry.stock < copies:
                if queue:
                    self.backorders.append((title, copies, sender))
                else:
                    sender.tell(("rejected", "insufficient stock"),
                                sender=self.self_ref)
                return
            entry.stock -= copies
            entry.reserved += copies
            order = Order(next(self.ids), title, copies)
            self.orders[order.order_id] = order
            sender.tell(("order", order), sender=self.self_ref)

        def _retry_backorders(self) -> None:
            pending, self.backorders = self.backorders, []
            for title, copies, sender in pending:
                self._try_order(title, copies, sender, queue=True)

        def _close(self, kind: str, order_id: int, sender: Any) -> None:
            order = self.orders.get(order_id)
            if order is None or order_id in self.closed:
                sender.tell(("rejected", "unknown or closed order"),
                            sender=self.self_ref)
                return
            entry = self.titles[order.title]
            entry.reserved -= order.copies
            if kind == "ship":
                entry.shipped += order.copies
            else:
                entry.stock += order.copies
                self._retry_backorders()
            self.closed.add(order_id)
            sender.tell(("ok",), sender=self.self_ref)

    return system.spawn(InventoryActor, name=name)


def run_concurrent_inventory_demo(clerks: int = 4, ops_each: int = 50,
                                  seed: int = 7) -> dict[str, Any]:
    """Hammer the shared-memory inventory from many threads; audit.

    Returns the final snapshot plus operation counts — used by tests
    and the quickstart example.
    """
    import random

    from ..threads import JThread

    inventory = SharedMemoryInventory()
    titles = ["tcp-ip", "sicp", "dragon-book"]
    for t in titles:
        inventory.add_stock(t, 100)
    counts = {"ordered": 0, "shipped": 0, "cancelled": 0, "rejected": 0}
    counts_lock = threading.Lock()

    def clerk(cid: int) -> None:
        rng = random.Random(seed + cid)
        my_orders: list[int] = []
        for _ in range(ops_each):
            op = rng.random()
            title = rng.choice(titles)
            try:
                if op < 0.4:
                    order = inventory.place_order(title, rng.randint(1, 3))
                    my_orders.append(order.order_id)
                    with counts_lock:
                        counts["ordered"] += 1
                elif op < 0.6 and my_orders:
                    inventory.ship_order(my_orders.pop())
                    with counts_lock:
                        counts["shipped"] += 1
                elif op < 0.8 and my_orders:
                    inventory.cancel_order(my_orders.pop())
                    with counts_lock:
                        counts["cancelled"] += 1
                else:
                    inventory.add_stock(title, rng.randint(1, 2))
            except InventoryError:
                with counts_lock:
                    counts["rejected"] += 1

    threads = [JThread(target=clerk, args=(c,), name=f"clerk-{c}")
               for c in range(clerks)]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=30)
    snapshot = inventory.snapshot()
    problem = inventory_invariants(snapshot)
    if problem:
        raise AssertionError(problem)
    return {"snapshot": snapshot, "counts": counts}
