"""Thread-pool arithmetic — the week-1 lab program students run while
observing CPU/RAM utilization.

A pool of workers evaluates arithmetic tasks (iterative computations
chosen to be CPU-bound in pure Python); the lab report compares elapsed
time and per-worker utilization across pool sizes.  Under CPython's GIL
the utilization numbers demonstrate *why* thread pools don't speed up
pure-Python arithmetic — which is itself one of the course's talking
points and flagged in EXPERIMENTS.md.
"""

from __future__ import annotations

import time
from typing import Any

from ..threads import ThreadPool

__all__ = ["fib", "prime_count", "run_arith_lab"]


def fib(n: int) -> int:
    """Iterative Fibonacci — deterministic CPU-bound work unit."""
    a, b = 0, 1
    for _ in range(n):
        a, b = b, a + b
    return a


def prime_count(limit: int) -> int:
    """Count primes below ``limit`` by trial division (deliberately
    naive: the lab wants busy CPUs, not clever number theory)."""
    count = 0
    for n in range(2, limit):
        for d in range(2, int(n ** 0.5) + 1):
            if n % d == 0:
                break
        else:
            count += 1
    return count


def run_arith_lab(tasks: int = 32, workload: int = 2000,
                  pool_sizes: tuple[int, ...] = (1, 2, 4)
                  ) -> list[dict[str, Any]]:
    """Run the same task batch under several pool sizes; report timing.

    Returns one record per pool size: elapsed seconds, tasks/second,
    and the checksum (identical across runs — correctness signal).
    """
    results = []
    for workers in pool_sizes:
        start = time.perf_counter()
        with ThreadPool(workers, name=f"arith-{workers}") as pool:
            futures = [pool.submit(fib, workload) for _ in range(tasks)]
            checksum = sum(f.result() % 1_000_003 for f in futures)
        elapsed = time.perf_counter() - start
        results.append({
            "workers": workers,
            "elapsed_s": elapsed,
            "tasks_per_s": tasks / elapsed if elapsed > 0 else float("inf"),
            "checksum": checksum,
        })
    return results
