"""The single-lane bridge — the paper's Test-1 problem.

Cars travel in two directions over a bridge that only carries one
direction at a time (same-direction cars may share it).  The paper
poses the problem in two forms and asks students "could scenario X
happen next?":

* **shared memory** (Figure 6): ``redEnter``/``redExit`` methods with an
  ``EXC_ACC`` monitor and a guarded wait on the opposite-direction
  count;
* **message passing** (Figure 7): cars send ``redEnter``/``redExit``
  messages to a bridge process and receive ``succeedEnter`` /
  ``succeedExit(n)`` acknowledgements.

This module provides four things:

1. exact LTS models of both forms (:func:`sm_bridge_lts`,
   :func:`mp_bridge_lts`) for the question engine — with *semantics
   flags* that express the paper's misconceptions as model mutations
   (S5, S7 for shared memory; M3, M4, M5 for message passing);
2. pseudocode sources of both forms (:data:`SM_PSEUDOCODE`,
   :data:`MP_PSEUDOCODE`) in the paper's notation;
3. executable implementations in all three course models
   (:func:`run_threads_bridge`, :func:`run_actor_bridge`,
   :func:`run_coroutine_bridge`) with a mutual-exclusion audit;
4. the safety invariant (:func:`bridge_invariant`) shared by all;
5. a kernel program (:func:`bridge_program`) for exhaustive
   exploration with :func:`repro.verify.explore` — the benchmark
   workload for the explorer's partial-order/fingerprint reductions.

Event vocabulary (shared by models, questions and graders) — each event
is a tuple starting with the car (or ``"bridge"``):

=============================  =============================================
``(car, "call", m)``           car invoked method ``m`` (SM)
``(car, "acquire", m)``        car got the EXC_ACC monitor inside ``m`` (SM)
``(car, "wait")``              car released the monitor into the wait set
``(car, "enter-bridge")`` /    car physically on/off the bridge
``(car, "exit-bridge")``
``(car, "notify")``            broadcast from the exit method
``(car, "release", m)``        car left the EXC_ACC block of ``m``
``(car, "return", m)``         method ``m`` returned (SM)
``(car, "send", msg)``         car sent ``msg`` (MP)
``(car, "recv", msg)``         car received ``msg``; for exit acks ``msg``
                               is ``("succeedExit", n)`` (MP)
``("bridge", "handle", car, msg)``  bridge processed a car's message (MP)
=============================  =============================================
"""

from __future__ import annotations

import dataclasses
from typing import Any, Optional

from ..core import (Acquire, Emit, Notify, Release, Scheduler, SimMonitor,
                    Wait)
from ..verify.lts import LTS, Rule

__all__ = [
    "SMFlags", "MPFlags", "DEFAULT_CARS",
    "sm_bridge_lts", "mp_bridge_lts", "bridge_invariant",
    "SM_PSEUDOCODE", "MP_PSEUDOCODE",
    "BridgeCollision", "bridge_program",
    "run_threads_bridge", "run_actor_bridge", "run_coroutine_bridge",
    "check_crossing_log",
]

#: the paper's scenario: two red cars and one blue car
DEFAULT_CARS: tuple[tuple[str, str], ...] = (
    ("redCarA", "red"), ("redCarB", "red"), ("blueCarA", "blue"))


# ===========================================================================
# shared-memory LTS
# ===========================================================================

# car program counters
IDLE = 0            # about to call <color>Enter
WANT_ENTER = 1      # called enter, contending for the monitor
IN_ENTER = 2        # holds the monitor inside enter
WAITING = 3         # in the condition queue (released the monitor)
RECONTEND = 4       # notified, re-contending for the monitor
ENTER_CS_DONE = 5   # entered bridge, still in the EXC_ACC block
ENTER_RET = 6       # released monitor, about to return from enter
CROSSING = 7        # returned from enter, driving across
WANT_EXIT = 8       # called exit, contending for the monitor
IN_EXIT = 9         # holds the monitor inside exit
EXIT_NOTIFIED = 10  # decremented count + notified, still in the block
EXIT_RET = 11       # released monitor, about to return from exit
DONE = 12

NO_OWNER = -1


@dataclasses.dataclass(frozen=True)
class SMFlags:
    """Semantic switches for the shared-memory bridge model.

    The defaults are the *correct* Java-monitor semantics; each flag
    turns on one of the paper's Table-III misconceptions:

    ``lock_span_method`` (S7)
        The monitor is held from method invocation to method return
        (students conflate call/return with acquire/release).
    ``acquire_requires_condition`` (S5)
        A car can only obtain the lock when its guard condition already
        holds (students conflate locking with conditional waiting).
    ``wait_blocks_monitor`` (S6)
        WAIT() does not release the monitor (students misread WAIT's
        effect — the waiting loop "keeps running" holding the lock).
    """

    lock_span_method: bool = False
    acquire_requires_condition: bool = False
    wait_blocks_monitor: bool = False


def _sm_initial(n_cars: int) -> tuple:
    # (pcs, red_count, blue_count, owner)
    return (tuple([IDLE] * n_cars), 0, 0, NO_OWNER)


def sm_bridge_lts(cars: tuple[tuple[str, str], ...] = DEFAULT_CARS,
                  flags: SMFlags = SMFlags()) -> LTS:
    """Exact model of the shared-memory bridge.

    State = (per-car pc, red_count, blue_count, monitor owner index).
    Every rule emits one event from the module vocabulary.
    """
    names = [name for name, _ in cars]
    colors = [color for _, color in cars]

    def other_count(state: tuple, i: int) -> int:
        _, red, blue, _ = state
        return blue if colors[i] == "red" else red

    def with_pc(state: tuple, i: int, pc: int, *, owner: Optional[int] = None,
                d_red: int = 0, d_blue: int = 0) -> tuple:
        pcs, red, blue, own = state
        new_pcs = list(pcs)
        new_pcs[i] = pc
        return (tuple(new_pcs), red + d_red, blue + d_blue,
                own if owner is None else owner)

    def enter_name(i: int) -> str:
        return f"{colors[i]}Enter"

    def exit_name(i: int) -> str:
        return f"{colors[i]}Exit"

    rules: list[Rule] = []

    def add(name: str, guard, apply, event) -> None:
        rules.append(Rule(name=name, guard=guard, apply=apply, event=event))

    for i, car in enumerate(names):
        color = colors[i]
        d_enter = {"d_red": 1} if color == "red" else {"d_blue": 1}
        d_exit = {"d_red": -1} if color == "red" else {"d_blue": -1}

        def pc_is(i: int, *pcs: int):
            return lambda s, i=i, pcs=pcs: s[0][i] in pcs

        def monitor_free(s: tuple) -> bool:
            return s[3] == NO_OWNER

        # ---- call <color>Enter -------------------------------------------
        add(f"{car}.call-enter", pc_is(i, IDLE),
            lambda s, i=i: with_pc(s, i, WANT_ENTER),
            lambda s, car=car, i=i: (car, "call", enter_name(i)))

        # ---- acquire the EXC_ACC monitor for enter -----------------------
        def acquire_enter_guard(s: tuple, i=i) -> bool:
            if s[0][i] not in (WANT_ENTER, RECONTEND):
                return False
            if s[3] != NO_OWNER:
                return False
            if flags.acquire_requires_condition and other_count(s, i) > 0:
                return False  # S5: "cannot get the lock, condition unmet"
            return True

        add(f"{car}.acquire-enter", acquire_enter_guard,
            lambda s, i=i: with_pc(s, i, IN_ENTER, owner=i),
            lambda s, car=car, i=i: (car, "acquire", enter_name(i)))

        # ---- guard check: wait or enter ---------------------------------
        def wait_guard(s: tuple, i=i) -> bool:
            return s[0][i] == IN_ENTER and other_count(s, i) > 0

        if flags.wait_blocks_monitor:
            # S6: WAIT keeps the monitor — the car parks but nobody else
            # can ever get in: the model keeps ownership.
            add(f"{car}.wait", wait_guard,
                lambda s, i=i: with_pc(s, i, WAITING),
                lambda s, car=car: (car, "wait"))
        else:
            add(f"{car}.wait", wait_guard,
                lambda s, i=i: with_pc(s, i, WAITING, owner=NO_OWNER),
                lambda s, car=car: (car, "wait"))

        def enter_guard(s: tuple, i=i) -> bool:
            return s[0][i] == IN_ENTER and other_count(s, i) == 0

        add(f"{car}.enter-bridge", enter_guard,
            lambda s, i=i, d=d_enter: with_pc(s, i, ENTER_CS_DONE, **d),
            lambda s, car=car: (car, "enter-bridge"))

        # ---- release + return from enter ---------------------------------
        if flags.lock_span_method:
            # S7: the lock is released only at method return; fuse the
            # release into the return transition and skip the release
            # event (the student's world has no separate release point).
            add(f"{car}.return-enter", pc_is(i, ENTER_CS_DONE),
                lambda s, i=i: with_pc(s, i, CROSSING, owner=NO_OWNER),
                lambda s, car=car, i=i: (car, "return", enter_name(i)))
        else:
            add(f"{car}.release-enter", pc_is(i, ENTER_CS_DONE),
                lambda s, i=i: with_pc(s, i, ENTER_RET, owner=NO_OWNER),
                lambda s, car=car, i=i: (car, "release", enter_name(i)))
            add(f"{car}.return-enter", pc_is(i, ENTER_RET),
                lambda s, i=i: with_pc(s, i, CROSSING),
                lambda s, car=car, i=i: (car, "return", enter_name(i)))

        # ---- call <color>Exit --------------------------------------------
        add(f"{car}.call-exit", pc_is(i, CROSSING),
            lambda s, i=i: with_pc(s, i, WANT_EXIT),
            lambda s, car=car, i=i: (car, "call", exit_name(i)))

        def acquire_exit_guard(s: tuple, i=i) -> bool:
            return s[0][i] == WANT_EXIT and s[3] == NO_OWNER

        add(f"{car}.acquire-exit", acquire_exit_guard,
            lambda s, i=i: with_pc(s, i, IN_EXIT, owner=i),
            lambda s, car=car, i=i: (car, "acquire", exit_name(i)))

        # ---- leave bridge + notify ---------------------------------------
        def do_exit(s: tuple, i=i, d=d_exit) -> tuple:
            s2 = with_pc(s, i, EXIT_NOTIFIED, **d)
            # broadcast NOTIFY: every waiter re-contends
            pcs = list(s2[0])
            for j, pc in enumerate(pcs):
                if pc == WAITING and j != i:
                    pcs[j] = RECONTEND
            return (tuple(pcs), s2[1], s2[2], s2[3])

        add(f"{car}.exit-bridge", pc_is(i, IN_EXIT), do_exit,
            lambda s, car=car: (car, "exit-bridge"))

        if flags.lock_span_method:
            add(f"{car}.return-exit", pc_is(i, EXIT_NOTIFIED),
                lambda s, i=i: with_pc(s, i, DONE, owner=NO_OWNER),
                lambda s, car=car, i=i: (car, "return", exit_name(i)))
        else:
            add(f"{car}.release-exit", pc_is(i, EXIT_NOTIFIED),
                lambda s, i=i: with_pc(s, i, EXIT_RET, owner=NO_OWNER),
                lambda s, car=car, i=i: (car, "release", exit_name(i)))
            add(f"{car}.return-exit", pc_is(i, EXIT_RET),
                lambda s, i=i: with_pc(s, i, DONE),
                lambda s, car=car, i=i: (car, "return", exit_name(i)))

    def is_final(state: tuple) -> bool:
        return all(pc == DONE for pc in state[0])

    return LTS(_sm_initial(len(cars)), rules, is_final=is_final,
               name="sm-bridge")


def bridge_invariant(state: tuple) -> bool:
    """Safety: never both directions on the bridge (SM state layout)."""
    _, red, blue, _ = state
    return red == 0 or blue == 0


# ===========================================================================
# message-passing LTS
# ===========================================================================

M_IDLE = 0
M_AWAIT_ENTER = 1   # sent <color>Enter, waiting for succeedEnter
M_CROSSING = 2      # received succeedEnter
M_AWAIT_EXIT = 3    # sent <color>Exit, waiting for succeedExit(n)
M_DONE = 4


@dataclasses.dataclass(frozen=True)
class MPFlags:
    """Semantic switches for the message-passing bridge model.

    ``delivery``
        ``"arbitrary"`` — the paper's semantics: any pending message may
        be handled next; ``"fifo"`` — misconception M5's world: strict
        global send order; ``"per-sender"`` — per-sender FIFO.
    ``send_synchronous`` (M3)
        A send can only happen when the bridge could immediately accept
        and process it; send+handle become one atomic step.
    ``ack_synchronous`` (M4)
        The acknowledgement arrives in the same instant the bridge
        handles the message (bridge-handle and car-receive fuse).
    """

    delivery: str = "arbitrary"
    send_synchronous: bool = False
    ack_synchronous: bool = False


def _mp_initial(n_cars: int) -> tuple:
    # (car pcs, red, blue, exit_count, bridge inbox, car inboxes, ack seq)
    # car-inbox entries are (payload, global_seq) so FIFO misconceptions
    # can order acknowledgements across different receivers
    return (tuple([M_IDLE] * n_cars), 0, 0, 0, (),
            tuple(() for _ in range(n_cars)), 0)


def mp_bridge_lts(cars: tuple[tuple[str, str], ...] = DEFAULT_CARS,
                  flags: MPFlags = MPFlags()) -> LTS:
    """Exact model of the message-passing bridge.

    State = (car pcs, red, blue, exit_count, bridge inbox, car inboxes);
    inboxes are tuples of messages in send order — the delivery flag
    decides which positions are handleable.
    """
    names = [name for name, _ in cars]
    colors = [color for _, color in cars]
    n = len(cars)

    def handleable_positions(inbox: tuple, state: tuple) -> list[int]:
        """Inbox positions the bridge may handle next, per delivery flag
        and per the guard (enter messages wait for a clear bridge)."""
        red, blue = state[1], state[2]

        def guard_ok(msg: tuple) -> bool:
            sender, kind = msg
            if kind.endswith("Exit"):
                return True
            other = blue if colors[sender] == "red" else red
            return other == 0
        if flags.delivery == "fifo":
            candidates = list(range(len(inbox)))[:1]
        elif flags.delivery == "per-sender":
            seen: set[int] = set()
            candidates = []
            for pos, (sender, _) in enumerate(inbox):
                if sender not in seen:
                    seen.add(sender)
                    candidates.append(pos)
        else:
            candidates = list(range(len(inbox)))
        return [p for p in candidates if guard_ok(inbox[p])]

    def handle(state: tuple, pos: int) -> tuple:
        """Bridge processes inbox[pos]; returns successor state."""
        pcs, red, blue, exits, inbox, car_boxes, seq = state
        sender, kind = inbox[pos]
        inbox = inbox[:pos] + inbox[pos + 1:]
        boxes = list(car_boxes)
        if kind.endswith("Enter"):
            if colors[sender] == "red":
                red += 1
            else:
                blue += 1
            ack: Any = "succeedEnter"
        else:
            if colors[sender] == "red":
                red -= 1
            else:
                blue -= 1
            exits += 1
            ack = ("succeedExit", exits)
        if flags.ack_synchronous:
            # M4: the car observes the ack the instant the event happens
            pcs = list(pcs)
            pcs[sender] = (M_CROSSING if ack == "succeedEnter" else M_DONE)
            pcs = tuple(pcs)
        else:
            boxes[sender] = boxes[sender] + ((ack, seq),)
            seq += 1
        return (pcs, red, blue, exits, inbox, tuple(boxes), seq)

    rules: list[Rule] = []

    def add(name: str, guard, apply, event) -> None:
        rules.append(Rule(name=name, guard=guard, apply=apply, event=event))

    # ---- car sends -------------------------------------------------------
    for i, car in enumerate(names):
        color = colors[i]
        enter_msg = f"{color}Enter"
        exit_msg = f"{color}Exit"

        def make_send_guard(pc_from: int, msg: str):
            def guard(s: tuple, i=i, pc_from=pc_from, msg=msg) -> bool:
                if s[0][i] != pc_from:
                    return False
                if flags.send_synchronous:
                    # M3: a send can only happen when the receiver could
                    # accept and process it right now
                    probe = _append_inbox(s, i, msg)
                    return any(probe[4][p] == (i, msg)
                               for p in handleable_positions(probe[4], probe))
                return True
            return guard

        def make_send(pc_to: int, msg: str):
            def apply(s: tuple, i=i, msg=msg, pc_to=pc_to) -> tuple:
                s2 = _append_inbox(s, i, msg)
                pcs = list(s2[0])
                pcs[i] = pc_to
                s2 = (tuple(pcs),) + s2[1:]
                if flags.send_synchronous:
                    # fuse the handle step into the send
                    for p in handleable_positions(s2[4], s2):
                        if s2[4][p] == (i, msg):
                            return handle(s2, p)
                return s2
            return apply

        add(f"{car}.send-enter",
            make_send_guard(M_IDLE, enter_msg),
            make_send(M_AWAIT_ENTER, enter_msg),
            lambda s, car=car, m=enter_msg: (car, "send", m))

        add(f"{car}.send-exit",
            make_send_guard(M_CROSSING, exit_msg),
            make_send(M_AWAIT_EXIT, exit_msg),
            lambda s, car=car, m=exit_msg: (car, "send", m))

        # ---- car receives an ack ------------------------------------------
        def recv_guard(s: tuple, i=i) -> bool:
            if not s[5][i]:
                return False
            if flags.delivery == "fifo":
                # M5's world across receivers: an ack is deliverable only
                # if no other car holds an earlier-sent undelivered ack
                my_seq = s[5][i][0][1]
                return all(not box or box[0][1] >= my_seq for box in s[5])
            return True

        def recv_apply(s: tuple, i=i) -> tuple:
            pcs, red, blue, exits, inbox, boxes, seq = s
            ack = boxes[i][0][0]
            boxes = list(boxes)
            boxes[i] = boxes[i][1:]
            pcs = list(pcs)
            pcs[i] = M_CROSSING if ack == "succeedEnter" else M_DONE
            return (tuple(pcs), red, blue, exits, inbox, tuple(boxes), seq)

        add(f"{car}.recv-ack", recv_guard, recv_apply,
            lambda s, car=car, i=i: (car, "recv", s[5][i][0][0]))

    # ---- bridge handles a message ----------------------------------------
    if not flags.send_synchronous:
        def bridge_guard(s: tuple) -> bool:
            return len(handleable_positions(s[4], s)) > 0

        # one rule per possible position is awkward with dynamic inbox
        # sizes; instead emit one rule per (sender, kind) pair — position
        # resolution happens in apply, and distinct pending messages give
        # distinct enabled rules, preserving the choice structure.
        for i, car in enumerate(names):
            for kind in (f"{colors[i]}Enter", f"{colors[i]}Exit"):
                def g(s: tuple, i=i, kind=kind) -> bool:
                    return any(s[4][p] == (i, kind)
                               for p in handleable_positions(s[4], s))

                def a(s: tuple, i=i, kind=kind) -> tuple:
                    for p in handleable_positions(s[4], s):
                        if s[4][p] == (i, kind):
                            return handle(s, p)
                    raise AssertionError("guard/apply mismatch")

                add(f"bridge.handle-{car}-{kind}", g, a,
                    lambda s, car=car, kind=kind:
                        ("bridge", "handle", car, kind))

    def is_final(state: tuple) -> bool:
        return all(pc == M_DONE for pc in state[0])

    return LTS(_mp_initial(n), rules, is_final=is_final, name="mp-bridge")


def _append_inbox(state: tuple, sender: int, msg: str) -> tuple:
    pcs, red, blue, exits, inbox, boxes, seq = state
    return (pcs, red, blue, exits, inbox + ((sender, msg),), boxes, seq)


# ===========================================================================
# pseudocode sources (the paper's notation, both forms)
# ===========================================================================

SM_PSEUDOCODE = '''\
redCount = 0
blueCount = 0

DEFINE redEnter()
  EXC_ACC
    WHILE blueCount > 0
      WAIT()
    ENDWHILE
    redCount = redCount + 1
  END_EXC_ACC
ENDDEF

DEFINE redExit()
  EXC_ACC
    redCount = redCount - 1
    NOTIFY()
  END_EXC_ACC
ENDDEF

DEFINE blueEnter()
  EXC_ACC
    WHILE redCount > 0
      WAIT()
    ENDWHILE
    blueCount = blueCount + 1
  END_EXC_ACC
ENDDEF

DEFINE blueExit()
  EXC_ACC
    blueCount = blueCount - 1
    NOTIFY()
  END_EXC_ACC
ENDDEF

DEFINE redRun()
  redEnter()
  redExit()
ENDDEF

DEFINE blueRun()
  blueEnter()
  blueExit()
ENDDEF

PARA
  redRun()
  redRun()
  blueRun()
ENDPARA
PRINT redCount + blueCount
'''

MP_PSEUDOCODE = '''\
CLASS Bridge
  DEFINE start()
    ON_RECEIVING
      MESSAGE.redEnter(car)
        Send(MESSAGE.succeedEnter()).To(car)
      MESSAGE.redExit(car)
        Send(MESSAGE.succeedExit()).To(car)
      MESSAGE.blueEnter(car)
        Send(MESSAGE.succeedEnter()).To(car)
      MESSAGE.blueExit(car)
        Send(MESSAGE.succeedExit()).To(car)
  ENDDEF
ENDCLASS

CLASS Car
  DEFINE start()
    ON_RECEIVING
      MESSAGE.succeedEnter()
        PRINT "crossing "
      MESSAGE.succeedExit()
        PRINT "crossed "
  ENDDEF
ENDCLASS
'''


# ===========================================================================
# executable implementations (threads / actors / coroutines)
# ===========================================================================

def check_crossing_log(log: list[tuple], cars: tuple[tuple[str, str], ...]
                       ) -> Optional[str]:
    """Audit an enter/exit event log for the one-direction invariant.

    ``log`` holds ``(car, "enter-bridge")`` / ``(car, "exit-bridge")``
    tuples in occurrence order.  Returns None if safe, else a message.
    """
    color_of = dict(cars)
    on_bridge: dict[str, int] = {"red": 0, "blue": 0}
    for event in log:
        car, what = event[0], event[1]
        color = color_of[car]
        if what == "enter-bridge":
            on_bridge[color] += 1
            if on_bridge["red"] and on_bridge["blue"]:
                return f"both directions on the bridge at {event!r}"
        elif what == "exit-bridge":
            on_bridge[color] -= 1
            if on_bridge[color] < 0:
                return f"{car} exited without entering"
    return None


class BridgeCollision(AssertionError):
    """The bridge's collision sensor: both directions on at once.

    Raised from inside a car task, so a colliding schedule ends with
    outcome ``"failed"`` — the explorer files it under failures and the
    monitor bus's :class:`~repro.obs.FailureDetector` flags it.
    """


def bridge_program(cars: tuple[tuple[str, str], ...] = DEFAULT_CARS,
                   crossings: int = 1, guard: str = "while"):
    """Kernel program (for :func:`repro.verify.explore`): the paper's
    shared-memory bridge on the deterministic scheduler.

    Each car runs ``<color>Enter(); <color>Exit()`` per crossing with
    the Figure-4 monitor discipline: guarded wait on the
    opposite-direction count inside ``EXC_ACC``, broadcast NOTIFY on
    exit.  Every physical enter/exit is also an :class:`Emit`, so
    terminal outputs are crossing logs and the explorer's witness
    machinery can answer "could scenario X happen?".

    ``guard`` selects the wait discipline: ``"while"`` is the paper's
    correct re-checked loop; ``"if"`` checks the condition only once
    (the classic barging bug — a notified car re-enters without
    re-testing, so two opposing cars can share the bridge).  An
    on-entry collision sensor raises :class:`BridgeCollision` the
    moment both directions are on, making the violation a task
    failure rather than only a bad terminal output.

    Observation: ``(audit, crossed)`` — the
    :func:`check_crossing_log` verdict (None = safe) and how many
    cars are still on the bridge at the end (always 0 on completion).

    All shared state (direction counts, the log) is kernel-visible via
    ``sched.fingerprint_extra``, so the fingerprint reduction is sound
    on this program.
    """
    if guard not in ("while", "if"):
        raise ValueError(f"guard must be 'while' or 'if', not {guard!r}")

    def program(sched: Scheduler):
        monitor = SimMonitor("EXC_ACC")
        counts = {"red": 0, "blue": 0}
        log: list[tuple] = []

        def car(name: str, color: str):
            other = "blue" if color == "red" else "red"
            for _ in range(crossings):
                # <color>Enter()
                yield Acquire(monitor)
                if guard == "while":
                    while counts[other] > 0:
                        yield Wait(monitor)
                elif counts[other] > 0:
                    yield Wait(monitor)   # no re-check on wakeup
                if counts[other] > 0:
                    # collision sensor: trips before the car parks on
                    # the bridge, and releases the monitor first so the
                    # surviving cars can drive on — the violating
                    # schedule ends "failed" instead of wedging every
                    # other car on a lock held by a dead task
                    yield Release(monitor)
                    raise BridgeCollision(
                        f"{name} entered with {counts[other]} "
                        f"{other} car(s) on the bridge")
                counts[color] += 1
                log.append((name, "enter-bridge"))
                yield Emit((name, "enter-bridge"))
                yield Release(monitor)
                # <color>Exit()
                yield Acquire(monitor)
                counts[color] -= 1
                log.append((name, "exit-bridge"))
                yield Emit((name, "exit-bridge"))
                yield Notify(monitor, all=True)
                yield Release(monitor)

        for name, color in cars:
            sched.spawn(car, name, color, name=name)
        sched.fingerprint_extra = lambda: (
            counts["red"], counts["blue"], tuple(log))
        return lambda: (check_crossing_log(log, cars),
                        counts["red"] + counts["blue"])

    return program


def run_threads_bridge(cars: tuple[tuple[str, str], ...] = DEFAULT_CARS,
                       crossings: int = 3, profiler=None) -> list[tuple]:
    """Shared-memory bridge on real threads (Monitor + guarded wait).

    Returns the enter/exit log (already audited — raises on violation).
    """
    from ..threads import JThread, Monitor

    monitor = Monitor("bridge", profiler=profiler)
    counts = {"red": 0, "blue": 0}
    log: list[tuple] = []
    log_lock = Monitor("log", profiler=profiler)

    def car_main(name: str, color: str) -> None:
        other = "blue" if color == "red" else "red"
        for _ in range(crossings):
            with monitor:
                monitor.wait_until(lambda: counts[other] == 0)
                counts[color] += 1
            with log_lock:
                log.append((name, "enter-bridge"))
            with log_lock:
                log.append((name, "exit-bridge"))
            with monitor:
                counts[color] -= 1
                monitor.notify_all()

    threads = [JThread(target=car_main, args=(name, color), name=name,
                       profiler=profiler)
               for name, color in cars]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=30)
    problem = check_crossing_log(log, cars)
    if problem:
        raise AssertionError(problem)
    return log


def run_actor_bridge(cars: tuple[tuple[str, str], ...] = DEFAULT_CARS,
                     crossings: int = 3, profiler=None) -> list[tuple]:
    """Message-passing bridge on the threaded actor system."""
    from ..actors import Actor, ActorSystem

    log: list[tuple] = []
    import threading
    log_lock = threading.Lock()

    def record(event: tuple) -> None:
        with log_lock:
            log.append(event)

    class Bridge(Actor):
        def __init__(self) -> None:
            super().__init__()
            self.red = 0
            self.blue = 0
            self.pending: list[tuple] = []   # deferred enter requests

        def receive(self, message: Any, sender: Any) -> None:
            kind, color = message
            if kind == "enter":
                self._try_enter(color, sender)
            else:
                if color == "red":
                    self.red -= 1
                else:
                    self.blue -= 1
                record((sender.name, "exit-bridge"))
                sender.tell(("succeedExit",), sender=self.self_ref)
                self._drain_pending()

        def _try_enter(self, color: str, sender: Any) -> None:
            other = self.blue if color == "red" else self.red
            if other == 0:
                if color == "red":
                    self.red += 1
                else:
                    self.blue += 1
                record((sender.name, "enter-bridge"))
                sender.tell(("succeedEnter",), sender=self.self_ref)
            else:
                self.pending.append((color, sender))

        def _drain_pending(self) -> None:
            pending, self.pending = self.pending, []
            for color, sender in pending:
                self._try_enter(color, sender)

    class Car(Actor):
        def __init__(self, color: str, bridge: Any, crossings: int) -> None:
            super().__init__()
            self.color = color
            self.bridge = bridge
            self.remaining = crossings

        def pre_start(self) -> None:
            self.bridge.tell(("enter", self.color), sender=self.self_ref)

        def receive(self, message: Any, sender: Any) -> None:
            if message[0] == "succeedEnter":
                self.bridge.tell(("exit", self.color), sender=self.self_ref)
            elif message[0] == "succeedExit":
                self.remaining -= 1
                if self.remaining > 0:
                    self.bridge.tell(("enter", self.color),
                                     sender=self.self_ref)

    with ActorSystem(workers=3, profiler=profiler) as system:
        bridge = system.spawn(Bridge, name="bridge")
        for name, color in cars:
            system.spawn(Car, color, bridge, crossings, name=name)
        system.drain(timeout=30)

    problem = check_crossing_log(log, cars)
    if problem:
        raise AssertionError(problem)
    return log


def run_coroutine_bridge(cars: tuple[tuple[str, str], ...] = DEFAULT_CARS,
                         crossings: int = 3, profiler=None) -> list[tuple]:
    """Cooperative bridge: no locks needed — state changes between
    yields are atomic by construction, the cooperative model's selling
    point in the course."""
    from ..coroutines import CoScheduler, pause

    counts = {"red": 0, "blue": 0}
    log: list[tuple] = []

    def car_task(name: str, color: str):
        other = "blue" if color == "red" else "red"
        for _ in range(crossings):
            while counts[other] > 0:
                yield pause()
            counts[color] += 1
            log.append((name, "enter-bridge"))
            yield pause()
            counts[color] -= 1
            log.append((name, "exit-bridge"))
            yield pause()

    sched = CoScheduler(profiler=profiler)
    for name, color in cars:
        sched.spawn(car_task, name, color, name=name)
    sched.run()
    problem = check_crossing_log(log, cars)
    if problem:
        raise AssertionError(problem)
    return log
