"""Sleeping barber — one of the two in-class lab problems (with
party-matching) that students implement in all three forms.

Customers arrive at a shop with a bounded waiting area; a customer
finding a free chair waits (or is served straight away if a barber is
idle), otherwise leaves.  Barbers sleep when nobody waits.

Audited properties: every served customer was seated first; customers
turned away only when the waiting area was genuinely full; nobody is
served twice.
"""

from __future__ import annotations

from typing import Any, Iterator, Optional

from ..core import (Acquire, Effect, Emit, Notify, Release, Scheduler,
                    SimMonitor, Wait)

__all__ = ["barber_program", "audit_barber_log", "run_threads_barber",
           "run_actor_barber", "run_coroutine_barber"]


def barber_program(customers: int = 3, chairs: int = 1, barbers: int = 1):
    """Kernel program for the explorer.

    Observation: (served, turned_away) counts.
    """

    def program(sched: Scheduler):
        monitor = SimMonitor("shop")
        state = {"waiting": [], "served": 0, "turned": 0, "open": True}

        def customer(i: int) -> Iterator[Effect]:
            yield Acquire(monitor)
            if len(state["waiting"]) >= chairs:
                state["turned"] += 1
                yield Emit(("turned-away", i))
                yield Release(monitor)
                return
            state["waiting"].append(i)
            yield Emit(("seated", i))
            yield Notify(monitor, all=True)   # wake a sleeping barber
            yield Release(monitor)

        def barber(b: int) -> Iterator[Effect]:
            while True:
                yield Acquire(monitor)
                while not state["waiting"] and state["open"]:
                    yield Wait(monitor)
                if not state["waiting"] and not state["open"]:
                    yield Release(monitor)
                    return
                i = state["waiting"].pop(0)
                state["served"] += 1
                yield Emit(("served", b, i))
                yield Notify(monitor, all=True)   # the closer may be waiting
                yield Release(monitor)

        def closer() -> Iterator[Effect]:
            # closes the shop once every customer decided (seated/turned)
            yield Acquire(monitor)
            while state["served"] + state["turned"] + len(state["waiting"]) \
                    < customers or state["waiting"]:
                yield Wait(monitor)
            state["open"] = False
            yield Notify(monitor, all=True)
            yield Release(monitor)

        for i in range(customers):
            sched.spawn(customer, i, name=f"customer-{i}")
        for b in range(barbers):
            sched.spawn(barber, b, name=f"barber-{b}")
        sched.spawn(closer, name="closer")
        return lambda: (state["served"], state["turned"])

    return program


def audit_barber_log(log: list[tuple]) -> Optional[str]:
    """Check seat-before-serve and no-double-serve over an event log."""
    seated: set[int] = set()
    served: set[int] = set()
    for event in log:
        if event[0] == "seated":
            seated.add(event[1])
        elif event[0] == "served":
            _, _barber, cust = event
            if cust not in seated:
                return f"customer {cust} served without being seated"
            if cust in served:
                return f"customer {cust} served twice"
            served.add(cust)
    return None


# ---------------------------------------------------------------------------
# the three course models
# ---------------------------------------------------------------------------

def run_threads_barber(customers: int = 20, chairs: int = 3,
                       barbers: int = 2) -> dict[str, Any]:
    """Monitor-based shop on real threads."""
    from ..threads import JThread, Monitor

    monitor = Monitor("shop")
    waiting: list[int] = []
    log: list[tuple] = []
    stats = {"served": 0, "turned": 0, "open": True}

    def customer(i: int) -> None:
        with monitor:
            if len(waiting) >= chairs:
                stats["turned"] += 1
                log.append(("turned-away", i))
                return
            waiting.append(i)
            log.append(("seated", i))
            monitor.notify_all()

    def barber(b: int) -> None:
        while True:
            with monitor:
                monitor.wait_until(lambda: waiting or not stats["open"])
                if not waiting:
                    return
                i = waiting.pop(0)
                stats["served"] += 1
                log.append(("served", b, i))
                # the closer waits for the chairs to drain — without this
                # wakeup it can sleep through the last pop and hang
                monitor.notify_all()

    barber_threads = [JThread(target=barber, args=(b,), name=f"barber-{b}")
                      for b in range(barbers)]
    for t in barber_threads:
        t.start()
    customer_threads = [JThread(target=customer, args=(i,), name=f"cust-{i}")
                        for i in range(customers)]
    for t in customer_threads:
        t.start()
    for t in customer_threads:
        t.join(timeout=30)
    with monitor:
        monitor.wait_until(lambda: not waiting)
        stats["open"] = False
        monitor.notify_all()
    for t in barber_threads:
        t.join(timeout=30)
    problem = audit_barber_log(log)
    if problem:
        raise AssertionError(problem)
    return {"served": stats["served"], "turned": stats["turned"],
            "log": log}


def run_actor_barber(customers: int = 20, chairs: int = 3,
                     barbers: int = 2) -> dict[str, Any]:
    """Shop actor owning all state; barber actors ask it for work."""
    import threading
    from ..actors import Actor, ActorSystem

    log: list[tuple] = []
    log_lock = threading.Lock()
    finished = threading.Event()

    class Shop(Actor):
        def __init__(self) -> None:
            super().__init__()
            self.waiting: list[int] = []
            self.idle_barbers: list[Any] = []
            self.served = 0
            self.turned = 0
            self.decided = 0

        def receive(self, message: Any, sender: Any) -> None:
            kind = message[0]
            if kind == "arrive":
                i = message[1]
                self.decided += 1
                if self.idle_barbers:
                    with log_lock:
                        log.append(("seated", i))
                        self.served += 1
                        log.append(("served", -1, i))
                    self.idle_barbers.pop(0).tell(("cut", i),
                                                  sender=self.self_ref)
                elif len(self.waiting) < chairs:
                    self.waiting.append(i)
                    with log_lock:
                        log.append(("seated", i))
                else:
                    self.turned += 1
                    with log_lock:
                        log.append(("turned-away", i))
                self._check_done()
            elif kind == "next":        # a barber is free
                if self.waiting:
                    i = self.waiting.pop(0)
                    self.served += 1
                    with log_lock:
                        log.append(("served", -1, i))
                    sender.tell(("cut", i), sender=self.self_ref)
                else:
                    self.idle_barbers.append(sender)
                self._check_done()

        def _check_done(self) -> None:
            if self.decided >= customers and not self.waiting:
                finished.set()

    class Barber(Actor):
        def __init__(self, shop: Any) -> None:
            super().__init__()
            self.shop = shop

        def pre_start(self) -> None:
            self.shop.tell(("next",), sender=self.self_ref)

        def receive(self, message: Any, sender: Any) -> None:
            if message[0] == "cut":
                self.shop.tell(("next",), sender=self.self_ref)

    with ActorSystem(workers=4) as system:
        shop = system.spawn(Shop, name="shop")
        for b in range(barbers):
            system.spawn(Barber, shop, name=f"barber-{b}")
        for i in range(customers):
            shop.tell(("arrive", i))
        finished.wait(timeout=30)
        system.drain(timeout=10)

    problem = audit_barber_log(log)
    if problem:
        raise AssertionError(problem)
    served = sum(1 for e in log if e[0] == "served")
    turned = sum(1 for e in log if e[0] == "turned-away")
    return {"served": served, "turned": turned, "log": log}


def run_coroutine_barber(customers: int = 20, chairs: int = 3,
                         barbers: int = 2) -> dict[str, Any]:
    """Cooperative shop — shared lists mutated atomically between yields."""
    from ..coroutines import CoScheduler, pause

    waiting: list[int] = []
    log: list[tuple] = []
    stats = {"served": 0, "turned": 0, "arrived": 0}

    def customer(i: int):
        stats["arrived"] += 1
        if len(waiting) >= chairs:
            stats["turned"] += 1
            log.append(("turned-away", i))
        else:
            waiting.append(i)
            log.append(("seated", i))
        return
        yield  # pragma: no cover - marks this as a generator

    def barber(b: int):
        while stats["served"] + stats["turned"] < customers:
            if waiting:
                i = waiting.pop(0)
                stats["served"] += 1
                log.append(("served", b, i))
            yield pause()

    sched = CoScheduler()
    for b in range(barbers):
        sched.spawn(barber, b, name=f"barber-{b}")
    for i in range(customers):
        sched.spawn(customer, i, name=f"cust-{i}")
    sched.run()
    problem = audit_barber_log(log)
    if problem:
        raise AssertionError(problem)
    return {"served": stats["served"], "turned": stats["turned"], "log": log}
