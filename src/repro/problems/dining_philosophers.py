"""Dining philosophers — the week-1 demo program and the canonical
deadlock example of the course's §IV.C.

Variants provided:

* :func:`philosophers_program` — kernel program with a strategy knob:
  ``"naive"`` (everyone grabs left then right — deadlocks, and the
  explorer finds the witness), ``"ordered"`` (global fork order —
  deadlock-free, and the explorer proves it for small tables),
  ``"waiter"`` (a semaphore admits at most N-1 to the table);
* :func:`run_threads_philosophers` — real threads with the ordered
  strategy;
* :func:`run_actor_philosophers` — a waiter actor granting forks;
* :func:`run_coroutine_philosophers` — cooperative version.
"""

from __future__ import annotations

from typing import Any, Iterator

from ..core import (Acquire, Effect, Emit, Release, Scheduler, SimLock,
                    SimSemaphore)

__all__ = ["philosophers_program", "run_threads_philosophers",
           "run_actor_philosophers", "run_coroutine_philosophers"]


def philosophers_program(n: int = 3, meals: int = 1,
                         strategy: str = "naive"):
    """Kernel program for the explorer.  Observation: meals eaten."""
    if strategy not in ("naive", "ordered", "waiter"):
        raise ValueError(f"unknown strategy {strategy!r}")

    def program(sched: Scheduler):
        forks = [SimLock(f"fork-{i}") for i in range(n)]
        table = SimSemaphore(n - 1, "table") if strategy == "waiter" else None
        eaten = {"meals": 0}

        def philosopher(i: int) -> Iterator[Effect]:
            left, right = forks[i], forks[(i + 1) % n]
            if strategy == "ordered":
                first, second = ((left, right) if left.name < right.name
                                 else (right, left))
            else:
                first, second = left, right
            for _ in range(meals):
                if table is not None:
                    yield Acquire(table)
                yield Acquire(first)
                yield Acquire(second)
                eaten["meals"] += 1
                yield Emit(("eat", i))
                yield Release(second)
                yield Release(first)
                if table is not None:
                    yield Release(table)

        for i in range(n):
            sched.spawn(philosopher, i, name=f"philosopher-{i}")
        return lambda: eaten["meals"]

    return program


def run_threads_philosophers(n: int = 5, meals: int = 20,
                             profiler=None) -> int:
    """Ordered-fork strategy on real threads; returns meals eaten."""
    from ..threads import AtomicInteger, JThread, Monitor

    forks = [Monitor(f"fork-{i}", profiler=profiler) for i in range(n)]
    eaten = AtomicInteger()

    def philosopher(i: int) -> None:
        a, b = sorted((i, (i + 1) % n))
        for _ in range(meals):
            with forks[a]:
                with forks[b]:
                    eaten.increment_and_get()

    threads = [JThread(target=philosopher, args=(i,), name=f"phil-{i}",
                       profiler=profiler)
               for i in range(n)]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=30)
    return eaten.get()


def run_actor_philosophers(n: int = 5, meals: int = 10,
                           profiler=None) -> int:
    """Waiter-actor strategy: philosophers request both forks from a
    waiter that grants them atomically — deadlock is impossible because
    fork allocation is centralized (the message-passing resolution the
    course contrasts with lock ordering)."""
    import threading
    from ..actors import Actor, ActorSystem

    eaten = [0]
    done = threading.Event()
    total = n * meals

    class Waiter(Actor):
        def __init__(self) -> None:
            super().__init__()
            self.forks = [True] * n
            self.queue: list[tuple[int, Any]] = []

        def receive(self, message: Any, sender: Any) -> None:
            kind, i = message
            if kind == "request":
                self.queue.append((i, sender))
                self._grant()
            else:  # release
                self.forks[i] = True
                self.forks[(i + 1) % n] = True
                self._grant()

        def _grant(self) -> None:
            remaining = []
            for i, sender in self.queue:
                left, right = i, (i + 1) % n
                if self.forks[left] and self.forks[right]:
                    self.forks[left] = self.forks[right] = False
                    sender.tell(("granted",), sender=self.self_ref)
                else:
                    remaining.append((i, sender))
            self.queue = remaining

    class Philosopher(Actor):
        def __init__(self, i: int, waiter: Any) -> None:
            super().__init__()
            self.i = i
            self.waiter = waiter
            self.meals = 0

        def pre_start(self) -> None:
            self.waiter.tell(("request", self.i), sender=self.self_ref)

        def receive(self, message: Any, sender: Any) -> None:
            if message[0] == "granted":
                self.meals += 1
                with count_lock:
                    eaten[0] += 1
                    finished = eaten[0] >= total
                self.waiter.tell(("release", self.i), sender=self.self_ref)
                if finished:
                    done.set()
                elif self.meals < meals:
                    self.waiter.tell(("request", self.i),
                                     sender=self.self_ref)

    count_lock = threading.Lock()

    with ActorSystem(workers=4, profiler=profiler) as system:
        waiter = system.spawn(Waiter, name="waiter")
        for i in range(n):
            system.spawn(Philosopher, i, waiter, name=f"phil-{i}")
        done.wait(timeout=30)
        system.drain(timeout=10)
    return eaten[0]


def run_coroutine_philosophers(n: int = 5, meals: int = 10,
                               profiler=None) -> int:
    """Cooperative philosophers: forks as CoSemaphores, ordered pickup."""
    from ..coroutines import CoScheduler, CoSemaphore

    forks = [CoSemaphore(1) for _ in range(n)]
    eaten = [0]

    def philosopher(i: int):
        a, b = sorted((i, (i + 1) % n))
        for _ in range(meals):
            yield from forks[a].acquire()
            yield from forks[b].acquire()
            eaten[0] += 1
            yield from forks[b].release()
            yield from forks[a].release()

    sched = CoScheduler(profiler=profiler)
    for i in range(n):
        sched.spawn(philosopher, i, name=f"phil-{i}")
    sched.run()
    return eaten[0]
