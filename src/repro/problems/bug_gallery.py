"""The concurrency-bug gallery — the course's bug-study homework.

§IV.C: "students search for and study different concurrency-related
bugs (mainly through the open source MySQL bug report database)".  The
real database is unavailable offline, so the gallery reproduces the
*bug patterns* that literature on that very corpus identified as
minimal kernel programs, each paired with the tool that catches it and
the canonical fix.  Two corpora feed it:

* Lu et al.'s shared-memory characterization — atomicity violations,
  order violations, deadlocks;
* Torres Lopez et al.'s actor-bug taxonomy — message-order violations,
  bad interleavings of message handlers, memory-in-message races, and
  behavior (become) mismatches.

Every entry is a :class:`BugSpec` with a buggy program, a fixed
program, a checker that demonstrates the difference, and the classroom
story.  Message-protocol entries additionally carry the
:class:`~repro.obs.Protocol` spec that flags them online
(:func:`detect_bug` attaches it via
:func:`~repro.obs.protocol.protocol_bus`).  Used by
`examples/bughunt.py`, the test suite, and available as course
material via :func:`gallery`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Optional

from ..core import (Access, AccessKind, Acquire, DeliveryPolicy, Mailbox,
                    Notify, Pause, Receive, Release, Scheduler, Send,
                    SimLock, SimMonitor, Wait)
from ..obs.protocol import Protocol, protocol_bus
from ..verify import explore, find_races_program
from .single_lane_bridge import bridge_program

__all__ = ["BugSpec", "gallery", "check_bug", "detect_bug", "BUG_IDS"]


@dataclass(frozen=True)
class BugSpec:
    """One catalogued concurrency bug pattern."""

    bug_id: str
    #: atomicity | order | deadlock | liveness | safety (Lu et al.) or
    #: message-order | message-interleaving | memory-in-message |
    #: behavior (Torres Lopez et al.)
    category: str
    title: str
    story: str
    buggy: Callable[[Scheduler], Any]
    fixed: Callable[[Scheduler], Any]
    #: predicate over an ExplorationResult: True = the bug manifests
    manifests: Callable[[Any], bool]
    #: hazard kinds at least one of which the monitor bus must report
    #: when exploring the buggy program (the monitor regression fixture)
    hazards: tuple[str, ...] = ()
    #: conformance spec that flags this entry online, when the bug is a
    #: protocol violation (:func:`detect_bug` adds a ProtocolMonitor
    #: for it; the fixed twin must stay silent under the same spec)
    protocol: Optional[Protocol] = None


# ---------------------------------------------------------------------------
# atomicity violation: check-then-act
# ---------------------------------------------------------------------------

def _cta_buggy(sched: Scheduler):
    state = {"slots": 1, "granted": 0}

    def worker(name):
        yield Access("slots", AccessKind.READ)
        if state["slots"] > 0:
            yield Access("slots", AccessKind.WRITE)   # the hole
            state["slots"] -= 1
            state["granted"] += 1
    sched.spawn(worker, "a")
    sched.spawn(worker, "b")
    return lambda: (state["slots"], state["granted"])


def _cta_fixed(sched: Scheduler):
    lock = SimLock("slots")
    state = {"slots": 1, "granted": 0}

    def worker(name):
        yield Acquire(lock)
        if state["slots"] > 0:
            state["slots"] -= 1
            state["granted"] += 1
        yield Release(lock)
    sched.spawn(worker, "a")
    sched.spawn(worker, "b")
    return lambda: (state["slots"], state["granted"])


# ---------------------------------------------------------------------------
# order violation: use before initialization
# ---------------------------------------------------------------------------

def _order_buggy(sched: Scheduler):
    state = {"config": None, "used": None}

    def initializer():
        yield Pause("startup work")
        yield Access("config", AccessKind.WRITE)
        state["config"] = {"timeout": 30}

    def user():
        yield Pause("racing ahead")
        yield Access("config", AccessKind.READ)
        config = state["config"]
        state["used"] = None if config is None else config["timeout"]
    sched.spawn(initializer, name="init")
    sched.spawn(user, name="user")
    return lambda: state["used"]


def _order_fixed(sched: Scheduler):
    monitor = SimMonitor("config-ready")
    state = {"config": None, "used": None}

    def initializer():
        yield Pause("startup work")
        yield Acquire(monitor)
        state["config"] = {"timeout": 30}
        yield Notify(monitor, all=True)
        yield Release(monitor)

    def user():
        yield Acquire(monitor)
        while state["config"] is None:
            yield Wait(monitor)
        yield Release(monitor)
        state["used"] = state["config"]["timeout"]
    sched.spawn(initializer, name="init")
    sched.spawn(user, name="user")
    return lambda: state["used"]


# ---------------------------------------------------------------------------
# deadlock: inconsistent lock ordering (classic transfer bug)
# ---------------------------------------------------------------------------

def _transfer_buggy(sched: Scheduler):
    accounts = {"a": SimLock("account-a"), "b": SimLock("account-b")}
    balances = {"a": 100, "b": 100}

    def transfer(src, dst, amount):
        yield Acquire(accounts[src])
        yield Pause("mid-transfer")
        yield Acquire(accounts[dst])
        balances[src] -= amount
        balances[dst] += amount
        yield Release(accounts[dst])
        yield Release(accounts[src])
    sched.spawn(transfer, "a", "b", 10, name="a-to-b")
    sched.spawn(transfer, "b", "a", 20, name="b-to-a")
    return lambda: (balances["a"], balances["b"])


def _transfer_fixed(sched: Scheduler):
    accounts = {"a": SimLock("account-a"), "b": SimLock("account-b")}
    balances = {"a": 100, "b": 100}

    def transfer(src, dst, amount):
        first, second = sorted((src, dst))       # global lock order
        yield Acquire(accounts[first])
        yield Pause("mid-transfer")
        yield Acquire(accounts[second])
        balances[src] -= amount
        balances[dst] += amount
        yield Release(accounts[second])
        yield Release(accounts[first])
    sched.spawn(transfer, "a", "b", 10, name="a-to-b")
    sched.spawn(transfer, "b", "a", 20, name="b-to-a")
    return lambda: (balances["a"], balances["b"])


# ---------------------------------------------------------------------------
# liveness: lost wakeup (notify before wait, no guard loop)
# ---------------------------------------------------------------------------

def _wakeup_buggy(sched: Scheduler):
    monitor = SimMonitor("signal")
    state = {"ready": False, "observed": False}

    def producer():
        yield Acquire(monitor)
        yield Access("ready", AccessKind.WRITE)
        state["ready"] = True
        yield Notify(monitor, all=True)
        yield Release(monitor)

    def consumer():
        # BUG: the flag is checked OUTSIDE the monitor; the notify can
        # land in the window between the check and the wait, and nobody
        # will ever notify again — the consumer sleeps forever.
        yield Access("ready", AccessKind.READ)
        if not state["ready"]:
            yield Acquire(monitor)
            yield Wait(monitor)
            yield Release(monitor)
        state["observed"] = state["ready"]
    sched.spawn(producer, name="producer")
    sched.spawn(consumer, name="consumer")
    return lambda: state["observed"]


def _wakeup_fixed(sched: Scheduler):
    monitor = SimMonitor("signal")
    state = {"ready": False, "observed": False}

    def producer():
        yield Acquire(monitor)
        state["ready"] = True
        yield Notify(monitor, all=True)
        yield Release(monitor)

    def consumer():
        yield Pause("arrives late")
        yield Acquire(monitor)
        while not state["ready"]:
            yield Wait(monitor)
        state["observed"] = True
        yield Release(monitor)
    sched.spawn(producer, name="producer")
    sched.spawn(consumer, name="consumer")
    return lambda: state["observed"]


# ---------------------------------------------------------------------------
# Torres Lopez taxonomy: message-order violation (use before INIT)
# ---------------------------------------------------------------------------

def _msgorder_buggy(sched: Scheduler):
    worker_mb = Mailbox("worker", policy=DeliveryPolicy.ARBITRARY)
    state = {"config": None, "results": []}

    def booter():
        yield Send(worker_mb, ("init", 30))

    def client():
        yield Send(worker_mb, ("work", 1))

    def worker():
        for _ in range(2):
            msg = yield Receive(worker_mb)
            if msg[0] == "init":
                state["config"] = msg[1]
            else:
                # BUG: a work request delivered before init computes
                # with the missing configuration
                state["results"].append(state["config"])
    sched.spawn(booter, name="booter")
    sched.spawn(client, name="client")
    sched.spawn(worker, name="worker")
    return lambda: tuple(state["results"])


def _msgorder_fixed(sched: Scheduler):
    worker_mb = Mailbox("worker", policy=DeliveryPolicy.ARBITRARY)
    state = {"config": None, "results": []}

    def booter():
        yield Send(worker_mb, ("init", 30))

    def client():
        yield Send(worker_mb, ("work", 1))

    def worker():
        # selective receive: refuse work until the init arrived
        msg = yield Receive(worker_mb, matcher=lambda m: m[0] == "init")
        state["config"] = msg[1]
        yield Receive(worker_mb)
        state["results"].append(state["config"])
    sched.spawn(booter, name="booter")
    sched.spawn(client, name="client")
    sched.spawn(worker, name="worker")
    return lambda: tuple(state["results"])


_MSGORDER_PROTOCOL = Protocol("boot", "INIT -> WORK*", parties=("worker",))


# ---------------------------------------------------------------------------
# Torres Lopez taxonomy: bad interleaving of message handlers
# (two transaction sessions interleave on one store)
# ---------------------------------------------------------------------------

def _txn_client(db_mb, n):
    def client():
        yield Send(db_mb, ("begin",))
        yield Send(db_mb, ("add", n))
        yield Send(db_mb, ("commit",))
    return client


def _txn_worker(db_mb, state):
    def worker():
        for _ in range(6):
            msg = yield Receive(db_mb)
            if msg[0] == "begin":
                state["current"] = 0
            elif msg[0] == "add":
                state["current"] += msg[1]
            else:
                state["log"].append(state["current"])
    return worker


def _txn_buggy(sched: Scheduler):
    # FIFO delivery: corruption comes purely from the two clients'
    # deposits interleaving, not from mailbox reordering
    db_mb = Mailbox("db", policy=DeliveryPolicy.FIFO)
    state = {"current": 0, "log": []}
    sched.spawn(_txn_client(db_mb, 1), name="alice")
    sched.spawn(_txn_client(db_mb, 2), name="bob")
    sched.spawn(_txn_worker(db_mb, state), name="db")
    return lambda: tuple(sorted(state["log"]))


def _txn_fixed(sched: Scheduler):
    db_mb = Mailbox("db", policy=DeliveryPolicy.FIFO)
    state = {"current": 0, "log": []}
    lock = SimLock("session")

    def client(n):
        # one session at a time: the lock serializes whole BEGIN ->
        # ADD -> COMMIT sequences, so deposits can never interleave
        yield Acquire(lock)
        yield Send(db_mb, ("begin",))
        yield Send(db_mb, ("add", n))
        yield Send(db_mb, ("commit",))
        yield Release(lock)
    sched.spawn(client, 1, name="alice")
    sched.spawn(client, 2, name="bob")
    sched.spawn(_txn_worker(db_mb, state), name="db")
    return lambda: tuple(sorted(state["log"]))


_TXN_PROTOCOL = Protocol("txn", "(BEGIN -> ADD -> COMMIT)*",
                         parties=("db",))


# ---------------------------------------------------------------------------
# Torres Lopez taxonomy: bad interleaving — message-level lost update
# ---------------------------------------------------------------------------

def _rmw_buggy(sched: Scheduler):
    counter_mb = Mailbox("counter", policy=DeliveryPolicy.ARBITRARY)
    state = {"value": 0}

    def counter():
        for _ in range(4):
            msg = yield Receive(counter_mb)
            if msg[0] == "get":
                yield Send(msg[1], ("value", state["value"]))
            else:
                state["value"] = msg[1]

    def incrementer(name):
        reply_mb = Mailbox(name, policy=DeliveryPolicy.FIFO)
        yield Send(counter_mb, ("get", reply_mb))
        msg = yield Receive(reply_mb)
        # BUG: read-modify-write split across two messages — another
        # client's GET can interleave and both PUT the same value
        yield Send(counter_mb, ("put", msg[1] + 1))
    sched.spawn(incrementer, "inc-a", name="inc-a")
    sched.spawn(incrementer, "inc-b", name="inc-b")
    sched.spawn(counter, name="counter")
    return lambda: state["value"]


def _rmw_fixed(sched: Scheduler):
    counter_mb = Mailbox("counter", policy=DeliveryPolicy.ARBITRARY)
    state = {"value": 0}

    def counter():
        for _ in range(2):
            yield Receive(counter_mb)
            state["value"] += 1

    def incrementer():
        # the whole read-modify-write lives in ONE message handler
        yield Send(counter_mb, ("incr",))
    sched.spawn(incrementer, name="inc-a")
    sched.spawn(incrementer, name="inc-b")
    sched.spawn(counter, name="counter")
    return lambda: state["value"]


_RMW_PROTOCOL = Protocol("rmw", "(GET -> PUT)*", parties=("counter",))


# ---------------------------------------------------------------------------
# Torres Lopez taxonomy: memory-in-message race
# ---------------------------------------------------------------------------

def _mim_buggy(sched: Scheduler):
    mb = Mailbox("sink", policy=DeliveryPolicy.FIFO)
    buf = {"n": 0}
    state = {"seen": None}

    def producer():
        yield Send(mb, buf)            # BUG: live mutable object
        yield Access("buf", AccessKind.WRITE)
        buf["n"] = 1                   # keeps mutating after the send

    def consumer():
        msg = yield Receive(mb)
        yield Access("buf", AccessKind.READ)
        state["seen"] = msg["n"]
    sched.spawn(producer, name="producer")
    sched.spawn(consumer, name="consumer")
    return lambda: state["seen"]


def _mim_fixed(sched: Scheduler):
    mb = Mailbox("sink", policy=DeliveryPolicy.FIFO)
    buf = {"n": 0}
    state = {"seen": None}

    def producer():
        yield Send(mb, dict(buf))      # snapshot crosses the boundary
        buf["n"] = 1                   # private again: no annotation

    def consumer():
        msg = yield Receive(mb)
        state["seen"] = msg["n"]
    sched.spawn(producer, name="producer")
    sched.spawn(consumer, name="consumer")
    return lambda: state["seen"]


# ---------------------------------------------------------------------------
# Torres Lopez taxonomy: behavior (become) mismatch
# ---------------------------------------------------------------------------

def _become_buggy(sched: Scheduler):
    account_mb = Mailbox("account", policy=DeliveryPolicy.PER_SENDER_FIFO)
    state = {"balance": 0, "closed": False}

    def depositor():
        yield Send(account_mb, ("deposit", 10))

    def closer():
        yield Send(account_mb, ("close",))

    def account():
        for _ in range(2):
            msg = yield Receive(account_mb)
            if msg[0] == "close":
                state["closed"] = True          # become: closed
            elif not state["closed"]:
                state["balance"] += msg[1]
            # BUG: a deposit delivered after close is silently dropped
            # by the closed behavior — money sent, never booked
    sched.spawn(depositor, name="depositor")
    sched.spawn(closer, name="closer")
    sched.spawn(account, name="account")
    return lambda: state["balance"]


def _become_fixed(sched: Scheduler):
    account_mb = Mailbox("account", policy=DeliveryPolicy.PER_SENDER_FIFO)
    state = {"balance": 0, "closed": False}

    def coordinator():
        # the close is sequenced behind the deposit by the same sender,
        # so per-sender FIFO guarantees the behavior switch comes last
        yield Send(account_mb, ("deposit", 10))
        yield Send(account_mb, ("close",))

    def account():
        for _ in range(2):
            msg = yield Receive(account_mb)
            if msg[0] == "close":
                state["closed"] = True
            elif not state["closed"]:
                state["balance"] += msg[1]
    sched.spawn(coordinator, name="coordinator")
    sched.spawn(account, name="account")
    return lambda: state["balance"]


_BECOME_PROTOCOL = Protocol("account", "DEPOSIT* -> CLOSE",
                            parties=("account",))


# ---------------------------------------------------------------------------
# Torres Lopez taxonomy: pipelined requests break reply matching
# (at-most-one-outstanding)
# ---------------------------------------------------------------------------

def _pipeline_buggy(sched: Scheduler):
    server_mb = Mailbox("server", policy=DeliveryPolicy.ARBITRARY)
    client_mb = Mailbox("client", policy=DeliveryPolicy.FIFO)
    state = {"replies": []}

    def server():
        for _ in range(2):
            msg = yield Receive(server_mb)
            yield Send(client_mb, ("reply", msg[1]))

    def client():
        # BUG: both requests in flight at once — the server's mailbox
        # may deliver them in either order, and the client matches
        # replies to requests positionally
        yield Send(server_mb, ("req", 1))
        yield Send(server_mb, ("req", 2))
        for _ in range(2):
            msg = yield Receive(client_mb)
            state["replies"].append(msg[1])
    sched.spawn(client, name="client")
    sched.spawn(server, name="server")
    return lambda: tuple(state["replies"])


def _pipeline_fixed(sched: Scheduler):
    server_mb = Mailbox("server", policy=DeliveryPolicy.ARBITRARY)
    client_mb = Mailbox("client", policy=DeliveryPolicy.FIFO)
    state = {"replies": []}

    def server():
        for _ in range(2):
            msg = yield Receive(server_mb)
            yield Send(client_mb, ("reply", msg[1]))

    def client():
        # at most one outstanding request: wait for each reply
        for n in (1, 2):
            yield Send(server_mb, ("req", n))
            msg = yield Receive(client_mb)
            state["replies"].append(msg[1])
    sched.spawn(client, name="client")
    sched.spawn(server, name="server")
    return lambda: tuple(state["replies"])


_PIPELINE_PROTOCOL = Protocol(
    "lockstep", "(REQ -> REPLY)*", parties=("server", "client"))


# ---------------------------------------------------------------------------
# Torres Lopez taxonomy: broken turn-taking
# ---------------------------------------------------------------------------

def _turn_buggy(sched: Scheduler):
    merge_mb = Mailbox("merge", policy=DeliveryPolicy.FIFO)
    state = {"order": []}

    def speaker(token):
        for _ in range(2):
            # BUG: no turn discipline — both sides deposit whenever
            # they are scheduled, so the merged stream can stutter
            yield Send(merge_mb, (token,))

    def listener():
        for _ in range(4):
            msg = yield Receive(merge_mb)
            state["order"].append(msg[0])
    sched.spawn(speaker, "ping", name="pinger")
    sched.spawn(speaker, "pong", name="ponger")
    sched.spawn(listener, name="listener")
    return lambda: tuple(state["order"])


def _turn_fixed(sched: Scheduler):
    merge_mb = Mailbox("merge", policy=DeliveryPolicy.FIFO)
    go_ping = Mailbox("go-ping", policy=DeliveryPolicy.FIFO)
    go_pong = Mailbox("go-pong", policy=DeliveryPolicy.FIFO)
    state = {"order": []}

    def pinger():
        for _ in range(2):
            yield Send(merge_mb, ("ping",))
            yield Send(go_pong, ("go",))
            yield Receive(go_ping)

    def ponger():
        for _ in range(2):
            yield Receive(go_pong)
            yield Send(merge_mb, ("pong",))
            yield Send(go_ping, ("go",))

    def listener():
        for _ in range(4):
            msg = yield Receive(merge_mb)
            state["order"].append(msg[0])
    sched.spawn(pinger, name="pinger")
    sched.spawn(ponger, name="ponger")
    sched.spawn(listener, name="listener")
    return lambda: tuple(state["order"])


_TURN_PROTOCOL = Protocol("rally", "(PING -> PONG)*", parties=("merge",))


def _stutters(order: tuple) -> bool:
    return any(a == b for a, b in zip(order, order[1:]))


# ---------------------------------------------------------------------------
# the catalogue
# ---------------------------------------------------------------------------

_GALLERY = (
    BugSpec(
        bug_id="atomicity-check-then-act",
        category="atomicity",
        title="check-then-act on a shared counter",
        story="Two sessions both see the last slot free and both take "
              "it — the MySQL corpus's most common single-variable "
              "atomicity violation shape.",
        buggy=_cta_buggy, fixed=_cta_fixed,
        manifests=lambda res: any(slots < 0 or granted > 1
                                  for slots, granted in res.observations()),
        hazards=("data-race",),
    ),
    BugSpec(
        bug_id="order-use-before-init",
        category="order",
        title="use of state before its initializer ran",
        story="A worker thread dereferences configuration the startup "
              "thread has not written yet; passes in testing because "
              "startup usually wins the race.",
        buggy=_order_buggy, fixed=_order_fixed,
        manifests=lambda res: None in res.observations(),
        hazards=("data-race",),
    ),
    BugSpec(
        bug_id="deadlock-lock-ordering",
        category="deadlock",
        title="opposite-order account locking",
        story="Two concurrent transfers lock source then destination; "
              "opposite directions deadlock — the textbook ABBA hang.",
        buggy=_transfer_buggy, fixed=_transfer_fixed,
        manifests=lambda res: res.outcomes.get("deadlock", 0) > 0,
        hazards=("deadlock", "lock-order-inversion"),
    ),
    BugSpec(
        bug_id="liveness-lost-wakeup",
        category="liveness",
        title="IF-guarded wait loses the wakeup",
        story="The consumer guards its WAIT with IF instead of WHILE "
              "(misconception S6's cousin): a notify delivered before "
              "the wait leaves it sleeping forever.",
        buggy=_wakeup_buggy, fixed=_wakeup_fixed,
        manifests=lambda res: res.outcomes.get("deadlock", 0) > 0
        or any(obs is False for obs in res.observations()),
        hazards=("lost-wakeup", "deadlock"),
    ),
    BugSpec(
        bug_id="safety-bridge-barge",
        category="safety",
        title="IF-guarded bridge entry admits both directions",
        story="The Test-1 bridge with the guard's WHILE replaced by IF: "
              "a notified car re-enters without re-checking the "
              "opposite-direction count, and the collision sensor "
              "trips — the safety-violation twin of the lost wakeup.",
        buggy=bridge_program(cars=(("redCarA", "red"), ("blueCarA", "blue")),
                             crossings=2, guard="if"),
        fixed=bridge_program(cars=(("redCarA", "red"), ("blueCarA", "blue")),
                             crossings=2, guard="while"),
        # the sensor releases the monitor before killing the car, so
        # violating runs end "failed" and the surviving cars drive on
        manifests=lambda res: res.outcomes.get("failed", 0) > 0
        or any(audit is not None for audit, _ in res.observations()),
        hazards=("task-failure",),
    ),
    BugSpec(
        bug_id="msgorder-init-work",
        category="message-order",
        title="work request overtakes the init message",
        story="Torres Lopez message-order violation: the booter's INIT "
              "and a client's WORK race to the worker's mailbox; a "
              "WORK delivered first computes with missing "
              "configuration.  The fix is selective receive.",
        buggy=_msgorder_buggy, fixed=_msgorder_fixed,
        manifests=lambda res: any(None in obs
                                  for obs in res.observations()),
        hazards=("protocol-violation",),
        protocol=_MSGORDER_PROTOCOL,
    ),
    BugSpec(
        bug_id="interleave-transaction",
        category="message-interleaving",
        title="two BEGIN/ADD/COMMIT sessions interleave",
        story="Torres Lopez bad message interleaving: each client's "
              "session is correct in isolation, but a second BEGIN "
              "arriving mid-session resets the accumulator and a "
              "commit books the other session's total.  The fix "
              "serializes whole sessions.",
        buggy=_txn_buggy, fixed=_txn_fixed,
        manifests=lambda res: any(obs != (1, 2)
                                  for obs in res.observations()),
        hazards=("protocol-violation",),
        protocol=_TXN_PROTOCOL,
    ),
    BugSpec(
        bug_id="interleave-rmw",
        category="message-interleaving",
        title="message-level read-modify-write loses an update",
        story="Torres Lopez bad message interleaving, lost-update "
              "shape: GET and PUT are separate messages, so two "
              "increments can read the same value and both write "
              "value+1.  The fix makes the increment one message.",
        buggy=_rmw_buggy, fixed=_rmw_fixed,
        manifests=lambda res: any(obs < 2 for obs in res.observations()),
        hazards=("protocol-violation",),
        protocol=_RMW_PROTOCOL,
    ),
    BugSpec(
        bug_id="memory-in-message",
        category="memory-in-message",
        title="mutable object escapes through a message",
        story="Torres Lopez memory-in-message race: the producer keeps "
              "mutating the dict it already sent, so what the consumer "
              "reads depends on the schedule.  The fix sends a "
              "snapshot across the boundary.",
        buggy=_mim_buggy, fixed=_mim_fixed,
        manifests=lambda res: len(res.observations()) > 1,
        hazards=("data-race",),
    ),
    BugSpec(
        bug_id="become-closed-account",
        category="behavior",
        title="deposit delivered after the account became closed",
        story="Torres Lopez behavior mismatch: the CLOSE message "
              "switches the account to its closed behavior, and a "
              "deposit racing with it is silently dropped — money "
              "sent, never booked.  The fix sequences the close "
              "behind the deposit on one sender.",
        buggy=_become_buggy, fixed=_become_fixed,
        manifests=lambda res: any(obs == 0 for obs in res.observations()),
        hazards=("protocol-violation",),
        protocol=_BECOME_PROTOCOL,
    ),
    BugSpec(
        bug_id="pipeline-outstanding",
        category="message-order",
        title="pipelined requests break positional reply matching",
        story="Torres Lopez message-order violation, request/reply "
              "shape: with two requests in flight the server may "
              "serve them in either order, and the client matches "
              "replies to requests positionally.  The fix keeps at "
              "most one request outstanding.",
        buggy=_pipeline_buggy, fixed=_pipeline_fixed,
        manifests=lambda res: any(obs != (1, 2)
                                  for obs in res.observations()),
        hazards=("protocol-violation",),
        protocol=_PIPELINE_PROTOCOL,
    ),
    BugSpec(
        bug_id="turntaking-pingpong",
        category="message-interleaving",
        title="rally without a turn token stutters",
        story="Torres Lopez bad message interleaving, turn-taking "
              "shape: both speakers deposit whenever scheduled, so "
              "the merged stream can show the same side twice in a "
              "row.  The fix passes an explicit turn token.",
        buggy=_turn_buggy, fixed=_turn_fixed,
        manifests=lambda res: any(_stutters(obs)
                                  for obs in res.observations()),
        hazards=("protocol-violation",),
        protocol=_TURN_PROTOCOL,
    ),
)

BUG_IDS = tuple(spec.bug_id for spec in _GALLERY)


def gallery() -> tuple[BugSpec, ...]:
    """All catalogued bug patterns."""
    return _GALLERY


def check_bug(spec: BugSpec, max_runs: int = 30_000,
              reduce: str = "all") -> dict[str, Any]:
    """Demonstrate one gallery entry: the bug manifests in the buggy
    program under exhaustive exploration and not in the fixed one.

    Returns a report with both exploration summaries and, for
    atomicity entries, whether the race detector flagged the buggy
    version.  ``reduce`` passes through to :func:`repro.verify.explore`.
    """
    buggy = explore(spec.buggy, max_runs=max_runs, reduce=reduce)
    fixed = explore(spec.fixed, max_runs=max_runs, reduce=reduce)
    report = {
        "bug_id": spec.bug_id,
        "buggy_manifests": spec.manifests(buggy),
        "fixed_manifests": spec.manifests(fixed),
        "buggy_runs": buggy.runs,
        "fixed_runs": fixed.runs,
    }
    if spec.category == "atomicity":
        report["race_found"] = find_races_program(spec.buggy) is not None
        report["race_in_fix"] = find_races_program(spec.fixed) is not None
    return report


def detect_bug(spec: BugSpec, max_runs: int = 30_000,
               reduce: str = "all") -> dict[str, Any]:
    """Run one gallery entry under the online monitor bus.

    Explores the buggy program with ``monitors=True`` and reports the
    hazard kinds the bus raised, whether they cover the entry's
    expected ``spec.hazards``, and that the fixed program stays clean
    of error/warning hazards.  This is the gallery's role as a monitor
    regression fixture: every specimen must be flagged by at least one
    shipped detector.
    """
    monitors: Any = True
    if spec.protocol is not None:
        # fresh bus per run: default detectors + this entry's
        # conformance spec, each run starting from the initial state
        monitors = lambda: protocol_bus([spec.protocol])  # noqa: E731
    buggy = explore(spec.buggy, max_runs=max_runs, reduce=reduce,
                    monitors=monitors)
    fixed = explore(spec.fixed, max_runs=max_runs, reduce=reduce,
                    monitors=monitors)
    buggy_kinds = {hz.kind for hz in buggy.hazards}
    fixed_serious = {hz.kind for hz in fixed.hazards
                     if hz.severity in ("error", "warning")}
    return {
        "bug_id": spec.bug_id,
        "hazard_kinds": sorted(buggy_kinds),
        "expected": sorted(spec.hazards),
        "detected": bool(buggy_kinds & set(spec.hazards)),
        "fixed_hazard_kinds": sorted(fixed_serious),
        "fixed_clean": not fixed_serious,
    }
