"""The concurrency-bug gallery — the course's bug-study homework.

§IV.C: "students search for and study different concurrency-related
bugs (mainly through the open source MySQL bug report database)".  The
real database is unavailable offline, so the gallery reproduces the
*bug patterns* that literature on that very corpus identified (Lu et
al.'s characterization: atomicity violations, order violations,
deadlocks) as minimal kernel programs, each paired with the tool that
catches it and the canonical fix.

Every entry is a :class:`BugSpec` with a buggy program, a fixed
program, a checker that demonstrates the difference, and the classroom
story.  Used by `examples/bughunt.py`, the test suite, and available
as course material via :func:`gallery`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

from ..core import (Access, AccessKind, Acquire, Notify, Pause,
                    Release, Scheduler, SimLock, SimMonitor, Wait)
from ..verify import explore, find_races_program
from .single_lane_bridge import bridge_program

__all__ = ["BugSpec", "gallery", "check_bug", "detect_bug", "BUG_IDS"]


@dataclass(frozen=True)
class BugSpec:
    """One catalogued concurrency bug pattern."""

    bug_id: str
    category: str     # atomicity | order | deadlock | liveness | safety
    title: str
    story: str
    buggy: Callable[[Scheduler], Any]
    fixed: Callable[[Scheduler], Any]
    #: predicate over an ExplorationResult: True = the bug manifests
    manifests: Callable[[Any], bool]
    #: hazard kinds at least one of which the monitor bus must report
    #: when exploring the buggy program (the monitor regression fixture)
    hazards: tuple[str, ...] = ()


# ---------------------------------------------------------------------------
# atomicity violation: check-then-act
# ---------------------------------------------------------------------------

def _cta_buggy(sched: Scheduler):
    state = {"slots": 1, "granted": 0}

    def worker(name):
        yield Access("slots", AccessKind.READ)
        if state["slots"] > 0:
            yield Access("slots", AccessKind.WRITE)   # the hole
            state["slots"] -= 1
            state["granted"] += 1
    sched.spawn(worker, "a")
    sched.spawn(worker, "b")
    return lambda: (state["slots"], state["granted"])


def _cta_fixed(sched: Scheduler):
    lock = SimLock("slots")
    state = {"slots": 1, "granted": 0}

    def worker(name):
        yield Acquire(lock)
        if state["slots"] > 0:
            state["slots"] -= 1
            state["granted"] += 1
        yield Release(lock)
    sched.spawn(worker, "a")
    sched.spawn(worker, "b")
    return lambda: (state["slots"], state["granted"])


# ---------------------------------------------------------------------------
# order violation: use before initialization
# ---------------------------------------------------------------------------

def _order_buggy(sched: Scheduler):
    state = {"config": None, "used": None}

    def initializer():
        yield Pause("startup work")
        yield Access("config", AccessKind.WRITE)
        state["config"] = {"timeout": 30}

    def user():
        yield Pause("racing ahead")
        yield Access("config", AccessKind.READ)
        config = state["config"]
        state["used"] = None if config is None else config["timeout"]
    sched.spawn(initializer, name="init")
    sched.spawn(user, name="user")
    return lambda: state["used"]


def _order_fixed(sched: Scheduler):
    monitor = SimMonitor("config-ready")
    state = {"config": None, "used": None}

    def initializer():
        yield Pause("startup work")
        yield Acquire(monitor)
        state["config"] = {"timeout": 30}
        yield Notify(monitor, all=True)
        yield Release(monitor)

    def user():
        yield Acquire(monitor)
        while state["config"] is None:
            yield Wait(monitor)
        yield Release(monitor)
        state["used"] = state["config"]["timeout"]
    sched.spawn(initializer, name="init")
    sched.spawn(user, name="user")
    return lambda: state["used"]


# ---------------------------------------------------------------------------
# deadlock: inconsistent lock ordering (classic transfer bug)
# ---------------------------------------------------------------------------

def _transfer_buggy(sched: Scheduler):
    accounts = {"a": SimLock("account-a"), "b": SimLock("account-b")}
    balances = {"a": 100, "b": 100}

    def transfer(src, dst, amount):
        yield Acquire(accounts[src])
        yield Pause("mid-transfer")
        yield Acquire(accounts[dst])
        balances[src] -= amount
        balances[dst] += amount
        yield Release(accounts[dst])
        yield Release(accounts[src])
    sched.spawn(transfer, "a", "b", 10, name="a-to-b")
    sched.spawn(transfer, "b", "a", 20, name="b-to-a")
    return lambda: (balances["a"], balances["b"])


def _transfer_fixed(sched: Scheduler):
    accounts = {"a": SimLock("account-a"), "b": SimLock("account-b")}
    balances = {"a": 100, "b": 100}

    def transfer(src, dst, amount):
        first, second = sorted((src, dst))       # global lock order
        yield Acquire(accounts[first])
        yield Pause("mid-transfer")
        yield Acquire(accounts[second])
        balances[src] -= amount
        balances[dst] += amount
        yield Release(accounts[second])
        yield Release(accounts[first])
    sched.spawn(transfer, "a", "b", 10, name="a-to-b")
    sched.spawn(transfer, "b", "a", 20, name="b-to-a")
    return lambda: (balances["a"], balances["b"])


# ---------------------------------------------------------------------------
# liveness: lost wakeup (notify before wait, no guard loop)
# ---------------------------------------------------------------------------

def _wakeup_buggy(sched: Scheduler):
    monitor = SimMonitor("signal")
    state = {"ready": False, "observed": False}

    def producer():
        yield Acquire(monitor)
        yield Access("ready", AccessKind.WRITE)
        state["ready"] = True
        yield Notify(monitor, all=True)
        yield Release(monitor)

    def consumer():
        # BUG: the flag is checked OUTSIDE the monitor; the notify can
        # land in the window between the check and the wait, and nobody
        # will ever notify again — the consumer sleeps forever.
        yield Access("ready", AccessKind.READ)
        if not state["ready"]:
            yield Acquire(monitor)
            yield Wait(monitor)
            yield Release(monitor)
        state["observed"] = state["ready"]
    sched.spawn(producer, name="producer")
    sched.spawn(consumer, name="consumer")
    return lambda: state["observed"]


def _wakeup_fixed(sched: Scheduler):
    monitor = SimMonitor("signal")
    state = {"ready": False, "observed": False}

    def producer():
        yield Acquire(monitor)
        state["ready"] = True
        yield Notify(monitor, all=True)
        yield Release(monitor)

    def consumer():
        yield Pause("arrives late")
        yield Acquire(monitor)
        while not state["ready"]:
            yield Wait(monitor)
        state["observed"] = True
        yield Release(monitor)
    sched.spawn(producer, name="producer")
    sched.spawn(consumer, name="consumer")
    return lambda: state["observed"]


# ---------------------------------------------------------------------------
# the catalogue
# ---------------------------------------------------------------------------

_GALLERY = (
    BugSpec(
        bug_id="atomicity-check-then-act",
        category="atomicity",
        title="check-then-act on a shared counter",
        story="Two sessions both see the last slot free and both take "
              "it — the MySQL corpus's most common single-variable "
              "atomicity violation shape.",
        buggy=_cta_buggy, fixed=_cta_fixed,
        manifests=lambda res: any(slots < 0 or granted > 1
                                  for slots, granted in res.observations()),
        hazards=("data-race",),
    ),
    BugSpec(
        bug_id="order-use-before-init",
        category="order",
        title="use of state before its initializer ran",
        story="A worker thread dereferences configuration the startup "
              "thread has not written yet; passes in testing because "
              "startup usually wins the race.",
        buggy=_order_buggy, fixed=_order_fixed,
        manifests=lambda res: None in res.observations(),
        hazards=("data-race",),
    ),
    BugSpec(
        bug_id="deadlock-lock-ordering",
        category="deadlock",
        title="opposite-order account locking",
        story="Two concurrent transfers lock source then destination; "
              "opposite directions deadlock — the textbook ABBA hang.",
        buggy=_transfer_buggy, fixed=_transfer_fixed,
        manifests=lambda res: res.outcomes.get("deadlock", 0) > 0,
        hazards=("deadlock", "lock-order-inversion"),
    ),
    BugSpec(
        bug_id="liveness-lost-wakeup",
        category="liveness",
        title="IF-guarded wait loses the wakeup",
        story="The consumer guards its WAIT with IF instead of WHILE "
              "(misconception S6's cousin): a notify delivered before "
              "the wait leaves it sleeping forever.",
        buggy=_wakeup_buggy, fixed=_wakeup_fixed,
        manifests=lambda res: res.outcomes.get("deadlock", 0) > 0
        or any(obs is False for obs in res.observations()),
        hazards=("lost-wakeup", "deadlock"),
    ),
    BugSpec(
        bug_id="safety-bridge-barge",
        category="safety",
        title="IF-guarded bridge entry admits both directions",
        story="The Test-1 bridge with the guard's WHILE replaced by IF: "
              "a notified car re-enters without re-checking the "
              "opposite-direction count, and the collision sensor "
              "trips — the safety-violation twin of the lost wakeup.",
        buggy=bridge_program(cars=(("redCarA", "red"), ("blueCarA", "blue")),
                             crossings=2, guard="if"),
        fixed=bridge_program(cars=(("redCarA", "red"), ("blueCarA", "blue")),
                             crossings=2, guard="while"),
        # the sensor releases the monitor before killing the car, so
        # violating runs end "failed" and the surviving cars drive on
        manifests=lambda res: res.outcomes.get("failed", 0) > 0
        or any(audit is not None for audit, _ in res.observations()),
        hazards=("task-failure",),
    ),
)

BUG_IDS = tuple(spec.bug_id for spec in _GALLERY)


def gallery() -> tuple[BugSpec, ...]:
    """All catalogued bug patterns."""
    return _GALLERY


def check_bug(spec: BugSpec, max_runs: int = 30_000,
              reduce: str = "all") -> dict[str, Any]:
    """Demonstrate one gallery entry: the bug manifests in the buggy
    program under exhaustive exploration and not in the fixed one.

    Returns a report with both exploration summaries and, for
    atomicity entries, whether the race detector flagged the buggy
    version.  ``reduce`` passes through to :func:`repro.verify.explore`.
    """
    buggy = explore(spec.buggy, max_runs=max_runs, reduce=reduce)
    fixed = explore(spec.fixed, max_runs=max_runs, reduce=reduce)
    report = {
        "bug_id": spec.bug_id,
        "buggy_manifests": spec.manifests(buggy),
        "fixed_manifests": spec.manifests(fixed),
        "buggy_runs": buggy.runs,
        "fixed_runs": fixed.runs,
    }
    if spec.category == "atomicity":
        report["race_found"] = find_races_program(spec.buggy) is not None
        report["race_in_fix"] = find_races_program(spec.fixed) is not None
    return report


def detect_bug(spec: BugSpec, max_runs: int = 30_000,
               reduce: str = "all") -> dict[str, Any]:
    """Run one gallery entry under the online monitor bus.

    Explores the buggy program with ``monitors=True`` and reports the
    hazard kinds the bus raised, whether they cover the entry's
    expected ``spec.hazards``, and that the fixed program stays clean
    of error/warning hazards.  This is the gallery's role as a monitor
    regression fixture: every specimen must be flagged by at least one
    shipped detector.
    """
    buggy = explore(spec.buggy, max_runs=max_runs, reduce=reduce,
                    monitors=True)
    fixed = explore(spec.fixed, max_runs=max_runs, reduce=reduce,
                    monitors=True)
    buggy_kinds = {hz.kind for hz in buggy.hazards}
    fixed_serious = {hz.kind for hz in fixed.hazards
                     if hz.severity in ("error", "warning")}
    return {
        "bug_id": spec.bug_id,
        "hazard_kinds": sorted(buggy_kinds),
        "expected": sorted(spec.hazards),
        "detected": bool(buggy_kinds & set(spec.hazards)),
        "fixed_hazard_kinds": sorted(fixed_serious),
        "fixed_clean": not fixed_serious,
    }
