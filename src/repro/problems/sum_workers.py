"""Sum & workers — the course's first pseudocode modeling quiz: split a
summation across workers and combine, demonstrating the lost-update
race when the combine step is unsynchronized.
"""

from __future__ import annotations

from typing import Iterator

from ..core import (Access, AccessKind, Acquire, Effect, Release, Scheduler,
                    SimLock)

__all__ = ["sum_program", "run_threads_sum", "run_actor_sum",
           "run_coroutine_sum", "PSEUDOCODE_RACY", "PSEUDOCODE_SAFE"]

#: quiz version with the classic read-modify-write race.  Note the two
#: statements: ``total = total + amount`` alone would be atomic (the
#: paper: "simple statements are executed atomically"), so the race
#: requires the read and the write to be separate statements.
PSEUDOCODE_RACY = '''\
total = 0

DEFINE work(amount)
  mine = total
  total = mine + amount
ENDDEF

PARA
  work(1)
  work(2)
ENDPARA
PRINT total
'''

#: corrected version with EXC_ACC
PSEUDOCODE_SAFE = '''\
total = 0

DEFINE work(amount)
  EXC_ACC
    total = total + amount
  END_EXC_ACC
ENDDEF

PARA
  work(1)
  work(2)
ENDPARA
PRINT total
'''


def sum_program(amounts: tuple = (1, 2), synchronized: bool = True,
                split_rmw: bool = True):
    """Kernel program: workers add amounts into a shared total.

    With ``synchronized=False`` and ``split_rmw=True`` the read and the
    write of the read-modify-write are separate atomic steps, so the
    explorer finds the lost update and the race detector flags the
    conflicting accesses.  Observation: the final total.
    """

    def program(sched: Scheduler):
        lock = SimLock("total")
        state = {"total": 0}

        def worker(amount: int) -> Iterator[Effect]:
            if synchronized:
                yield Acquire(lock)
            yield Access("total", AccessKind.READ)
            snapshot = state["total"]
            if split_rmw and not synchronized:
                yield Access("total", AccessKind.WRITE)
            state["total"] = snapshot + amount
            if synchronized:
                yield Release(lock)

        for i, amount in enumerate(amounts):
            sched.spawn(worker, amount, name=f"worker-{i}")
        return lambda: state["total"]

    return program


def run_threads_sum(values: range | list = range(1000), workers: int = 4,
                    profiler=None) -> int:
    """Pooled partial sums combined under an atomic."""
    from ..threads import AtomicInteger, ThreadPool

    values = list(values)
    total = AtomicInteger()
    chunk = max(1, len(values) // workers)

    def work(part: list) -> None:
        total.add_and_get(sum(part))

    with ThreadPool(workers, profiler=profiler) as pool:
        futures = [pool.submit(work, values[i:i + chunk])
                   for i in range(0, len(values), chunk)]
        for f in futures:
            f.result()
    return total.get()


def run_actor_sum(values: range | list = range(1000), workers: int = 4,
                  profiler=None) -> int:
    """Scatter-gather: a coordinator fans chunks to worker actors and
    sums their replies."""
    import threading
    from ..actors import Actor, ActorSystem

    values = list(values)
    result = {"total": None}
    done = threading.Event()

    class Worker(Actor):
        def receive(self, message, sender):
            self.context.reply(sum(message))

    class Coordinator(Actor):
        def __init__(self, refs, chunks):
            super().__init__()
            self.refs = refs
            self.chunks = chunks
            self.pending = len(chunks)
            self.total = 0

        def pre_start(self):
            for ref, chunk in zip(self.refs, self.chunks):
                ref.tell(chunk, sender=self.self_ref)

        def receive(self, message, sender):
            self.total += message
            self.pending -= 1
            if self.pending == 0:
                result["total"] = self.total
                done.set()

    chunk = max(1, len(values) // workers)
    chunks = [values[i:i + chunk] for i in range(0, len(values), chunk)]
    with ActorSystem(workers=workers, profiler=profiler) as system:
        refs = [system.spawn(Worker, name=f"sum-worker-{i}")
                for i in range(len(chunks))]
        system.spawn(Coordinator, refs, chunks, name="coordinator")
        done.wait(timeout=30)
    return result["total"]


def run_coroutine_sum(values: range | list = range(1000), workers: int = 4,
                      profiler=None) -> int:
    """Cooperative workers accumulate into a shared cell — no lock
    needed because += happens atomically between yields."""
    from ..coroutines import CoScheduler, pause

    values = list(values)
    state = {"total": 0}
    chunk = max(1, len(values) // workers)

    def worker(part: list):
        for v in part:
            state["total"] += v
            yield pause()

    sched = CoScheduler(profiler=profiler)
    for i in range(0, len(values), chunk):
        sched.spawn(worker, values[i:i + chunk], name=f"worker-{i}")
    sched.run()
    return state["total"]
