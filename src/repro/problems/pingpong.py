"""Ping-pong — the minimal two-mailbox request/reply exchange.

Not a course problem but the canonical message-passing smoke test: a
pinger sends ``ping<i>`` requests to the ponger's mailbox and waits for
each ``pong<i>`` reply before emitting it.  Every step is either a send
or a receive, so the trace is wall-to-wall message traffic — the demo
case for the Chrome-trace exporter's flow arrows (each send pairs with
exactly one delivery) and the mailbox-depth counters.
"""

from __future__ import annotations

from ..core.effects import Emit, Receive, Send
from ..core.mailbox import DeliveryPolicy, Mailbox

__all__ = ["pingpong_program"]


def pingpong_program(rounds: int = 2,
                     policy: DeliveryPolicy = DeliveryPolicy.ARBITRARY):
    """Kernel program factory: ``rounds`` request/reply round trips.

    The pinger emits each reply it receives, so the observable output of
    every schedule is ``pong0 pong1 ...`` — the exchange is fully
    synchronized and the output deterministic, even though the scheduler
    still interleaves the two tasks' steps freely.
    """

    def program(sched):
        ping_box = Mailbox("ping", policy=policy)   # replies, to pinger
        pong_box = Mailbox("pong", policy=policy)   # requests, to ponger

        def pinger():
            for i in range(rounds):
                yield Send(pong_box, f"ping{i}")
                reply = yield Receive(ping_box)
                yield Emit(reply)

        def ponger():
            for _ in range(rounds):
                msg = yield Receive(pong_box)
                yield Send(ping_box, msg.replace("ping", "pong"))

        sched.spawn(pinger, name="pinger")
        sched.spawn(ponger, name="ponger")

    return program
