"""Ping-pong — the minimal two-mailbox request/reply exchange.

Not a course problem but the canonical message-passing smoke test: a
pinger sends ``ping<i>`` requests to the ponger's mailbox and waits for
each ``pong<i>`` reply before emitting it.  Every step is either a send
or a receive, so the trace is wall-to-wall message traffic — the demo
case for the Chrome-trace exporter's flow arrows (each send pairs with
exactly one delivery) and the mailbox-depth counters.
"""

from __future__ import annotations

from ..core.effects import Emit, Receive, Send
from ..core.mailbox import DeliveryPolicy, Mailbox

__all__ = ["pingpong_program", "run_threads_pingpong",
           "run_actor_pingpong", "run_coroutine_pingpong"]


def pingpong_program(rounds: int = 2,
                     policy: DeliveryPolicy = DeliveryPolicy.ARBITRARY):
    """Kernel program factory: ``rounds`` request/reply round trips.

    The pinger emits each reply it receives, so the observable output of
    every schedule is ``pong0 pong1 ...`` — the exchange is fully
    synchronized and the output deterministic, even though the scheduler
    still interleaves the two tasks' steps freely.
    """

    def program(sched):
        ping_box = Mailbox("ping", policy=policy)   # replies, to pinger
        pong_box = Mailbox("pong", policy=policy)   # requests, to ponger

        def pinger():
            for i in range(rounds):
                yield Send(pong_box, f"ping{i}")
                reply = yield Receive(ping_box)
                yield Emit(reply)

        def ponger():
            for _ in range(rounds):
                msg = yield Receive(pong_box)
                yield Send(ping_box, msg.replace("ping", "pong"))

        sched.spawn(pinger, name="pinger")
        sched.spawn(ponger, name="ponger")

    return program


# ---------------------------------------------------------------------------
# the three runnable forms — the round-trip *latency* microbenchmark:
# every round is one request + one reply with nothing else to overlap,
# so each runtime's per-message cost dominates end to end
# ---------------------------------------------------------------------------

def run_threads_pingpong(rounds: int = 100, profiler=None) -> int:
    """Two threads trading messages over a pair of BlockingQueues."""
    from ..threads import BlockingQueue, JThread

    ping_q: BlockingQueue = BlockingQueue(name="ping", profiler=profiler)
    pong_q: BlockingQueue = BlockingQueue(name="pong", profiler=profiler)
    replies = [0]

    def pinger() -> None:
        for i in range(rounds):
            pong_q.put(("ping", i))
            ping_q.take()
            replies[0] += 1

    def ponger() -> None:
        for _ in range(rounds):
            kind, i = pong_q.take()
            ping_q.put(("pong", i))

    threads = [JThread(target=pinger, name="pinger", profiler=profiler),
               JThread(target=ponger, name="ponger", profiler=profiler)]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=30)
    if replies[0] != rounds:
        raise AssertionError(f"lost replies: {replies[0]}/{rounds}")
    return replies[0]


def run_actor_pingpong(rounds: int = 100, profiler=None) -> int:
    """Two actors trading tell()s — mailbox round-trip latency."""
    import threading

    from ..actors import Actor, ActorSystem

    replies = [0]
    done = threading.Event()

    class Ponger(Actor):
        def receive(self, message, sender) -> None:
            sender.tell(("pong", message[1]), sender=self.self_ref)

    class Pinger(Actor):
        def __init__(self, ponger) -> None:
            super().__init__()
            self.ponger = ponger

        def pre_start(self) -> None:
            self.ponger.tell(("ping", 0), sender=self.self_ref)

        def receive(self, message, sender) -> None:
            replies[0] += 1
            if replies[0] >= rounds:
                done.set()
            else:
                self.ponger.tell(("ping", replies[0]), sender=self.self_ref)

    with ActorSystem(workers=2, profiler=profiler) as system:
        ponger = system.spawn(Ponger, name="ponger")
        system.spawn(Pinger, ponger, name="pinger")
        done.wait(timeout=30)
    if replies[0] != rounds:
        raise AssertionError(f"lost replies: {replies[0]}/{rounds}")
    return replies[0]


def run_coroutine_pingpong(rounds: int = 100, profiler=None) -> int:
    """Two cooperative tasks trading items over a pair of CoChannels."""
    from ..coroutines import CoChannel, CoScheduler

    ping_chan = CoChannel(capacity=1)
    pong_chan = CoChannel(capacity=1)
    replies = [0]

    def pinger():
        for i in range(rounds):
            yield from pong_chan.put(("ping", i))
            yield from ping_chan.get()
            replies[0] += 1

    def ponger():
        for _ in range(rounds):
            kind, i = yield from pong_chan.get()
            yield from ping_chan.put(("pong", i))

    sched = CoScheduler(profiler=profiler)
    sched.spawn(pinger, name="pinger")
    sched.spawn(ponger, name="ponger")
    sched.run()
    if replies[0] != rounds:
        raise AssertionError(f"lost replies: {replies[0]}/{rounds}")
    return replies[0]
