"""State machines and the course's two code-generation transformations.

Week 3 of the course (paper §IV.B) teaches "the well-defined
transformation from state diagrams to threads-based implementations of
monitor constructs and condition variables, and a corresponding
transformation to a message-passing implementation".  This module makes
both transformations executable:

* :class:`StateMachine` — a guarded state machine over integer
  variables (the UML state-diagram abstraction the course uses);
* :func:`to_monitor_pseudocode` — the shared-memory transformation:
  one function per event, an ``EXC_ACC`` block whose guarded-wait loop
  encodes the state/guard condition, ``NOTIFY()`` after each
  transition;
* :func:`to_message_pseudocode` — the message-passing transformation:
  a class with one ``ON_RECEIVING`` arm per event, guards as
  conditionals, an acknowledgement per accepted event;
* :func:`simulate` — reference semantics, used by tests to check that
  the *generated pseudocode*, executed by the interpreter, agrees with
  the specification.

The single-lane bridge's state diagram (:func:`bridge_state_machine`)
is included, so the full course pipeline — model, transform, execute,
verify — runs end to end.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

__all__ = ["Transition", "StateMachine", "StateMachineError",
           "to_monitor_pseudocode", "to_message_pseudocode", "simulate",
           "bridge_state_machine", "bounded_buffer_state_machine"]


class StateMachineError(ValueError):
    """Ill-formed specification (unknown variable, bad guard, ...)."""


@dataclass(frozen=True)
class Transition:
    """One guarded transition.

    ``event`` names the trigger (becomes a function / message name);
    ``guard`` is a pseudocode boolean expression over the machine's
    variables (or None = always enabled); ``effects`` are pseudocode
    assignments over the variables.
    """

    event: str
    guard: Optional[str] = None
    effects: tuple[str, ...] = ()


@dataclass
class StateMachine:
    """A guarded state machine over named integer variables.

    The "state" of a UML state diagram is encoded the way the course's
    monitor transformation encodes it: as guard conditions over counter
    variables (e.g. the bridge's diagram states Empty / RedOnBridge /
    BlueOnBridge become predicates over ``redCount``/``blueCount``).
    """

    name: str
    variables: dict[str, int]
    transitions: list[Transition] = field(default_factory=list)

    def __post_init__(self) -> None:
        for name in self.variables:
            if not name.isidentifier():
                raise StateMachineError(f"bad variable name {name!r}")
        events = [t.event for t in self.transitions]
        if len(events) != len(set(events)):
            raise StateMachineError("duplicate event names")
        for t in self.transitions:
            for effect in t.effects:
                if "=" not in effect:
                    raise StateMachineError(
                        f"effect {effect!r} of {t.event} is not an "
                        f"assignment")
                target = effect.split("=", 1)[0].strip()
                if target not in self.variables:
                    raise StateMachineError(
                        f"effect of {t.event} assigns unknown variable "
                        f"{target!r}")

    def transition(self, event: str) -> Transition:
        for t in self.transitions:
            if t.event == event:
                return t
        raise StateMachineError(f"unknown event {event!r}")


# ---------------------------------------------------------------------------
# reference semantics
# ---------------------------------------------------------------------------

def _eval_guard(guard: Optional[str], variables: dict[str, int]) -> bool:
    """Evaluate a guard via the pseudocode expression engine."""
    if guard is None:
        return True
    from ..pseudocode import interpret
    lines = [f"{k} = {v}" for k, v in variables.items()]
    lines.append(f"guard_result = {guard}")
    return bool(interpret("\n".join(lines)).globals["guard_result"])


def _apply_effects(effects: Sequence[str], variables: dict[str, int]
                   ) -> dict[str, int]:
    from ..pseudocode import interpret
    lines = [f"{k} = {v}" for k, v in variables.items()]
    lines.extend(effects)
    result = interpret("\n".join(lines)).globals
    return {k: result[k] for k in variables}


def simulate(machine: StateMachine, events: Sequence[str],
             *, strict: bool = True) -> dict[str, int]:
    """Run an event sequence against the reference semantics.

    With ``strict`` a guard failure raises; otherwise the event is
    skipped (the message-passing transformation's 'rejected' case).
    """
    variables = dict(machine.variables)
    for event in events:
        t = machine.transition(event)
        if not _eval_guard(t.guard, variables):
            if strict:
                raise StateMachineError(
                    f"event {event!r} fired with guard {t.guard!r} false "
                    f"in {variables}")
            continue
        variables = _apply_effects(t.effects, variables)
    return variables


# ---------------------------------------------------------------------------
# transformation 1: monitors (shared memory)
# ---------------------------------------------------------------------------

def to_monitor_pseudocode(machine: StateMachine) -> str:
    """The course's state-diagram → monitor transformation.

    Each event becomes a function; its guard becomes the condition of a
    guarded-wait loop inside one ``EXC_ACC`` block; every transition
    ends with ``NOTIFY()`` so waiting events re-check their guards —
    exactly the Figure 4 idiom, mechanically produced.
    """
    lines: list[str] = [f"# monitor form of state machine {machine.name!r}"]
    for name, value in machine.variables.items():
        lines.append(f"{name} = {value}")
    lines.append("")
    for t in machine.transitions:
        lines.append(f"DEFINE {t.event}()")
        lines.append("  EXC_ACC")
        if t.guard is not None:
            lines.append(f"    WHILE NOT ({t.guard})")
            lines.append("      WAIT()")
            lines.append("    ENDWHILE")
        for effect in t.effects:
            lines.append(f"    {effect}")
        lines.append("    NOTIFY()")
        lines.append("  END_EXC_ACC")
        lines.append("ENDDEF")
        lines.append("")
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# transformation 2: message passing
# ---------------------------------------------------------------------------

def to_message_pseudocode(machine: StateMachine) -> str:
    """The course's state-diagram → message-passing transformation.

    The machine becomes a class whose behaviour handles one message per
    event: guard satisfied → apply effects and acknowledge with
    ``MESSAGE.ok(event)``; guard unsatisfied → ``MESSAGE.blocked(event)``
    (the requester's retry protocol replaces the monitor's WAIT)."""
    cls = machine.name[:1].upper() + machine.name[1:]
    lines: list[str] = [f"# message-passing form of state machine "
                        f"{machine.name!r}", f"CLASS {cls}"]
    lines.append("  DEFINE start()")
    lines.append("    ON_RECEIVING")
    for t in machine.transitions:
        lines.append(f"      MESSAGE.{t.event}(requester)")
        body_pad = "        "
        if t.guard is not None:
            lines.append(f"{body_pad}IF {t.guard} THEN")
            for effect in t.effects:
                lines.append(f"{body_pad}  {effect}")
            lines.append(f"{body_pad}  Send(MESSAGE.ok(\"{t.event}\"))"
                         f".To(requester)")
            lines.append(f"{body_pad}ELSE")
            lines.append(f"{body_pad}  Send(MESSAGE.blocked(\"{t.event}\"))"
                         f".To(requester)")
            lines.append(f"{body_pad}ENDIF")
        else:
            for effect in t.effects:
                lines.append(f"{body_pad}{effect}")
            lines.append(f"{body_pad}Send(MESSAGE.ok(\"{t.event}\"))"
                         f".To(requester)")
    lines.append("  ENDDEF")
    lines.append("ENDCLASS")
    lines.append("")
    for name, value in machine.variables.items():
        lines.append(f"{name} = {value}")
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# canonical course machines
# ---------------------------------------------------------------------------

def bridge_state_machine() -> StateMachine:
    """The single-lane bridge as the course's week-3 state diagram."""
    return StateMachine(
        name="bridge",
        variables={"redCount": 0, "blueCount": 0},
        transitions=[
            Transition("redEnter", guard="blueCount == 0",
                       effects=("redCount = redCount + 1",)),
            Transition("redExit", guard="redCount > 0",
                       effects=("redCount = redCount - 1",)),
            Transition("blueEnter", guard="redCount == 0",
                       effects=("blueCount = blueCount + 1",)),
            Transition("blueExit", guard="blueCount > 0",
                       effects=("blueCount = blueCount - 1",)),
        ])


def bounded_buffer_state_machine(capacity: int = 2) -> StateMachine:
    """The bounded buffer of homework 2 as a state machine."""
    return StateMachine(
        name="buffer",
        variables={"count": 0},
        transitions=[
            Transition("produce", guard=f"count < {capacity}",
                       effects=("count = count + 1",)),
            Transition("consume", guard="count > 0",
                       effects=("count = count - 1",)),
        ])
