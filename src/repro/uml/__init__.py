"""repro.uml — the course's week-3 modelling module, executable.

* :class:`StateMachine` + :func:`to_monitor_pseudocode` /
  :func:`to_message_pseudocode` — the paper's "well-defined
  transformation" from state diagrams to monitor-based and
  message-passing implementations, emitting runnable pseudocode;
* :func:`diagram_from_path` / :func:`diagram_from_trace` — sequence
  diagrams rendered from model-checker witnesses and kernel traces;
* :func:`extract_class_model` — class-diagram recovery from pseudocode
  (the book-inventory lab's modelling artifacts).
"""

from .class_diagram import (ClassBox, ClassModel, extract_class_model,
                            render_boxes)
from .sequence import SequenceDiagram, diagram_from_path, diagram_from_trace
from .state_machine import (StateMachine, StateMachineError, Transition,
                            bounded_buffer_state_machine,
                            bridge_state_machine, simulate,
                            to_message_pseudocode, to_monitor_pseudocode)

__all__ = [
    "StateMachine", "Transition", "StateMachineError",
    "to_monitor_pseudocode", "to_message_pseudocode", "simulate",
    "bridge_state_machine", "bounded_buffer_state_machine",
    "SequenceDiagram", "diagram_from_path", "diagram_from_trace",
    "ClassBox", "ClassModel", "extract_class_model", "render_boxes",
]
