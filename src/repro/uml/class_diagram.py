"""Class-diagram extraction from pseudocode — the week-3 book-inventory
modelling lab in reverse: given a pseudocode program, recover the class
boxes, their operations, the shared global state, and the messaging
associations (who Sends what to whom)."""

from __future__ import annotations

from dataclasses import dataclass, field

from ..pseudocode.analysis import analyze
from ..pseudocode.ast_nodes import (ExcAccBlock, IfStmt, OnReceiving,
                                    ParaBlock, Program, SendStmt, Stmt,
                                    WhileStmt)

__all__ = ["ClassBox", "ClassModel", "extract_class_model", "render_boxes"]


@dataclass
class ClassBox:
    name: str
    operations: list[str] = field(default_factory=list)
    #: message names this class's ON_RECEIVING arms accept
    accepts: list[str] = field(default_factory=list)


@dataclass
class ClassModel:
    boxes: list[ClassBox] = field(default_factory=list)
    #: shared globals (the implicit "SharedState" box of SM designs)
    shared_state: list[str] = field(default_factory=list)
    #: message names sent anywhere in the program
    messages_sent: list[str] = field(default_factory=list)


def _walk(stmts: list[Stmt]):
    for s in stmts:
        yield s
        if isinstance(s, IfStmt):
            for _, body in s.branches:
                yield from _walk(body)
            yield from _walk(s.else_body)
        elif isinstance(s, WhileStmt):
            yield from _walk(s.body)
        elif isinstance(s, ParaBlock):
            yield from _walk(s.arms)
        elif isinstance(s, ExcAccBlock):
            yield from _walk(s.body)
        elif isinstance(s, OnReceiving):
            for arm in s.arms:
                yield from _walk(arm.body)


def extract_class_model(program: Program) -> ClassModel:
    """Recover the class-diagram content of a pseudocode program."""
    info = analyze(program)
    model = ClassModel(shared_state=sorted(info.globals))

    for cls in program.classes.values():
        box = ClassBox(name=cls.name)
        for method in cls.methods.values():
            params = ", ".join(method.params)
            box.operations.append(f"{method.name}({params})")
            for stmt in _walk(method.body):
                if isinstance(stmt, OnReceiving):
                    box.accepts.extend(arm.msg_name for arm in stmt.arms)
        model.boxes.append(box)

    all_bodies = list(program.main)
    for fn in program.functions.values():
        all_bodies.extend(fn.body)
    for cls in program.classes.values():
        for method in cls.methods.values():
            all_bodies.extend(method.body)
    sent = []
    for stmt in _walk(all_bodies):
        if isinstance(stmt, SendStmt):
            msg = stmt.message
            name = getattr(msg, "msg_name", None)
            sent.append(name if name else "<computed>")
    model.messages_sent = sorted(set(sent))
    return model


def render_boxes(model: ClassModel) -> str:
    """ASCII class diagram (one box per class + the shared-state box)."""
    chunks: list[str] = []

    def box(title: str, *sections: list[str]) -> str:
        rows = [title]
        for section in sections:
            rows.append(None)          # separator marker
            rows.extend(section or ["(none)"])
        width = max(len(r) for r in rows if r is not None) + 2
        out = ["+" + "-" * width + "+"]
        for r in rows:
            if r is None:
                out.append("+" + "-" * width + "+")
            else:
                out.append("| " + r.ljust(width - 1) + "|")
        out.append("+" + "-" * width + "+")
        return "\n".join(out)

    for cls_box in model.boxes:
        sections = [cls_box.operations]
        if cls_box.accepts:
            sections.append([f"<<accepts>> {m}" for m in cls_box.accepts])
        chunks.append(box(cls_box.name, *sections))
    if model.shared_state:
        chunks.append(box("<<shared>> Globals",
                          [f"{g}: value" for g in model.shared_state]))
    if model.messages_sent:
        chunks.append("messages: " + ", ".join(model.messages_sent))
    return "\n\n".join(chunks)
