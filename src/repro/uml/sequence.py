"""Sequence-diagram rendering — week 3's "use sequence diagrams to
depict and reason about critical scenarios".

Renders executions as ASCII sequence diagrams:

* :func:`diagram_from_path` — an LTS witness path (e.g. a Test-1
  question's YES evidence) with cars and the bridge as lifelines;
* :func:`diagram_from_trace` — a kernel trace with tasks as lifelines
  and message sends/deliveries as arrows.

The point is pedagogical round-tripping: the model checker's witness
becomes the diagram a student would draw to argue the same scenario.
"""

from __future__ import annotations

from typing import Any, Optional, Sequence

from ..core.trace import Trace
from ..verify.lts import PathStep

__all__ = ["SequenceDiagram", "diagram_from_path", "diagram_from_trace"]

_COLUMN_WIDTH = 16


class SequenceDiagram:
    """Accumulates lifelines and events; renders a fixed-width diagram."""

    def __init__(self, participants: Sequence[str]):
        if not participants:
            raise ValueError("a sequence diagram needs participants")
        self.participants = list(participants)
        self.rows: list[tuple] = []       # ("msg", src, dst, label) |
        #                                   ("note", who, label)

    # ------------------------------------------------------------------
    def message(self, source: str, target: str, label: str) -> None:
        self._require(source)
        self._require(target)
        self.rows.append(("msg", source, target, label))

    def note(self, who: str, label: str) -> None:
        self._require(who)
        self.rows.append(("note", who, label))

    def _require(self, who: str) -> None:
        if who not in self.participants:
            self.participants.append(who)

    # ------------------------------------------------------------------
    def _column(self, who: str) -> int:
        return self.participants.index(who) * _COLUMN_WIDTH \
            + _COLUMN_WIDTH // 2

    def render(self) -> str:
        width = len(self.participants) * _COLUMN_WIDTH
        lines: list[str] = []
        header = ""
        for who in self.participants:
            header += who[:_COLUMN_WIDTH - 2].center(_COLUMN_WIDTH)
        lines.append(header)
        lines.append(self._lifeline_row(width))
        for row in self.rows:
            if row[0] == "msg":
                _, source, target, label = row
                lines.extend(self._arrow(source, target, label, width))
            else:
                _, who, label = row
                lines.append(self._note_row(who, label, width))
            lines.append(self._lifeline_row(width))
        return "\n".join(lines)

    def _lifeline_row(self, width: int) -> str:
        row = [" "] * width
        for who in self.participants:
            row[self._column(who)] = "|"
        return "".join(row)

    def _note_row(self, who: str, label: str, width: int) -> str:
        row = list(self._lifeline_row(width))
        col = self._column(who)
        text = f"[{label}]"
        start = min(max(col - len(text) // 2, 0), width - len(text))
        for i, ch in enumerate(text):
            row[start + i] = ch
        return "".join(row)

    def _arrow(self, source: str, target: str, label: str,
               width: int) -> list[str]:
        src, dst = self._column(source), self._column(target)
        if src == dst:
            return [self._note_row(source, f"self: {label}", width)]
        lo, hi = (src, dst) if src < dst else (dst, src)
        row = list(self._lifeline_row(width))
        for i in range(lo + 1, hi):
            row[i] = "-"
        row[dst] = ">" if dst > src else "<"
        label_row = list(self._lifeline_row(width))
        text = label[:hi - lo - 2]
        start = lo + 1 + (hi - lo - len(text)) // 2
        for i, ch in enumerate(text):
            if 0 <= start + i < width and label_row[start + i] == " ":
                label_row[start + i] = ch
        return ["".join(label_row), "".join(row)]


# ---------------------------------------------------------------------------
# builders
# ---------------------------------------------------------------------------

def diagram_from_path(path: Sequence[PathStep],
                      participants: Optional[Sequence[str]] = None
                      ) -> SequenceDiagram:
    """Render an LTS witness path (bridge event vocabulary).

    Message-passing events become arrows (send: car → bridge; recv:
    bridge → car; handle: self-note at the bridge); shared-memory
    events become self-notes at the car.
    """
    diagram = SequenceDiagram(list(participants or []))
    for step in path:
        event = step.event
        if event is None:
            continue
        who = str(event[0])
        kind = event[1] if len(event) > 1 else ""
        if kind == "send":
            diagram.message(who, "bridge", str(event[2]))
        elif kind == "recv":
            diagram.message("bridge", who, _fmt(event[2]))
        elif kind == "handle":
            diagram.note("bridge", f"handle {event[2]}.{event[3]}")
        else:
            rest = " ".join(_fmt(e) for e in event[1:])
            diagram.note(who, rest)
    return diagram


def diagram_from_trace(trace: Trace,
                       participants: Optional[Sequence[str]] = None
                       ) -> SequenceDiagram:
    """Render a kernel trace: sends/deliveries as arrows between tasks
    and mailboxes, everything else as activity notes."""
    diagram = SequenceDiagram(list(participants or []))
    for event in trace.events:
        repr_ = event.effect_repr
        if repr_.startswith("send "):
            _, _, rest = repr_.partition("send ")
            payload, _, box = rest.rpartition(" to ")
            diagram.message(event.task_name, box, payload[:12])
        elif event.kind == "deliver":
            box = event.task_name
            diagram.note(box, f"deliver {event.payload_repr or ''}"[:14])
        elif repr_.startswith(("acquire", "release", "wait", "notify")):
            diagram.note(event.task_name, repr_.split()[0])
    return diagram


def _fmt(value: Any) -> str:
    if isinstance(value, tuple):
        return "(" + ",".join(str(v) for v in value) + ")"
    return str(value)
