"""repro.study — the paper's §V study design, executable end to end.

Pipeline: :func:`sample_cohort` (Table-III-calibrated students) →
:func:`matched_split` (equivalent-performance S/D groups) →
:func:`administer_test1` (two sections, opposite orders) →
:mod:`stats`/:mod:`surveys`/:mod:`report` (Tables I-III + §VI survey
paragraphs) → :mod:`effort` (Test-2 cost/benefit metrics).

>>> from repro.study import run_full_study
>>> out = run_full_study()           # doctest: +SKIP
>>> print(out.render())              # doctest: +SKIP
"""

from .cohort import CohortMember, sample_cohort
from .effort import EffortMetrics, bridge_effort, measure, problem_effort
from .glossary import GLOSSARY, GlossaryEntry, demonstrate, term
from .grouping import matched_split, split_balance
from .pair_programming import LabOutcome, PairPhaseReport, run_pair_phase
from .test2 import (FormGrade, Submission, Test2Grade, grade_form,
                    grade_submission, reference_submission)
from .questions import (QuestionItem, ground_truth, mp_questions,
                        question_bank, sm_questions)
from .report import StudyOutput, run_full_study, table1, table2, table3
from .stats import (TTest, cohens_d, paired_t, section_summary,
                    session_effect, welch_t)
from .surveys import (ChoiceReport, DifficultyReport, difficulty_survey,
                      grade_choice_survey)
from .test1 import SESSION2_PRACTICE, Test1Result, administer_test1

__all__ = [
    "sample_cohort", "CohortMember",
    "matched_split", "split_balance",
    "QuestionItem", "sm_questions", "mp_questions", "ground_truth",
    "question_bank",
    "administer_test1", "Test1Result", "SESSION2_PRACTICE",
    "TTest", "paired_t", "welch_t", "cohens_d", "session_effect",
    "section_summary",
    "difficulty_survey", "grade_choice_survey", "DifficultyReport",
    "ChoiceReport",
    "table1", "table2", "table3", "run_full_study", "StudyOutput",
    "EffortMetrics", "measure", "bridge_effort", "problem_effort",
    "Submission", "FormGrade", "Test2Grade", "grade_form",
    "grade_submission", "reference_submission",
    "run_pair_phase", "PairPhaseReport", "LabOutcome",
    "GLOSSARY", "GlossaryEntry", "term", "demonstrate",
]
