"""The standard glossary — conclusion 3 of the paper: "A standard
glossary of well-defined terminology is essential".

Each entry pairs a definition with an *executable demonstration*: a
kernel program (or model query) whose behaviour exhibits exactly the
defined phenomenon, plus the Table-III misconception(s) that misread
the term.  ``demonstrate(term)`` runs the demo and returns evidence —
the glossary is testable, which is what "well-defined" means here.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Optional

__all__ = ["GlossaryEntry", "GLOSSARY", "term", "demonstrate", "TERM_NAMES"]


@dataclass(frozen=True)
class GlossaryEntry:
    name: str
    definition: str
    misread_by: tuple[str, ...]          # misconception ids
    demo: Callable[[], dict[str, Any]]   # returns evidence
    #: what the demo's evidence must show
    evidence_keys: tuple[str, ...] = ()


# ---------------------------------------------------------------------------
# demonstrations
# ---------------------------------------------------------------------------

def _demo_race_condition() -> dict[str, Any]:
    """Outcome depends on timing: distinct final values reachable."""
    from ..problems.sum_workers import sum_program
    from ..verify import explore, find_races_program
    outcomes = sorted(explore(sum_program(synchronized=False)).observations())
    race = find_races_program(sum_program(synchronized=False))
    return {"distinct_outcomes": outcomes,
            "conflicting_access_pair": race.describe() if race else None}


def _demo_interleaving() -> dict[str, Any]:
    """Interleaving alone (no shared data) is not a race condition."""
    from ..core import Emit
    from ..verify import explore, find_races_program

    def program(sched):
        def speak(word):
            yield Emit(word)
        sched.spawn(speak, "a")
        sched.spawn(speak, "b")
    res = explore(program)
    return {"orders": sorted(res.output_strings()),
            "race_found": find_races_program(program) is not None}


def _demo_deadlock() -> dict[str, Any]:
    from ..problems.dining_philosophers import philosophers_program
    from ..verify import check_deadlock_free
    report = check_deadlock_free(philosophers_program(3, 1, "naive"),
                                 max_runs=20_000)
    return {"deadlock_reachable": not report.holds,
            "blocked": report.detail}


def _demo_block_on() -> dict[str, Any]:
    """'Blocked on' = cannot proceed until a resource frees — distinct
    from 'waiting on a condition' (misconceptions S3/S5)."""
    from ..core import (Acquire, Emit, Pause, Release, Scheduler, SimLock)

    lock = SimLock("L")
    sched = Scheduler()

    def holder():
        yield Acquire(lock)
        yield Pause("holding")
        yield Pause("holding more")
        yield Release(lock)

    def blocked():
        yield Acquire(lock)
        yield Emit("finally in")
        yield Release(lock)
    sched.spawn(holder, name="holder")
    task = sched.spawn(blocked, name="blocked")
    trace = sched.run()
    waited = any(e.kind == "acquire" and e.task_name == "blocked"
                 for e in trace.events)
    return {"blocked_then_proceeded": waited and task.result is None
            and trace.outcome == "done"}


def _demo_conditional_synchronization() -> dict[str, Any]:
    """WAIT releases the lock while the condition is false (vs S6)."""
    from ..pseudocode import possible_outputs
    outputs = possible_outputs("""
x = 10
DEFINE changeX(diff)
  EXC_ACC
    WHILE x + diff < 0
      WAIT()
    ENDWHILE
    x = x + diff
    NOTIFY()
  END_EXC_ACC
ENDDEF
PARA
  changeX(-11)
  changeX(1)
ENDPARA
PRINTLN x
""", max_runs=100_000)
    return {"always_terminates_at": sorted(outputs)}


def _demo_asynchronous_send() -> dict[str, Any]:
    """Send returns before delivery; arrival order varies (vs M3/M5)."""
    from ..pseudocode import possible_outputs
    outputs = possible_outputs("""
CLASS R
  DEFINE loop()
    ON_RECEIVING
      MESSAGE.a(v)
        PRINT v
      MESSAGE.b(v)
        PRINT v
  ENDDEF
ENDCLASS
r = new R()
r.loop()
Send(MESSAGE.a("1 ")).To(r)
Send(MESSAGE.b("2 ")).To(r)
""")
    return {"arrival_orders": sorted(outputs)}


def _demo_fairness() -> dict[str, Any]:
    from ..core import Pause, RoundRobinPolicy, Scheduler
    from ..verify import fairness_report

    sched = Scheduler(RoundRobinPolicy())

    def worker(tag):
        for _ in range(20):
            yield Pause()
    for tag in ("a", "b", "c"):
        sched.spawn(worker, tag, name=tag)
    report = fairness_report(sched.run())
    return {"max_starvation_gap": max(r["max_gap"]
                                      for r in report.values())}


def _demo_atomicity() -> dict[str, Any]:
    """A simple pseudocode statement cannot be torn (paper Figure 1)."""
    from ..pseudocode import possible_outputs
    outputs = possible_outputs("""
x = 0
DEFINE bump(d)
  x = x + d
ENDDEF
PARA
  bump(1)
  bump(2)
ENDPARA
PRINT x
""", max_runs=100_000)
    return {"single_statement_outcomes": sorted(outputs)}


GLOSSARY: tuple[GlossaryEntry, ...] = (
    GlossaryEntry(
        "race condition",
        "The correctness of the outcome depends on the relative timing "
        "of unsynchronized accesses to shared state: different "
        "schedules reach different final values.",
        misread_by=("M2", "S2"),
        demo=_demo_race_condition,
        evidence_keys=("distinct_outcomes", "conflicting_access_pair")),
    GlossaryEntry(
        "interleaving",
        "Any merge of the steps of concurrent activities.  Different "
        "interleavings are normal and are NOT by themselves a race "
        "condition — the misreading behind S2/M2.",
        misread_by=("S2", "M2"),
        demo=_demo_interleaving,
        evidence_keys=("orders", "race_found")),
    GlossaryEntry(
        "deadlock",
        "A set of activities each waiting for a resource another holds; "
        "none can ever proceed.",
        misread_by=(),
        demo=_demo_deadlock,
        evidence_keys=("deadlock_reachable",)),
    GlossaryEntry(
        "block on",
        "To be unable to proceed until a specific resource (lock, "
        "message) becomes available; ends when the resource frees, not "
        "when some condition becomes true (the S3/S5 conflation).",
        misread_by=("S3", "S5"),
        demo=_demo_block_on,
        evidence_keys=("blocked_then_proceeded",)),
    GlossaryEntry(
        "conditional synchronization",
        "Waiting for a predicate over shared state, via WAIT/NOTIFY "
        "inside a monitor; WAIT releases the monitor while parked.",
        misread_by=("S5", "S6"),
        demo=_demo_conditional_synchronization,
        evidence_keys=("always_terminates_at",)),
    GlossaryEntry(
        "asynchronous send",
        "A send completes without waiting for delivery or processing; "
        "messages in flight may be delivered in either order.",
        misread_by=("M3", "M4", "M5"),
        demo=_demo_asynchronous_send,
        evidence_keys=("arrival_orders",)),
    GlossaryEntry(
        "fairness",
        "Every runnable activity keeps getting turns; starvation gaps "
        "stay bounded under a fair scheduler.",
        misread_by=(),
        demo=_demo_fairness,
        evidence_keys=("max_starvation_gap",)),
    GlossaryEntry(
        "atomicity",
        "An operation that takes effect as one indivisible step; the "
        "pseudocode's simple statements are atomic by definition.",
        misread_by=(),
        demo=_demo_atomicity,
        evidence_keys=("single_statement_outcomes",)),
)

TERM_NAMES: tuple[str, ...] = tuple(e.name for e in GLOSSARY)

_BY_NAME = {e.name: e for e in GLOSSARY}


def term(name: str) -> GlossaryEntry:
    try:
        return _BY_NAME[name]
    except KeyError:
        raise KeyError(f"unknown glossary term {name!r}; "
                       f"known: {list(_BY_NAME)}") from None


def demonstrate(name: str) -> dict[str, Any]:
    """Run the executable demonstration for one term."""
    entry = term(name)
    evidence = entry.demo()
    missing = [k for k in entry.evidence_keys if k not in evidence]
    if missing:
        raise RuntimeError(f"demo for {name!r} missing evidence {missing}")
    return evidence
