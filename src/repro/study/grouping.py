"""Equivalent-performance group assignment.

The paper twice splits the class into two groups "such that the groups
have equivalent performance on previous homeworks, labs and quizzes"
(S/D for Test 1's section ordering, PP/SP for the pair-programming
phase).  :func:`matched_split` implements the standard matched-pairs
procedure: sort by prior score, walk adjacent pairs, assign one member
of each pair to each group at random.
"""

from __future__ import annotations

import random
from typing import Optional, Sequence

from .cohort import CohortMember

__all__ = ["matched_split", "split_balance"]


def matched_split(members: Sequence[CohortMember],
                  labels: tuple[str, str] = ("S", "D"),
                  sizes: Optional[tuple[int, int]] = None,
                  seed: int = 0) -> tuple[list[CohortMember],
                                          list[CohortMember]]:
    """Split into two prior-score-matched groups (paper sizes 9 and 7).

    With unequal ``sizes`` the surplus students (taken evenly across the
    score distribution) go to the first group, which is how a 16-student
    class yields the paper's 9/7 split without biasing either group's
    mean.
    """
    if sizes is None:
        sizes = ((len(members) + 1) // 2, len(members) // 2)
    if sum(sizes) != len(members):
        raise ValueError(f"sizes {sizes} do not cover {len(members)} members")
    rng = random.Random(seed)
    ranked = sorted(members, key=lambda m: m.prior_score, reverse=True)

    group_a: list[CohortMember] = []
    group_b: list[CohortMember] = []
    extra = sizes[0] - sizes[1]
    # hand the size surplus evenly-spaced members first
    surplus_idx = set()
    if extra > 0:
        step = max(1, len(ranked) // (extra + 1))
        pos = step // 2
        while len(surplus_idx) < extra and pos < len(ranked):
            surplus_idx.add(pos)
            pos += step
    paired = [m for i, m in enumerate(ranked) if i not in surplus_idx]
    group_a.extend(ranked[i] for i in sorted(surplus_idx))

    for i in range(0, len(paired) - 1, 2):
        first, second = paired[i], paired[i + 1]
        if rng.random() < 0.5:
            first, second = second, first
        group_a.append(first)
        group_b.append(second)
    if len(paired) % 2:
        (group_a if len(group_a) < sizes[0] else group_b).append(paired[-1])

    # trim/rebalance if rounding left the sizes off
    while len(group_a) > sizes[0]:
        group_b.append(group_a.pop())
    while len(group_b) > sizes[1]:
        group_a.append(group_b.pop())

    for m in group_a:
        m.group = labels[0]
    for m in group_b:
        m.group = labels[1]
    return group_a, group_b


def split_balance(group_a: Sequence[CohortMember],
                  group_b: Sequence[CohortMember]) -> dict:
    """Mean prior scores and their gap — the equivalence check."""
    mean_a = sum(m.prior_score for m in group_a) / len(group_a)
    mean_b = sum(m.prior_score for m in group_b) / len(group_b)
    return {"mean_a": mean_a, "mean_b": mean_b,
            "gap": abs(mean_a - mean_b)}
