"""Test 1 — the two-section comprehension exam and its administration.

Design (paper §V): group S takes the shared-memory section in session 1
and the message-passing section in session 2; group D the reverse.
Scores are percentages of correctly answered YES/NO items; practice
(learning during/between sessions) improves second-session answering.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from ..misconceptions.student import StudentAnswer
from .cohort import CohortMember
from .questions import QuestionItem, question_bank

__all__ = ["Test1Result", "administer_test1", "SESSION2_PRACTICE"]

#: learning effect applied to the section a student takes second —
#: calibrated so the cohort's session-2 gain lands near the paper's
#: 60.71% → 79.20%
SESSION2_PRACTICE = 0.85


@dataclass
class Test1Result:
    """One student's complete Test-1 outcome."""

    name: str
    group: str                      # "S" | "D"
    sm_score: float
    mp_score: float
    sm_session: int                 # 1 or 2
    mp_session: int
    sm_answers: list[StudentAnswer] = field(default_factory=list)
    mp_answers: list[StudentAnswer] = field(default_factory=list)

    @property
    def session1_score(self) -> float:
        return self.sm_score if self.sm_session == 1 else self.mp_score

    @property
    def session2_score(self) -> float:
        return self.sm_score if self.sm_session == 2 else self.mp_score

    @property
    def total(self) -> float:
        return self.sm_score + self.mp_score

    def exhibited(self) -> set[str]:
        out: set[str] = set()
        for answer in (*self.sm_answers, *self.mp_answers):
            out |= answer.tags
        return out


def _score(answers: Sequence[StudentAnswer]) -> float:
    if not answers:
        return 0.0
    return 100.0 * sum(a.correct for a in answers) / len(answers)


def administer_test1(members: Sequence[CohortMember],
                     practice: float = SESSION2_PRACTICE
                     ) -> list[Test1Result]:
    """Run Test 1 for a grouped cohort (members need ``group`` set).

    Group S: shared memory first.  Group D: message passing first.
    """
    bank = question_bank()
    sm_items: list[QuestionItem] = [i for i in bank if i.section == "sm"]
    mp_items: list[QuestionItem] = [i for i in bank if i.section == "mp"]

    results: list[Test1Result] = []
    for member in members:
        if member.group not in ("S", "D"):
            raise ValueError(f"{member.name} has no S/D group assigned")
        sm_first = member.group == "S"
        sm_practice = 0.0 if sm_first else practice
        mp_practice = practice if sm_first else 0.0
        sm_answers = member.student.answer_section(sm_items,
                                                   practice=sm_practice)
        mp_answers = member.student.answer_section(mp_items,
                                                   practice=mp_practice)
        result = Test1Result(
            name=member.name, group=member.group,
            sm_score=_score(sm_answers), mp_score=_score(mp_answers),
            sm_session=1 if sm_first else 2,
            mp_session=2 if sm_first else 1,
            sm_answers=sm_answers, mp_answers=mp_answers)
        member.records["test1"] = result
        results.append(result)
    return results
