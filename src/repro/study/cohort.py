"""Cohort simulation — the 16 Test-1 participants.

Students are sampled with misconception prevalences calibrated to
Table III (a student holds M5 with probability 6/16, S7 with 10/16,
...), plus a skill level and a U1 working capacity.  What the paper
*measured* — section score gaps, session learning effects, survey
preferences, misconception counts — is then emergent from grading the
simulated answers, not hard-coded.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Optional

from ..misconceptions.catalog import CATALOG
from ..misconceptions.student import SimulatedStudent

__all__ = ["CohortMember", "sample_cohort"]


@dataclass
class CohortMember:
    """A student plus the study bookkeeping attached to them."""

    student: SimulatedStudent
    #: prior-coursework score used for equivalent-performance matching
    prior_score: float
    group: Optional[str] = None        # "S" | "D" (Test 1) or "PP" | "SP"
    records: dict = field(default_factory=dict)

    @property
    def name(self) -> str:
        return self.student.name


def sample_cohort(n: int = 16, seed: int = 2013) -> list[CohortMember]:
    """Sample ``n`` students with Table-III-calibrated profiles.

    The prior score is correlated with skill and (negatively) with the
    number of misconceptions held — so the matched grouping in
    :mod:`repro.study.grouping` has real structure to balance.
    """
    rng = random.Random(seed)
    members: list[CohortMember] = []
    for i in range(n):
        profile = frozenset(
            m.mid for m in CATALOG if rng.random() < m.prevalence)
        skill = 0.82 + 0.16 * rng.random()
        capacity = rng.choice((300, 600, 900, 1400))
        student = SimulatedStudent(
            name=f"student-{i + 1:02d}", profile=profile, skill=skill,
            capacity=capacity, seed=seed * 1000 + i)
        prior = (55.0 + 40.0 * (skill - 0.82) / 0.16
                 - 2.5 * len(profile) + rng.gauss(0, 6.0))
        members.append(CohortMember(student=student,
                                    prior_score=max(0.0, min(100.0, prior))))
    return members
