"""Statistics for the study analyses — thin, explicit wrappers over
scipy.stats with the exact comparisons the paper reports.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

from .test1 import Test1Result

__all__ = ["TTest", "paired_t", "welch_t", "session_effect",
           "section_summary", "cohens_d"]


@dataclass(frozen=True)
class TTest:
    statistic: float
    pvalue: float
    mean_a: float
    mean_b: float
    n_a: int
    n_b: int

    @property
    def significant(self) -> bool:
        return self.pvalue < 0.05

    def describe(self) -> str:
        return (f"mean {self.mean_a:.2f} vs {self.mean_b:.2f}, "
                f"t={self.statistic:.3f}, p={self.pvalue:.4f}"
                f"{' *' if self.significant else ''}")


def _mean(xs: Sequence[float]) -> float:
    return sum(xs) / len(xs)


def paired_t(a: Sequence[float], b: Sequence[float]) -> TTest:
    """Paired t-test (same students, two conditions)."""
    from scipy import stats
    if len(a) != len(b):
        raise ValueError("paired samples must have equal length")
    res = stats.ttest_rel(a, b)
    return TTest(float(res.statistic), float(res.pvalue),
                 _mean(a), _mean(b), len(a), len(b))


def welch_t(a: Sequence[float], b: Sequence[float]) -> TTest:
    """Two-sample t-test without the equal-variance assumption."""
    from scipy import stats
    res = stats.ttest_ind(a, b, equal_var=False)
    return TTest(float(res.statistic), float(res.pvalue),
                 _mean(a), _mean(b), len(a), len(b))


def cohens_d(a: Sequence[float], b: Sequence[float]) -> float:
    """Standardized mean difference (pooled SD)."""
    na, nb = len(a), len(b)
    ma, mb = _mean(a), _mean(b)
    va = sum((x - ma) ** 2 for x in a) / max(na - 1, 1)
    vb = sum((x - mb) ** 2 for x in b) / max(nb - 1, 1)
    pooled = math.sqrt(((na - 1) * va + (nb - 1) * vb) / max(na + nb - 2, 1))
    if pooled == 0:
        return 0.0
    return (ma - mb) / pooled


def session_effect(results: Sequence[Test1Result]) -> TTest:
    """Session 2 vs session 1 (paired within students) — the paper's
    79.20% vs 60.71%, p = 0.005 comparison."""
    s1 = [r.session1_score for r in results]
    s2 = [r.session2_score for r in results]
    return paired_t(s2, s1)


def section_summary(results: Sequence[Test1Result]) -> dict:
    """Table II's cells: per-group per-section means plus marginals."""
    def mean_of(group: str, attr: str) -> float:
        xs = [getattr(r, attr) for r in results if r.group == group]
        return _mean(xs) if xs else float("nan")

    out = {
        "S": {"n": sum(1 for r in results if r.group == "S"),
              "sm_mean": mean_of("S", "sm_score"),
              "mp_mean": mean_of("S", "mp_score"),
              "total_mean": mean_of("S", "total")},
        "D": {"n": sum(1 for r in results if r.group == "D"),
              "sm_mean": mean_of("D", "sm_score"),
              "mp_mean": mean_of("D", "mp_score"),
              "total_mean": mean_of("D", "total")},
        "all": {"sm_mean": _mean([r.sm_score for r in results]),
                "mp_mean": _mean([r.mp_score for r in results]),
                "session1_mean": _mean([r.session1_score for r in results]),
                "session2_mean": _mean([r.session2_score for r in results])},
    }
    out["all"]["section_test"] = paired_t(
        [r.mp_score for r in results], [r.sm_score for r in results])
    out["all"]["session_test"] = session_effect(results)
    return out
