"""The Test-1 question bank — Figure 6/7-style items over the bridge.

Each item is a :class:`repro.verify.ScenarioQuestion` plus study
metadata: the section it belongs to, the *category* that decides which
noise misconceptions can corrupt it, and a difficulty proxy (the number
of product states the correct model explores — the paper's "space of
executions" that overloads students at the U1 level).

Ground truth is computed, never hard-coded: :func:`ground_truth`
model-checks each item against the correct LTS.  The bank is built so
that every *semantic* misconception in the catalog flips at least one
item — verified by the test suite and the Table-III benchmark.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Optional

from ..problems.single_lane_bridge import mp_bridge_lts, sm_bridge_lts
from ..verify.lts import LTS, answer_question_lts
from ..verify.reachability import ScenarioQuestion

__all__ = ["QuestionItem", "sm_questions", "mp_questions", "ground_truth",
           "question_bank"]

A, B, BL = "redCarA", "redCarB", "blueCarA"


@dataclass(frozen=True)
class QuestionItem:
    """One exam item with study metadata."""

    question: ScenarioQuestion
    section: str            # "sm" | "mp"
    category: str           # noise-misconception hook
    #: filled by ground_truth(): correct verdict and size proxy
    answer: Optional[str] = None
    size: int = 0

    @property
    def qid(self) -> str:
        return self.question.qid


def _q(qid: str, text: str, history=(), scenario=(), forbidden=(),
       forbidden_anywhere=()) -> ScenarioQuestion:
    return ScenarioQuestion(qid=qid, text=text, history=tuple(history),
                            scenario=tuple(scenario),
                            forbidden=tuple(forbidden),
                            forbidden_anywhere=tuple(forbidden_anywhere))


def _is_exit_ack(msg) -> bool:
    return isinstance(msg, tuple) and msg[0] == "succeedExit"


# ---------------------------------------------------------------------------
# shared-memory section
# ---------------------------------------------------------------------------

def sm_questions() -> list[QuestionItem]:
    """The shared-memory section (Figure 6's family)."""
    items = [
        QuestionItem(_q(
            "SM-a", "Could redCarA be the first car to enter the bridge?",
            scenario=[(A, "enter-bridge")],
            forbidden_anywhere=[(B, "enter-bridge"), (BL, "enter-bridge")],
        ), "sm", "setting"),

        QuestionItem(_q(
            "SM-b", "redCarA has called redEnter but not returned; redCarB "
                    "has called redEnter but not returned.  Could redCarB "
                    "return from redEnter, then call redExit and block on "
                    "the EXC_ACC marker?  (Figure 6 item m)",
            history=[(A, "call", "redEnter"), (B, "call", "redEnter")],
            scenario=[(B, "return", "redEnter"), (B, "call", "redExit"),
                      (B, "acquire", "redExit")],
            forbidden=[(A, "return", "redEnter")],
        ), "sm", "lock-span"),

        QuestionItem(_q(
            "SM-c", "redCarA holds the EXC_ACC monitor inside redEnter and "
                    "never waits.  Could redCarB acquire the monitor before "
                    "redCarA returns from redEnter?",
            history=[(A, "acquire", "redEnter")],
            scenario=[(B, "acquire", "redEnter")],
            forbidden_anywhere=[(A, "return", "redEnter"), (A, "wait")],
        ), "sm", "lock-span"),

        QuestionItem(_q(
            "SM-d", "blueCarA is on the bridge.  Could redCarB acquire the "
                    "EXC_ACC monitor in redEnter before blueCarA exits?",
            history=[(BL, "enter-bridge")],
            scenario=[(B, "acquire", "redEnter")],
            forbidden_anywhere=[(BL, "exit-bridge")],
        ), "sm", "lock-vs-wait"),

        QuestionItem(_q(
            "SM-e", "blueCarA is on the bridge; redCarA acquired the monitor "
                    "in redEnter and executed WAIT().  Could blueCarA then "
                    "acquire the monitor inside blueExit?",
            history=[(BL, "enter-bridge"), (A, "acquire", "redEnter"),
                     (A, "wait")],
            scenario=[(BL, "acquire", "blueExit")],
        ), "sm", "wait"),

        QuestionItem(_q(
            "SM-f", "redCarA called redEnter before redCarB did.  Could "
                    "redCarB nevertheless enter the bridge first?",
            history=[(A, "call", "redEnter"), (B, "call", "redEnter")],
            scenario=[(B, "enter-bridge")],
            forbidden_anywhere=[(A, "enter-bridge")],
        ), "sm", "return-order"),

        QuestionItem(_q(
            "SM-g", "redCarA holds the monitor inside redEnter.  Could "
                    "redCarB have called redEnter and still not hold the "
                    "monitor when redCarA releases it?",
            history=[(A, "acquire", "redEnter"), (B, "call", "redEnter")],
            scenario=[(A, "release", "redEnter")],
            forbidden=[(B, "acquire", "redEnter")],
        ), "sm", "blocking"),

        QuestionItem(_q(
            "SM-h", "Could redCarA and blueCarA be on the bridge at the "
                    "same time?",
            scenario=[(A, "enter-bridge"), (BL, "enter-bridge")],
            forbidden=[(A, "exit-bridge")],
        ), "sm", "safety"),

        QuestionItem(_q(
            "SM-i", "Could redCarA execute WAIT() although no blue car has "
                    "entered the bridge?",
            scenario=[(A, "wait")],
            forbidden_anywhere=[(BL, "enter-bridge")],
        ), "sm", "wait"),

        QuestionItem(_q(
            "SM-j", "Could this full sequence happen: blueCarA enters; both "
                    "red cars wait; blueCarA exits and notifies; redCarB "
                    "enters before redCarA; then redCarA enters before "
                    "redCarB exits?",
            scenario=[(BL, "enter-bridge"), (A, "wait"), (B, "wait"),
                      (BL, "exit-bridge"), (B, "enter-bridge"),
                      (A, "enter-bridge"), (B, "exit-bridge")],
        ), "sm", "uncertainty"),

        QuestionItem(_q(
            "SM-k", "Could redCarB exit the bridge before redCarA enters it, "
                    "given both called redEnter and redCarA called first?",
            history=[(A, "call", "redEnter"), (B, "call", "redEnter")],
            scenario=[(B, "exit-bridge")],
            forbidden_anywhere=[(A, "enter-bridge")],
        ), "sm", "return-order"),

        QuestionItem(_q(
            "SM-l", "blueCarA is on the bridge and redCarA is waiting. "
                    "Could redCarA enter the bridge before blueCarA exits?",
            history=[(BL, "enter-bridge"), (A, "wait")],
            scenario=[(A, "enter-bridge")],
            forbidden_anywhere=[(BL, "exit-bridge")],
        ), "sm", "safety"),

        QuestionItem(_q(
            "SM-m", "redCarA holds the EXC_ACC monitor inside redExit. "
                    "Could redCarB acquire the monitor in redEnter before "
                    "redCarA returns from redExit?",
            history=[(A, "acquire", "redExit")],
            scenario=[(B, "acquire", "redEnter")],
            forbidden_anywhere=[(A, "return", "redExit"), (A, "wait")],
        ), "sm", "lock-span"),

        QuestionItem(_q(
            "SM-n", "blueCarA is on the bridge.  Could redCarA acquire the "
                    "monitor inside redEnter and then execute WAIT(), all "
                    "before blueCarA exits?",
            history=[(BL, "enter-bridge")],
            scenario=[(A, "acquire", "redEnter"), (A, "wait")],
            forbidden_anywhere=[(BL, "exit-bridge")],
        ), "sm", "lock-vs-wait"),
    ]
    return items


# ---------------------------------------------------------------------------
# message-passing section
# ---------------------------------------------------------------------------

def mp_questions() -> list[QuestionItem]:
    """The message-passing section (Figure 7's family)."""
    items = [
        QuestionItem(_q(
            "MP-a", "Could the bridge handle redCarA's redEnter before any "
                    "other message?",
            scenario=[("bridge", "handle", A, "redEnter")],
            forbidden_anywhere=[("bridge", "handle", B, "redEnter"),
                                ("bridge", "handle", BL, "blueEnter")],
        ), "mp", "setting"),

        QuestionItem(_q(
            "MP-b", "redCarA sent redEnter (received nothing); then redCarB "
                    "sent redEnter (received nothing).  Could redCarB "
                    "receive succeedEnter, send redExit, and receive "
                    "MESSAGE.succeedExit(2)?  (Figure 7 item m)",
            history=[(A, "send", "redEnter"), (B, "send", "redEnter")],
            scenario=[(B, "recv", "succeedEnter"), (B, "send", "redExit"),
                      (B, "recv", ("succeedExit", 2))],
        ), "mp", "ack"),

        QuestionItem(_q(
            "MP-c", "redCarA sent redEnter first, then redCarB sent "
                    "redEnter.  Could the bridge handle redCarB's message "
                    "before redCarA's?",
            history=[(A, "send", "redEnter"), (B, "send", "redEnter")],
            scenario=[("bridge", "handle", B, "redEnter")],
            forbidden_anywhere=[("bridge", "handle", A, "redEnter")],
        ), "mp", "order"),

        QuestionItem(_q(
            "MP-d", "The bridge handled redCarA's enter, then redCarB's. "
                    "Could redCarB receive its succeedEnter before redCarA "
                    "receives its own?",
            history=[("bridge", "handle", A, "redEnter"),
                     ("bridge", "handle", B, "redEnter")],
            scenario=[(B, "recv", "succeedEnter")],
            forbidden_anywhere=[(A, "recv", "succeedEnter")],
        ), "mp", "order"),

        QuestionItem(_q(
            "MP-e", "blueCarA received succeedEnter (is on the bridge) and "
                    "never initiates its exit.  Could redCarA still send "
                    "its redEnter message?",
            history=[(BL, "recv", "succeedEnter")],
            scenario=[(A, "send", "redEnter")],
            forbidden_anywhere=[("bridge", "handle", BL, "blueExit"),
                                (BL, "send", "blueExit")],
        ), "mp", "send"),

        QuestionItem(_q(
            "MP-f", "Could the bridge process redCarA's redEnter, and "
                    "redCarB send its own redEnter, before redCarA receives "
                    "succeedEnter?",
            scenario=[("bridge", "handle", A, "redEnter"),
                      (B, "send", "redEnter"),
                      (A, "recv", "succeedEnter")],
        ), "mp", "ack"),

        QuestionItem(_q(
            "MP-g", "Could the bridge handle blueCarA's blueEnter while "
                    "redCarA is on the bridge (enter handled, exit not yet "
                    "handled)?",
            history=[("bridge", "handle", A, "redEnter")],
            scenario=[("bridge", "handle", BL, "blueEnter")],
            forbidden=[("bridge", "handle", A, "redExit")],
        ), "mp", "safety"),

        QuestionItem(_q(
            "MP-h", "Could redCarA receive MESSAGE.succeedExit(1) — i.e. be "
                    "the first car to exit the bridge?",
            scenario=[(A, "recv", ("succeedExit", 1))],
        ), "mp", "setting"),

        QuestionItem(_q(
            "MP-i", "redCarA sent redEnter before redCarB did.  Could "
                    "redCarB exit the bridge (receive succeedExit) before "
                    "redCarA has received any message at all?",
            history=[(A, "send", "redEnter"), (B, "send", "redEnter")],
            scenario=[(B, "recv", _is_exit_ack)],
            forbidden_anywhere=[(A, "recv", "succeedEnter"),
                                (A, "recv", _is_exit_ack)],
        ), "mp", "order"),

        QuestionItem(_q(
            "MP-j", "Could this full sequence happen: blueCarA enters and "
                    "exits; then redCarB enters and exits receiving "
                    "succeedExit(2); then redCarA enters and exits "
                    "receiving succeedExit(3)?",
            scenario=[("bridge", "handle", BL, "blueEnter"),
                      ("bridge", "handle", BL, "blueExit"),
                      ("bridge", "handle", B, "redEnter"),
                      ("bridge", "handle", B, "redExit"),
                      (B, "recv", ("succeedExit", 2)),
                      ("bridge", "handle", A, "redEnter"),
                      (A, "recv", ("succeedExit", 3))],
        ), "mp", "uncertainty"),

        QuestionItem(_q(
            "MP-k", "Could redCarA receive succeedEnter although the bridge "
                    "never handled its redEnter message?",
            scenario=[(A, "recv", "succeedEnter")],
            forbidden_anywhere=[("bridge", "handle", A, "redEnter")],
        ), "mp", "safety"),

        QuestionItem(_q(
            "MP-l", "blueCarA received succeedEnter.  Could the bridge then "
                    "handle redCarA's redEnter before handling blueCarA's "
                    "blueExit?",
            history=[(BL, "recv", "succeedEnter")],
            scenario=[("bridge", "handle", A, "redEnter")],
            forbidden_anywhere=[("bridge", "handle", BL, "blueExit")],
        ), "mp", "safety"),
    ]
    return items


# ---------------------------------------------------------------------------
# ground truth
# ---------------------------------------------------------------------------

@lru_cache(maxsize=4)
def _correct_lts(section: str) -> LTS:
    return sm_bridge_lts() if section == "sm" else mp_bridge_lts()


def ground_truth(item: QuestionItem) -> QuestionItem:
    """Return the item with the correct verdict and size proxy filled."""
    result = answer_question_lts(_correct_lts(item.section), item.question)
    return QuestionItem(question=item.question, section=item.section,
                        category=item.category, answer=result.verdict,
                        size=result.product_states)


@lru_cache(maxsize=1)
def question_bank() -> tuple[QuestionItem, ...]:
    """Both sections, ground-truthed, cached for the whole process."""
    return tuple(ground_truth(item)
                 for item in (*sm_questions(), *mp_questions()))
