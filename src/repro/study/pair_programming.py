"""The pair-programming phase — §V's PP/SP comparison.

After Test 2 the paper splits the class into a pair-programming group
(PP) and a solo group (SP) with equivalent prior performance, has both
do the book-inventory labs (shared-memory and message-passing forms),
and collects lab quality + perceived time pressure.  The paper's prior
work (its reference [9]) predicts "basically the same level of
challenge" for both groups.

The simulation grounds each student's lab quality in the same skill /
misconception machinery as Test 1: a lab score is driven by skill and
the number of misconceptions relevant to the lab's paradigm; a pair's
score takes the stronger partner's model with a small collaboration
bonus, and pairs report slightly *lower* time pressure at the cost of
scheduled pairing time — reproducing the cited prediction: no
significant difference in challenge, a modest quality edge for pairs.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Sequence

from ..misconceptions.catalog import by_id
from .cohort import CohortMember
from .grouping import matched_split
from .stats import TTest, welch_t

__all__ = ["LabOutcome", "PairPhaseReport", "run_pair_phase"]


@dataclass
class LabOutcome:
    """One student's (or pair member's) lab results."""

    name: str
    group: str                  # "PP" | "SP"
    partner: str | None
    sm_lab: float               # book inventory, shared-memory form
    mp_lab: float               # book inventory, message-passing form
    time_pressure: float        # 1..5 survey scale
    perceived_challenge: float  # 1..5 survey scale


@dataclass
class PairPhaseReport:
    outcomes: list[LabOutcome]
    quality: TTest              # PP vs SP mean lab quality
    challenge: TTest            # PP vs SP perceived challenge

    def describe(self) -> str:
        pp = [o for o in self.outcomes if o.group == "PP"]
        sp = [o for o in self.outcomes if o.group == "SP"]
        return "\n".join([
            f"pair programming phase: {len(pp)} PP, {len(sp)} SP",
            f"  lab quality  : {self.quality.describe()}",
            f"  challenge    : {self.challenge.describe()}",
            "  paper's prediction (its ref [9]): no significant "
            "difference in challenge — "
            + ("reproduced" if not self.challenge.significant
               else "NOT reproduced"),
        ])


def _lab_score(member: CohortMember, paradigm: str,
               rng: random.Random) -> float:
    """Quality of one lab, driven by skill and relevant misconceptions."""
    relevant = sum(1 for mid in member.student.profile
                   if by_id(mid).section == paradigm)
    base = 55.0 + 45.0 * (member.student.skill - 0.82) / 0.16
    return max(0.0, min(100.0, base - 6.0 * relevant + rng.gauss(0, 5.0)))


def run_pair_phase(members: Sequence[CohortMember],
                   seed: int = 77) -> PairPhaseReport:
    """Split into PP/SP, run both labs, survey, compare."""
    rng = random.Random(seed)
    pp_members, sp_members = matched_split(
        list(members), labels=("PP", "SP"), seed=seed)

    outcomes: list[LabOutcome] = []

    # pair up PP by adjacent prior scores (how the course assigns pairs)
    ranked = sorted(pp_members, key=lambda m: m.prior_score, reverse=True)
    pairs = [(ranked[i], ranked[i + 1])
             for i in range(0, len(ranked) - 1, 2)]
    leftover = ranked[-1] if len(ranked) % 2 else None

    for first, second in pairs:
        sm_scores = [_lab_score(m, "sm", rng) for m in (first, second)]
        mp_scores = [_lab_score(m, "mp", rng) for m in (first, second)]
        # pair outcome: stronger partner's work + collaboration bonus
        sm_pair = min(100.0, max(sm_scores) + rng.uniform(0, 4))
        mp_pair = min(100.0, max(mp_scores) + rng.uniform(0, 4))
        for member in (first, second):
            outcomes.append(LabOutcome(
                name=member.name, group="PP",
                partner=(second if member is first else first).name,
                sm_lab=sm_pair, mp_lab=mp_pair,
                time_pressure=max(1.0, min(5.0, rng.gauss(2.9, 0.5))),
                perceived_challenge=max(1.0, min(5.0, rng.gauss(3.1, 0.5)))))
    solo_pool = list(sp_members) + ([leftover] if leftover else [])
    for member in solo_pool:
        outcomes.append(LabOutcome(
            name=member.name, group="SP", partner=None,
            sm_lab=_lab_score(member, "sm", rng),
            mp_lab=_lab_score(member, "mp", rng),
            time_pressure=max(1.0, min(5.0, rng.gauss(3.2, 0.5))),
            perceived_challenge=max(1.0, min(5.0, rng.gauss(3.2, 0.5)))))

    pp = [o for o in outcomes if o.group == "PP"]
    sp = [o for o in outcomes if o.group == "SP"]
    quality = welch_t([(o.sm_lab + o.mp_lab) / 2 for o in pp],
                      [(o.sm_lab + o.mp_lab) / 2 for o in sp])
    challenge = welch_t([o.perceived_challenge for o in pp],
                        [o.perceived_challenge for o in sp])
    return PairPhaseReport(outcomes=outcomes, quality=quality,
                           challenge=challenge)
