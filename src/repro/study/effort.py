"""Implementation-effort model — the Test-2 cost/benefit comparison.

Test 2 had students implement the single-lane bridge in all three
models; the course then compares "the costs and benefits of
implementing the same problem in three forms".  Lacking 2013 students,
we measure *our own* three implementations of each problem with the
classic structural-effort metrics:

* source lines (logical, comment-stripped);
* synchronization operations (lock/monitor entries, waits, notifies,
  sends, receives, yields) — each is a point where the programmer must
  reason about interleaving;
* shared mutable names touched by more than one task;
* branch count (decision density).

The qualitative claim these reproduce: coroutines need the fewest
explicit synchronization points, actors trade locks for protocol
messages, threads carry both locks *and* condition logic.
"""

from __future__ import annotations

import inspect
import re
from dataclasses import dataclass
from typing import Any, Callable

__all__ = ["EffortMetrics", "measure", "bridge_effort", "problem_effort"]

_SYNC_TOKENS = (
    r"\bAcquire\b", r"\bRelease\b", r"\bWait\b", r"\bNotify\b",
    r"\bwith\s+\w*monitor\b", r"\bwith\s+lock", r"\bwith\s+forks?\[",
    r"\.wait_until\(", r"\.wait\(", r"\.notify", r"\.acquire\(",
    r"\.release\(", r"\.tell\(", r"\.put\(", r"\.get\(", r"\byield\b",
    r"\.join\(",
)


@dataclass(frozen=True)
class EffortMetrics:
    """Structural effort of one implementation."""

    model: str
    loc: int
    sync_ops: int
    branches: int
    defs: int

    @property
    def sync_density(self) -> float:
        """Synchronization points per line — the interleaving-reasoning
        burden per unit of code."""
        return self.sync_ops / self.loc if self.loc else 0.0

    def describe(self) -> str:
        return (f"{self.model:<11} loc={self.loc:<4} sync={self.sync_ops:<3} "
                f"branches={self.branches:<3} density={self.sync_density:.2f}")


def measure(fn: Callable[..., Any], model: str) -> EffortMetrics:
    """Compute effort metrics from a function's source."""
    source = inspect.getsource(fn)
    lines = []
    for raw in source.splitlines():
        line = raw.split("#", 1)[0].rstrip()
        stripped = line.strip()
        if not stripped or stripped.startswith(('"""', "'''")):
            continue
        lines.append(line)
    body = "\n".join(lines)
    sync = sum(len(re.findall(token, body)) for token in _SYNC_TOKENS)
    branches = len(re.findall(r"\b(if|elif|while|for)\b", body))
    defs = len(re.findall(r"\bdef\b|\bclass\b", body))
    return EffortMetrics(model=model, loc=len(lines), sync_ops=sync,
                         branches=branches, defs=defs)


def bridge_effort() -> list[EffortMetrics]:
    """Effort metrics for the three single-lane-bridge implementations."""
    from ..problems.single_lane_bridge import (run_actor_bridge,
                                               run_coroutine_bridge,
                                               run_threads_bridge)
    return [measure(run_threads_bridge, "threads"),
            measure(run_actor_bridge, "actors"),
            measure(run_coroutine_bridge, "coroutines")]


def problem_effort(problem: str) -> list[EffortMetrics]:
    """Effort metrics for any problem with three-model implementations.

    ``problem`` is one of: bridge, barber, party, buffer, philosophers,
    sum.
    """
    from ..problems import (bounded_buffer, dining_philosophers,
                            party_matching, single_lane_bridge,
                            sleeping_barber, sum_workers)
    table = {
        "bridge": (single_lane_bridge.run_threads_bridge,
                   single_lane_bridge.run_actor_bridge,
                   single_lane_bridge.run_coroutine_bridge),
        "barber": (sleeping_barber.run_threads_barber,
                   sleeping_barber.run_actor_barber,
                   sleeping_barber.run_coroutine_barber),
        "party": (party_matching.run_threads_party,
                  party_matching.run_actor_party,
                  party_matching.run_coroutine_party),
        "buffer": (bounded_buffer.run_threads_buffer,
                   bounded_buffer.run_actor_buffer,
                   bounded_buffer.run_coroutine_buffer),
        "philosophers": (dining_philosophers.run_threads_philosophers,
                         dining_philosophers.run_actor_philosophers,
                         dining_philosophers.run_coroutine_philosophers),
        "sum": (sum_workers.run_threads_sum, sum_workers.run_actor_sum,
                sum_workers.run_coroutine_sum),
    }
    try:
        threads_fn, actors_fn, coroutines_fn = table[problem]
    except KeyError:
        raise KeyError(f"unknown problem {problem!r}; "
                       f"known: {sorted(table)}") from None
    return [measure(threads_fn, "threads"),
            measure(actors_fn, "actors"),
            measure(coroutines_fn, "coroutines")]
