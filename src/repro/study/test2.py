"""Test 2 — the practical programming exam, as a grading harness.

§V: "students are required to implement the single-lane bridge problem
with Java threads, Scala Actors and Python Coroutine models in shared
memory, message passing and cooperative forms."  The harness grades a
three-form submission the way the course would:

* **safety** — the one-direction invariant over the submission's event
  log, across many seeds/runs;
* **completeness** — every car crosses the requested number of times;
* **robustness** — repeated runs (thread scheduling noise) stay safe;
* **style** — the structural effort metrics of the submitted code.

A submission is any object with ``threads(cars, crossings)``,
``actors(cars, crossings)`` and ``coroutines(cars, crossings)``
callables, each returning an enter/exit event log in the module's
vocabulary.  :func:`reference_submission` wraps this library's own
implementations, so the harness grades itself in the test suite (and a
deliberately broken submission fails — also tested).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from ..problems.single_lane_bridge import DEFAULT_CARS, check_crossing_log
from .effort import EffortMetrics, measure

__all__ = ["FormGrade", "Test2Grade", "grade_form", "grade_submission",
           "reference_submission", "Submission"]

#: a form implementation: (cars, crossings) -> event log
FormImpl = Callable[[tuple, int], list]


@dataclass
class Submission:
    """A student's Test-2 hand-in: one implementation per form."""

    threads: FormImpl
    actors: FormImpl
    coroutines: FormImpl
    author: str = "anonymous"


@dataclass
class FormGrade:
    """Grade for one form (threads / actors / coroutines)."""

    form: str
    safety_ok: bool
    complete: bool
    runs: int
    failures: list[str] = field(default_factory=list)
    effort: EffortMetrics | None = None

    @property
    def points(self) -> float:
        """0-100: safety is worth 60, completeness 40."""
        return (60.0 if self.safety_ok else 0.0) \
            + (40.0 if self.complete else 0.0)


@dataclass
class Test2Grade:
    author: str
    forms: dict[str, FormGrade]

    @property
    def total(self) -> float:
        return sum(g.points for g in self.forms.values()) / len(self.forms)

    def report(self) -> str:
        lines = [f"Test 2 — {self.author}: {self.total:.0f}/100"]
        for name, grade in self.forms.items():
            status = []
            status.append("safe" if grade.safety_ok else
                          f"UNSAFE ({grade.failures[:1]})")
            status.append("complete" if grade.complete else "INCOMPLETE")
            effort = (f", {grade.effort.loc} loc" if grade.effort else "")
            lines.append(f"  {name:<11} {grade.points:>5.0f} pts "
                         f"({', '.join(status)}{effort})")
        return "\n".join(lines)


def grade_form(form: str, impl: FormImpl,
               cars: tuple = DEFAULT_CARS, crossings: int = 2,
               runs: int = 5) -> FormGrade:
    """Run one form several times; audit every run."""
    failures: list[str] = []
    complete = True
    for _ in range(runs):
        try:
            log = impl(cars, crossings)
        except Exception as exc:  # noqa: BLE001 - submission code
            failures.append(f"crashed: {exc!r}")
            complete = False
            continue
        problem = check_crossing_log(list(log), cars)
        if problem:
            failures.append(problem)
        exits = sum(1 for e in log if e[1] == "exit-bridge")
        if exits != len(cars) * crossings:
            complete = False
    effort = None
    try:
        effort = measure(impl, form)
    except (OSError, TypeError):
        pass   # builtins / lambdas have no retrievable source
    return FormGrade(form=form, safety_ok=not failures, complete=complete,
                     runs=runs, failures=failures, effort=effort)


def grade_submission(submission: Submission, cars: tuple = DEFAULT_CARS,
                     crossings: int = 2, runs: int = 5) -> Test2Grade:
    """Grade all three forms of a submission."""
    forms = {}
    for name in ("threads", "actors", "coroutines"):
        impl = getattr(submission, name)
        forms[name] = grade_form(name, impl, cars=cars,
                                 crossings=crossings, runs=runs)
    return Test2Grade(author=submission.author, forms=forms)


def reference_submission() -> Submission:
    """This library's own three bridge implementations as a submission."""
    from ..problems.single_lane_bridge import (run_actor_bridge,
                                               run_coroutine_bridge,
                                               run_threads_bridge)

    return Submission(
        author="reference",
        threads=lambda cars, crossings: run_threads_bridge(cars, crossings),
        actors=lambda cars, crossings: run_actor_bridge(cars, crossings),
        coroutines=lambda cars, crossings:
            run_coroutine_bridge(cars, crossings))
