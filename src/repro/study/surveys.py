"""Survey simulation — §VI's self-report results.

The paper reports three self-report findings around Test 1:

* homework/lab difficulty: most students call shared memory harder
  (HW3: 10 vs 1; labs: 8 of 11 vs 1);
* post-test difficulty: 11 of 15 found the shared-memory section harder;
* grade-section choice: 10 of 15 chose the message-passing section,
  13 of 15 chose the section they actually scored higher on, and 4 of
  the 5 who chose shared memory had taken it in the second session.

The simulated survey derives each response from the student's actual
experience: perceived difficulty tracks their real error counts (with
self-assessment noise), and the grade choice picks the section they
*believe* went better.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Sequence

from .test1 import Test1Result

__all__ = ["DifficultyReport", "ChoiceReport", "difficulty_survey",
           "grade_choice_survey"]


@dataclass
class DifficultyReport:
    """Counts for one 'which is harder?' survey."""

    sm_harder: int
    mp_harder: int
    equal: int
    respondents: int

    def describe(self) -> str:
        return (f"{self.sm_harder} shared-memory-harder vs "
                f"{self.mp_harder} message-passing-harder "
                f"({self.equal} equal, n={self.respondents})")


@dataclass
class ChoiceReport:
    """Counts for the which-section-counts-for-grade survey."""

    chose_mp: int
    chose_sm: int
    chose_correctly: int               # picked their higher-scoring section
    sm_choosers_took_sm_second: int
    respondents: int

    def describe(self) -> str:
        return (f"{self.chose_mp} chose MP, {self.chose_sm} chose SM; "
                f"{self.chose_correctly}/{self.respondents} chose their "
                f"higher-scoring section; {self.sm_choosers_took_sm_second} "
                f"of the SM choosers took SM in session 2")


def difficulty_survey(results: Sequence[Test1Result],
                      response_rate: float = 0.95,
                      noise: float = 6.0, seed: int = 11
                      ) -> DifficultyReport:
    """Perceived difficulty from actual section scores + self-noise.

    A student reports the section with the clearly lower perceived
    score as harder; within ``noise`` points they report "equal".
    """
    rng = random.Random(seed)
    sm_harder = mp_harder = equal = respondents = 0
    for r in results:
        if rng.random() > response_rate:
            continue
        respondents += 1
        perceived_sm = r.sm_score + rng.gauss(0, noise)
        perceived_mp = r.mp_score + rng.gauss(0, noise)
        if perceived_sm < perceived_mp - noise / 2:
            sm_harder += 1
        elif perceived_mp < perceived_sm - noise / 2:
            mp_harder += 1
        else:
            equal += 1
    return DifficultyReport(sm_harder, mp_harder, equal, respondents)


def grade_choice_survey(results: Sequence[Test1Result],
                        response_rate: float = 15 / 16,
                        noise: float = 5.0, seed: int = 23) -> ChoiceReport:
    """Which section students would count toward their grade.

    Students pick the section they believe went better (true score plus
    self-assessment noise) — without knowing their actual scores, as in
    the paper.
    """
    rng = random.Random(seed)
    chose_mp = chose_sm = chose_correct = sm_second = 0
    respondents = 0
    for r in results:
        if rng.random() > response_rate:
            continue
        respondents += 1
        believed_sm = r.sm_score + rng.gauss(0, noise)
        believed_mp = r.mp_score + rng.gauss(0, noise)
        picked_sm = believed_sm > believed_mp
        if picked_sm:
            chose_sm += 1
            if r.sm_session == 2:
                sm_second += 1
        else:
            chose_mp += 1
        actual_better_sm = r.sm_score > r.mp_score
        if picked_sm == actual_better_sm or r.sm_score == r.mp_score:
            chose_correct += 1
    return ChoiceReport(chose_mp=chose_mp, chose_sm=chose_sm,
                        chose_correctly=chose_correct,
                        sm_choosers_took_sm_second=sm_second,
                        respondents=respondents)
