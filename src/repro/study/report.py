"""Report rendering — regenerates the paper's tables as text + data.

Each ``table*`` function returns ``(data, text)``: a structured dict the
benchmarks assert on and a formatted table matching the paper's layout.
:func:`run_full_study` wires the entire §V pipeline end to end.
"""

from __future__ import annotations

from collections import Counter
from typing import Sequence

from ..misconceptions.catalog import CATALOG, by_id
from ..misconceptions.taxonomy import LEVELS
from .cohort import CohortMember, sample_cohort
from .grouping import matched_split
from .stats import section_summary
from .surveys import difficulty_survey, grade_choice_survey
from .test1 import Test1Result, administer_test1

__all__ = ["table1", "table2", "table3", "run_full_study", "StudyOutput"]


def table1() -> tuple[list[dict], str]:
    """Table I: the misconception hierarchy."""
    rows = [{"code": lv.code, "category": lv.category,
             "description": lv.description} for lv in LEVELS]
    lines = ["TABLE I. CONCURRENCY-RELATED MISCONCEPTIONS IN HIERARCHY", ""]
    current = None
    for row in rows:
        if row["category"] != current:
            current = row["category"]
            lines.append(f"{current} Level")
        lines.append(f"  {row['code']}  {row['description']}")
    return rows, "\n".join(lines)


def table2(results: Sequence[Test1Result]) -> tuple[dict, str]:
    """Table II: Test-1 performance by group, section and session."""
    summary = section_summary(results)
    s, d, all_ = summary["S"], summary["D"], summary["all"]

    def order(group: str, section: str) -> str:
        first = (group == "S") == (section == "sm")
        return "1st" if first else "2nd"

    lines = [
        "TABLE II. PERFORMANCES ON TEST 1", "",
        f"{'Group':<16} {'Shared Memory':>15} {'Message Passing':>17} "
        f"{'Overall':>10}",
        f"S ({s['n']} students)  "
        f"{s['sm_mean']:>9.2f} ({order('S', 'sm')}) "
        f"{s['mp_mean']:>11.2f} ({order('S', 'mp')}) "
        f"{s['total_mean']:>9.2f} / 200",
        f"D ({d['n']} students)  "
        f"{d['sm_mean']:>9.2f} ({order('D', 'sm')}) "
        f"{d['mp_mean']:>11.2f} ({order('D', 'mp')}) "
        f"{d['total_mean']:>9.2f} / 200",
        f"{'All':<16} {all_['sm_mean']:>15.2f} {all_['mp_mean']:>17.2f}",
        "",
        f"Session 1 mean {all_['session1_mean']:.2f}%  "
        f"Session 2 mean {all_['session2_mean']:.2f}%  "
        f"(paired t: {all_['session_test'].describe()})",
    ]
    return summary, "\n".join(lines)


def table3(results: Sequence[Test1Result]) -> tuple[dict, str]:
    """Table III: misconception counts (measured vs paper)."""
    counts: Counter = Counter()
    for result in results:
        for mid in result.exhibited():
            counts[mid] += 1
    data = {}
    lines = ["TABLE III. MISCONCEPTIONS SHOWN IN TEST 1", "",
             f"{'id':<4}{'level':<7}{'measured':>9}{'paper':>7}  description"]
    for section, title in (("mp", "Message Passing"), ("sm", "Shared Memory")):
        lines.append(f"-- {title} --")
        for m in CATALOG:
            if m.section != section:
                continue
            measured = counts.get(m.mid, 0)
            data[m.mid] = {"measured": measured, "paper": m.paper_count,
                           "level": m.level}
            lines.append(f"{m.mid:<4}[{m.level}]{measured:>7}{m.paper_count:>7}"
                         f"  {m.description[:60]}")
    return data, "\n".join(lines)


class StudyOutput:
    """Everything the §V pipeline produces, bundled."""

    def __init__(self, members: list[CohortMember],
                 results: list[Test1Result]):
        self.members = members
        self.results = results
        self.summary = section_summary(results)
        self.difficulty = difficulty_survey(results)
        self.choice = grade_choice_survey(results)
        self.table2_text = table2(results)[1]
        self.table3_data, self.table3_text = table3(results)

    def misconception_counts(self) -> dict[str, int]:
        return {mid: row["measured"] for mid, row in self.table3_data.items()}

    def render(self) -> str:
        return "\n\n".join([
            table1()[1],
            self.table2_text,
            self.table3_text,
            "SURVEYS",
            f"  difficulty: {self.difficulty.describe()}",
            f"  grade choice: {self.choice.describe()}",
        ])


def run_full_study(n: int = 16, seed: int = 2013,
                   group_sizes: tuple[int, int] = (9, 7)) -> StudyOutput:
    """The whole §V pipeline: sample → match → administer → analyze."""
    members = sample_cohort(n, seed=seed)
    matched_split(members, sizes=group_sizes, seed=seed // 100)
    results = administer_test1(members)
    return StudyOutput(members, results)
