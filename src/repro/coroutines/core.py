"""First-class coroutines per de Moura & Ierusalimschy ("Revisiting
Coroutines", the paper's reference [5]).

The paper classifies coroutine facilities along three axes:

1. **control transfer** — asymmetric (resume/yield pairs, like Lua) vs
   symmetric (a single ``transfer`` that names its successor);
2. **first-class?** — can coroutines be stored, passed, compared;
3. **stackful?** — can a coroutine suspend from inside nested calls.

Raw Python generators are first-class but asymmetric and *not* stackful
(only the generator frame itself can yield).  :class:`Coroutine` adds
stackfulness with a trampoline: nested calls are made with
``yield Call(subgen)`` and may ``yield Suspend(v)`` at any depth — the
whole stack suspends, which is the property [5] proves sufficient to
express one-shot continuations and therefore concurrency.
:class:`SymmetricCoroutine` + :func:`run_symmetric` provide the
symmetric discipline on top (also per [5]: either kind expresses the
other).
"""

from __future__ import annotations

import enum
from typing import Any, Callable, Generator, Optional

__all__ = ["CoroutineError", "CoroutineState", "Suspend", "Call",
           "Coroutine", "SymmetricCoroutine", "Transfer", "run_symmetric"]


class CoroutineError(RuntimeError):
    """Protocol violation: resuming a dead/running coroutine, etc."""


class CoroutineState(enum.Enum):
    CREATED = "created"      # never resumed
    SUSPENDED = "suspended"  # yielded, waiting for resume
    RUNNING = "running"      # currently executing
    DEAD = "dead"            # body returned or raised


class Suspend:
    """``yield Suspend(v)`` — suspend the whole coroutine with value v.

    Works at any nesting depth of trampolined calls; a bare
    ``yield v`` at the top frame is shorthand for ``yield Suspend(v)``
    only at depth 0 (nested frames must be explicit, that's the point).
    """

    __slots__ = ("value",)

    def __init__(self, value: Any = None):
        self.value = value


class Call:
    """``result = yield Call(subgen)`` — stackful nested call.

    The trampoline pushes ``subgen``; its ``return`` value becomes the
    result of the yield.  Sub-generators may themselves yield ``Call``
    or ``Suspend``.
    """

    __slots__ = ("gen",)

    def __init__(self, gen: Generator):
        self.gen = gen


class Coroutine:
    """Asymmetric, first-class, stackful coroutine.

    >>> def counter(start):
    ...     n = start
    ...     while True:
    ...         step = yield Suspend(n)
    ...         n += step if step else 1
    >>> co = Coroutine(counter, 10)
    >>> co.resume(), co.resume(5), co.status
    (10, 15, <CoroutineState.SUSPENDED: 'suspended'>)

    The two defining properties from the paper's background section
    hold by construction: locals persist between resumes (generator
    frames), and execution continues exactly where it left off.
    """

    _counter = 0

    def __init__(self, fn: Callable[..., Generator], *args: Any,
                 name: str = "", profiler: Any = None, **kwargs: Any):
        Coroutine._counter += 1
        self.name = name or f"coroutine-{Coroutine._counter}"
        self._stack: list[Generator] = [fn(*args, **kwargs)]
        self.status = CoroutineState.CREATED
        self.result: Any = None          # body's return value once DEAD
        #: value passed to the first resume (Lua would pass it as args)
        self.first_value: Any = None
        #: optional :class:`repro.obs.Profiler` — per-resume wall time
        self.profiler = profiler

    # ------------------------------------------------------------------
    def resume(self, value: Any = None) -> Any:
        """Run until the coroutine suspends or finishes.

        Returns the suspended value, or (when the body returns) the
        return value with ``status`` becoming DEAD.  Resuming a DEAD or
        RUNNING coroutine raises :class:`CoroutineError`.
        """
        prof = self.profiler
        if prof is None:
            return self._resume(value)
        t0 = prof.now()
        try:
            return self._resume(value)
        finally:
            prof.inc("coroutine.resumes")
            prof.observe_us("coroutine.resume_us", prof.now() - t0)

    def _resume(self, value: Any = None) -> Any:
        if self.status is CoroutineState.DEAD:
            raise CoroutineError(f"cannot resume dead coroutine {self.name}")
        if self.status is CoroutineState.RUNNING:
            raise CoroutineError(f"{self.name} is already running")
        send_value = value
        if self.status is CoroutineState.CREATED:
            # Lua semantics: the first resume's arguments go to the body
            # as *function* arguments; with the body already constructed,
            # we stash the value on `first_value` and prime with None.
            self.first_value = value
            send_value = None
        self.status = CoroutineState.RUNNING
        try:
            while True:
                top = self._stack[-1]
                try:
                    yielded = top.send(send_value)
                except StopIteration as stop:
                    self._stack.pop()
                    if not self._stack:
                        self.status = CoroutineState.DEAD
                        self.result = stop.value
                        return stop.value
                    send_value = stop.value       # return to trampoline caller
                    continue
                if isinstance(yielded, Call):
                    self._stack.append(yielded.gen)
                    send_value = None
                    continue
                if isinstance(yielded, Suspend):
                    self.status = CoroutineState.SUSPENDED
                    return yielded.value
                if len(self._stack) == 1:
                    # bare-yield shorthand at the top frame
                    self.status = CoroutineState.SUSPENDED
                    return yielded
                raise CoroutineError(
                    f"{self.name}: nested frame yielded bare value "
                    f"{yielded!r}; nested suspends must use Suspend(...)")
        except BaseException:
            if self.status is CoroutineState.RUNNING:
                self.status = CoroutineState.DEAD
            raise

    def throw(self, exc: BaseException) -> Any:
        """Raise ``exc`` inside the coroutine at its suspension point."""
        if self.status is not CoroutineState.SUSPENDED:
            raise CoroutineError(
                f"can only throw into a suspended coroutine ({self.name} is "
                f"{self.status.value})")
        self.status = CoroutineState.RUNNING
        try:
            yielded = self._stack[-1].throw(exc)
        except StopIteration as stop:
            self._stack.clear()
            self.status = CoroutineState.DEAD
            self.result = stop.value
            return stop.value
        except BaseException:
            self.status = CoroutineState.DEAD
            raise
        self.status = CoroutineState.SUSPENDED
        return yielded.value if isinstance(yielded, Suspend) else yielded

    @property
    def alive(self) -> bool:
        return self.status is not CoroutineState.DEAD

    @property
    def depth(self) -> int:
        """Current nested-call depth (stackfulness made visible)."""
        return len(self._stack)

    def __iter__(self):
        """Drain as an iterator of suspended values (generator view)."""
        while self.alive:
            value = self.resume()
            if self.status is CoroutineState.DEAD:
                return
            yield value

    def __repr__(self) -> str:
        return f"<Coroutine {self.name} {self.status.value}>"


# ---------------------------------------------------------------------------
# symmetric coroutines
# ---------------------------------------------------------------------------

class Transfer:
    """``yield Transfer(other, v)`` — symmetric control transfer.

    Suspends the current coroutine and resumes ``target`` with ``v``;
    control never implicitly returns (only another Transfer back).
    ``Transfer(None, v)`` ends the whole symmetric session with value v.
    """

    __slots__ = ("target", "value")

    def __init__(self, target: Optional["SymmetricCoroutine"],
                 value: Any = None):
        self.target = target
        self.value = value


class SymmetricCoroutine(Coroutine):
    """A coroutine driven by :func:`run_symmetric` that passes control
    with ``Transfer`` instead of returning to a resumer."""


def run_symmetric(first: SymmetricCoroutine, value: Any = None) -> Any:
    """Dispatch loop for symmetric coroutines.

    Starts ``first`` and follows Transfer yields until a coroutine
    finishes (its return value ends the session) or transfers to None.
    """
    current: Optional[SymmetricCoroutine] = first
    while current is not None:
        out = current.resume(value)
        if current.status is CoroutineState.DEAD:
            return out
        if not isinstance(out, Transfer):
            raise CoroutineError(
                f"symmetric coroutine {current.name} yielded {out!r}; "
                f"symmetric coroutines may only yield Transfer(...)")
        current, value = out.target, out.value
    return value
