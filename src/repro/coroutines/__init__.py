"""repro.coroutines — the coroutine model, per the paper's taxonomy.

* :class:`Coroutine` — asymmetric, first-class, *stackful* (trampolined
  nested calls may suspend the whole stack), the construct de Moura &
  Ierusalimschy show is expressive enough for concurrency;
* :class:`SymmetricCoroutine` / :func:`run_symmetric` — symmetric
  ``transfer`` discipline;
* :class:`CoScheduler` + :class:`CoChannel`/:class:`CoEvent`/
  :class:`CoSemaphore` — cooperative multitasking with explicit yield
  points (no preemption between yields);
* :mod:`asyncio` bridge — run the same generator tasks on the
  production event loop for benchmarking.
"""

from .asyncio_bridge import (AsyncChannel, drive_cotask, gather_generators,
                             run_async)
from .core import (Call, Coroutine, CoroutineError, CoroutineState, Suspend,
                   SymmetricCoroutine, Transfer, run_symmetric)
from .pipeline import (batching, filtering, mapping, pipeline, sink, source,
                       stage, tee)
from .scheduler import (ChannelClosed, CoChannel, CoDeadlock, CoEvent,
                        CoScheduler, CoSemaphore, CoTask, pause)

__all__ = [
    "Coroutine", "SymmetricCoroutine", "CoroutineState", "CoroutineError",
    "Suspend", "Call", "Transfer", "run_symmetric",
    "CoScheduler", "CoTask", "CoChannel", "CoEvent", "CoSemaphore", "pause",
    "CoDeadlock", "ChannelClosed",
    "AsyncChannel", "drive_cotask", "gather_generators", "run_async",
    "pipeline", "stage", "source", "mapping", "filtering", "batching",
    "tee", "sink",
]
