"""Bridge from the course's generator-coroutine model to asyncio.

The paper used Python generators (2013-era coroutines); modern Python
expresses the same cooperative model with ``async``/``await``.  This
module maps one onto the other so the benchmark suite can compare the
hand-rolled :class:`~repro.coroutines.scheduler.CoScheduler` against
asyncio's production event loop on identical workloads:

* :func:`drive_cotask` — run a CoScheduler-style generator task (with
  ``pause()``/``CoChannel``) inside an asyncio event loop;
* :class:`AsyncChannel` — capacity-bounded channel with the CoChannel
  interface over ``asyncio.Queue``;
* :func:`gather_generators` — spawn many generator tasks on asyncio and
  await them all.
"""

from __future__ import annotations

import asyncio
import inspect
from typing import Any, Callable, Generator

from .scheduler import _Join, _Park, _Pause, _Wake

__all__ = ["AsyncChannel", "drive_cotask", "gather_generators", "run_async"]


class AsyncChannel:
    """Bounded channel with async put/get (asyncio-native)."""

    def __init__(self, capacity: int = 1):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self._queue: asyncio.Queue = asyncio.Queue(maxsize=capacity)

    async def put(self, item: Any) -> None:
        await self._queue.put(item)

    async def get(self) -> Any:
        return await self._queue.get()

    def __len__(self) -> int:
        return self._queue.qsize()


async def drive_cotask(gen: Generator) -> Any:
    """Run one cooperative generator task on the asyncio loop.

    ``pause()`` becomes ``await asyncio.sleep(0)``; park/wake markers
    become cooperative zero-sleeps (the shared channel state still
    gates progress, asyncio provides the fairness).  This deliberately
    preserves the generator's yield structure so the *same task code*
    measures both schedulers.
    """
    send_value: Any = None
    while True:
        try:
            marker = gen.send(send_value)
        except StopIteration as stop:
            return stop.value
        send_value = None
        if marker is None or isinstance(marker, (_Pause, _Park, _Wake)):
            await asyncio.sleep(0)
        elif isinstance(marker, _Join):
            while not marker.task.done:
                await asyncio.sleep(0)
        else:
            raise TypeError(f"cannot drive marker {marker!r} on asyncio")


async def gather_generators(*fns_or_gens: Callable[[], Generator] | Generator
                            ) -> list[Any]:
    """Spawn each generator task via :func:`drive_cotask`, await all."""
    gens = [fn if inspect.isgenerator(fn) else fn()
            for fn in fns_or_gens]
    return list(await asyncio.gather(*(drive_cotask(g) for g in gens)))


def run_async(coro_or_fn: Any, *args: Any) -> Any:
    """``asyncio.run`` convenience that accepts a coroutine function."""
    coro = coro_or_fn(*args) if callable(coro_or_fn) else coro_or_fn
    return asyncio.run(coro)
