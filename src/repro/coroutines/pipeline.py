"""Coroutine pipelines — the push-dataflow idiom coroutine courses teach.

A pipeline is a chain of *stages*; each stage is a coroutine that
receives items via ``send`` and pushes results downstream.  This is the
pattern the paper's reference [4] era built text processors from and
the canonical demonstration that coroutines give you concurrency
*structure* (interleaved producers/transformers/consumers) without any
scheduler at all: control transfers are the calls themselves.

>>> got = []
>>> p = pipeline(mapping(lambda x: x * 2),
...              filtering(lambda x: x > 2),
...              sink(got.append))
>>> for item in [1, 2, 3]:
...     p.send(item)
>>> got
[4, 6]
"""

from __future__ import annotations

import functools
from typing import Any, Callable, Generator, Iterable

__all__ = ["stage", "pipeline", "source", "mapping", "filtering",
           "batching", "tee", "sink"]


def stage(fn: Callable[..., Generator]) -> Callable[..., Generator]:
    """Decorator: auto-prime a consumer coroutine (advance to first yield).

    Every ``send``-driven coroutine must be primed before use; the
    decorator removes the classic forgot-to-prime bug.
    """
    @functools.wraps(fn)
    def primed(*args: Any, **kwargs: Any) -> Generator:
        gen = fn(*args, **kwargs)
        next(gen)
        return gen
    return primed


def pipeline(*stages: Generator) -> Generator:
    """Wire stages left-to-right; returns the entry stage.

    Each stage factory here takes the *downstream* generator as its
    last argument; ``pipeline`` composes them so callers write stages
    in reading order.
    """
    if not stages:
        raise ValueError("pipeline needs at least one stage")
    downstream = stages[-1]
    for factory in reversed(stages[:-1]):
        downstream = factory(downstream)     # type: ignore[operator]
    return downstream


# ---------------------------------------------------------------------------
# stage library — each returns a factory expecting its downstream
# ---------------------------------------------------------------------------

def source(items: Iterable[Any], target: Generator) -> int:
    """Push every item into the pipeline; returns how many were sent."""
    count = 0
    for item in items:
        target.send(item)
        count += 1
    return count


def mapping(fn: Callable[[Any], Any]):
    """Transform each item."""
    def factory(downstream: Generator) -> Generator:
        @stage
        def run() -> Generator:
            while True:
                item = yield
                downstream.send(fn(item))
        return run()
    return factory


def filtering(predicate: Callable[[Any], bool]):
    """Drop items failing the predicate."""
    def factory(downstream: Generator) -> Generator:
        @stage
        def run() -> Generator:
            while True:
                item = yield
                if predicate(item):
                    downstream.send(item)
        return run()
    return factory


def batching(size: int):
    """Group items into lists of ``size`` (flush via ``.close()`` is
    not supported — push a sentinel stage if partial batches matter)."""
    if size < 1:
        raise ValueError("batch size must be >= 1")

    def factory(downstream: Generator) -> Generator:
        @stage
        def run() -> Generator:
            batch: list[Any] = []
            while True:
                batch.append((yield))
                if len(batch) >= size:
                    downstream.send(list(batch))
                    batch.clear()
        return run()
    return factory


def tee(side_effect: Callable[[Any], None]):
    """Observe items without consuming them."""
    def factory(downstream: Generator) -> Generator:
        @stage
        def run() -> Generator:
            while True:
                item = yield
                side_effect(item)
                downstream.send(item)
        return run()
    return factory


@stage
def sink(consume: Callable[[Any], None]) -> Generator:
    """Terminal stage: hand every item to ``consume``."""
    while True:
        consume((yield))
