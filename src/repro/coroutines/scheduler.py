"""Cooperative multitasking on coroutines — the course's third model.

A :class:`CoScheduler` round-robins generator tasks; tasks give up the
CPU explicitly (``yield pause()``), block on each other (``yield from
task.join()`` via markers) and communicate through :class:`CoChannel`.
No preemption exists: between two yields a task cannot be interleaved,
which is the cooperative model's defining contrast with threads that
the course has students reason about.

The markers are internal; user code calls the generator helpers::

    def producer(chan):
        for i in range(3):
            yield from chan.put(i)

    def consumer(chan, out):
        for _ in range(3):
            out.append((yield from chan.get()))

    sched = CoScheduler()
    chan = CoChannel(capacity=1)
    out = []
    sched.spawn(producer, chan)
    sched.spawn(consumer, chan, out)
    sched.run()
"""

from __future__ import annotations

import inspect
import itertools
from collections import deque
from typing import Any, Callable, Generator, Iterator, Optional

#: process-wide default-name counter for unnamed tapped channels
_chan_ids = itertools.count(1)

__all__ = ["CoDeadlock", "CoTask", "CoScheduler", "pause", "CoChannel",
           "CoEvent", "CoSemaphore", "ChannelClosed"]


class CoDeadlock(RuntimeError):
    """All live tasks are parked — nobody can ever run again."""


class ChannelClosed(RuntimeError):
    """Operation on a closed (and, for get, drained) channel."""


# -- internal markers a task may yield -------------------------------------

class _Pause:
    __slots__ = ()


_PAUSE = _Pause()


def pause() -> _Pause:
    """Yield this to give other tasks a turn: ``yield pause()``."""
    return _PAUSE


class _Park:
    """Park the current task on a wait list (owned by a channel/event)."""

    __slots__ = ("waitlist",)

    def __init__(self, waitlist: list):
        self.waitlist = waitlist


class _Wake:
    """Move parked tasks from a wait list back to the ready queue."""

    __slots__ = ("waitlist", "count")

    def __init__(self, waitlist: list, count: Optional[int] = None):
        self.waitlist = waitlist
        self.count = count   # None = wake all


class _Join:
    __slots__ = ("task",)

    def __init__(self, task: "CoTask"):
        self.task = task


class CoTask:
    """Handle on a spawned cooperative task."""

    _counter = 0

    def __init__(self, gen: Generator, name: str = ""):
        CoTask._counter += 1
        self.name = name or f"cotask-{CoTask._counter}"
        #: spawn-order index within one scheduler (monitor-bus identity)
        self.ltid = -1
        self.gen = gen
        self.done = False
        self.result: Any = None
        self.error: Optional[BaseException] = None
        self.joiners: list["CoTask"] = []
        self.steps = 0
        self._send_value: Any = None
        #: True once some joiner observed this task's error
        self.error_observed = False
        #: profiling only: when this task last entered the ready queue
        self.ready_at = 0.0
        #: causal tracing only: the request context this task runs
        #: under (captured at spawn, advanced one span per resume)
        self.ctx: Any = None

    def join(self) -> Iterator[Any]:
        """``result = yield from task.join()`` — wait for completion."""
        if not self.done:
            yield _Join(self)
        if self.error is not None:
            self.error_observed = True
            raise self.error
        return self.result

    def __repr__(self) -> str:
        state = "done" if self.done else "live"
        return f"<CoTask {self.name} {state}>"


class CoScheduler:
    """Round-robin driver for cooperative tasks.

    ``metrics`` takes an optional :class:`repro.obs.KernelMetrics`;
    when provided, the scheduler maintains ``steps``,
    ``context_switches``, ``parks``, ``wakes``, ``tasks_spawned``,
    ``tasks_finished`` and per-task step counts — logical quantities
    only, so snapshots are identical across runs of the same program.

    ``monitors`` takes an optional :class:`repro.obs.MonitorBus`: each
    step is synthesized into a kernel-shaped
    :class:`~repro.core.trace.TraceEvent` (effects ``pause`` / ``park``
    / ``wake n`` / ``join x`` / ``return`` / ``raise E``) and fed to
    the bus, so cross-model detectors — starvation, task failure,
    deadlock reporting — watch cooperative programs too.
    :meth:`run` delivers the outcome via ``bus.finish``;
    :meth:`run_until` does not (the run is intentionally partial).
    """

    def __init__(self, metrics: Optional[Any] = None,
                 monitors: Optional[Any] = None,
                 profiler: Optional[Any] = None,
                 tracer: Optional[Any] = None) -> None:
        self.ready: deque[CoTask] = deque()
        self.tasks: list[CoTask] = []
        self.steps = 0
        self.metrics = metrics
        self.monitors = monitors
        #: optional :class:`repro.obs.Profiler` — wall-clock resume
        #: latency and ready-queue residency (``metrics`` stays logical)
        self.profiler = profiler
        #: optional :class:`repro.obs.causal.CausalTracer` — the
        #: spawner's request context is captured per task and each
        #: resume runs under it, recorded as a ``coro-resume`` span
        #: that extends the task's causal chain
        self.tracer = tracer
        self._last_stepped: Optional[CoTask] = None
        #: task whose slice is currently executing (valid inside
        #: ``_step``) — lets channels attribute taps to the runner
        self.current: Optional[CoTask] = None
        self._chan_seq = 0

    def spawn(self, fn: Callable[..., Generator] | Generator, *args: Any,
              name: str = "", **kwargs: Any) -> CoTask:
        gen = fn(*args, **kwargs) if inspect.isgeneratorfunction(fn) else fn
        task = CoTask(gen, name=name or getattr(fn, "__name__", ""))
        task.ltid = len(self.tasks)
        self.tasks.append(task)
        self.ready.append(task)
        if self.profiler is not None:
            task.ready_at = self.profiler.now()
        if self.tracer is not None:
            task.ctx = self.tracer.current()
        if self.metrics is not None:
            self.metrics.inc("tasks_spawned")
        return task

    # ------------------------------------------------------------------
    def run(self, max_steps: int = 1_000_000) -> None:
        """Run until every task finishes.

        Raises :class:`CoDeadlock` if live tasks remain but all are
        parked, and re-raises the first task exception at the end.
        """
        while self.ready:
            if self.steps >= max_steps:
                raise RuntimeError(f"exceeded {max_steps} scheduler steps")
            task = self.ready.popleft()
            self._step(task)
        leftover = [t for t in self.tasks if not t.done]
        if leftover:
            detail = "parked forever: " + ", ".join(t.name for t in leftover)
            if self.monitors is not None:
                self.monitors.finish("deadlock", detail)
            raise CoDeadlock(detail)
        if self.monitors is not None:
            failed = any(t.error is not None and not t.error_observed
                         for t in self.tasks)
            self.monitors.finish("failed" if failed else "done")
        for t in self.tasks:
            if t.error is not None and not t.error_observed:
                raise t.error

    def run_until(self, predicate: Callable[[], bool],
                  max_steps: int = 1_000_000) -> bool:
        """Run until ``predicate()`` holds; False if tasks ran out first."""
        while not predicate():
            if not self.ready:
                return False
            if self.steps >= max_steps:
                raise RuntimeError(f"exceeded {max_steps} scheduler steps")
            self._step(self.ready.popleft())
        return True

    # ------------------------------------------------------------------
    def _step(self, task: CoTask) -> None:
        self.steps += 1
        task.steps += 1
        self.current = task
        m = self.metrics
        if m is not None:
            m.inc("steps")
            if self._last_stepped is not None and self._last_stepped is not task:
                m.inc("context_switches")
            self._last_stepped = task
            m.task_add(task.name, "steps", 1)
        ready_names: tuple = ()
        if self.monitors is not None:
            # runnable set at choice time: the stepped task + the queue
            ready_names = (task.name,) + tuple(t.name for t in self.ready)
        prof = self.profiler
        t0 = 0.0
        if prof is not None:
            t0 = prof.now()
            prof.inc("coro.resumes")
            prof.observe_us("coro.ready_wait_us", t0 - task.ready_at)
        value, task._send_value = task._send_value, None
        trc = self.tracer
        tctx = task.ctx if trc is not None else None
        r0 = 0.0
        if tctx is not None:
            # resume under the task's context; the closed span becomes
            # the parent of whatever this slice spawns or sends
            r0 = trc.now()
            trc.install(tctx)
        try:
            marker = task.gen.send(value)
        except StopIteration as stop:
            if tctx is not None:
                task.ctx = trc.hop(tctx, "coro-resume", task.name,
                                   r0, trc.now())
                trc.uninstall()
            self._finish(task, result=stop.value)
            if prof is not None:
                prof.observe_us("coro.resume_us", prof.now() - t0)
            self._feed_monitors(task, "return", ready_names)
            return
        except BaseException as exc:  # noqa: BLE001 - task code may raise
            if tctx is not None:
                task.ctx = trc.hop(tctx, "coro-resume", task.name,
                                   r0, trc.now())
                trc.uninstall()
            self._finish(task, error=exc)
            if prof is not None:
                prof.observe_us("coro.resume_us", prof.now() - t0)
            self._feed_monitors(task, f"raise {type(exc).__name__}",
                                ready_names)
            return
        if tctx is not None:
            task.ctx = trc.hop(tctx, "coro-resume", task.name,
                               r0, trc.now())
            trc.uninstall()
        if prof is not None:
            prof.observe_us("coro.resume_us", prof.now() - t0)

        if marker is None or isinstance(marker, _Pause):
            self.ready.append(task)
            desc = "pause"
            if prof is not None:
                task.ready_at = prof.now()
        elif isinstance(marker, _Park):
            marker.waitlist.append(task)
            desc = "park"
            if m is not None:
                m.inc("parks")
            if prof is not None:
                prof.inc("coro.parks")
        elif isinstance(marker, _Wake):
            woken = (list(marker.waitlist) if marker.count is None
                     else marker.waitlist[:marker.count])
            del marker.waitlist[:len(woken)]
            self.ready.extend(woken)
            self.ready.append(task)
            desc = f"wake {len(woken)}"
            if m is not None and woken:
                m.inc("wakes", len(woken))
            if prof is not None:
                now = prof.now()
                task.ready_at = now
                for w in woken:
                    w.ready_at = now
                if woken:
                    prof.inc("coro.wakes", len(woken))
        elif isinstance(marker, _Join):
            if marker.task.done:
                self.ready.append(task)
                if prof is not None:
                    task.ready_at = prof.now()
            else:
                marker.task.joiners.append(task)
            desc = f"join {marker.task.name}"
        else:
            self._finish(task, error=TypeError(
                f"{task.name} yielded unknown marker {marker!r}"))
            desc = "raise TypeError"
        self._feed_monitors(task, desc, ready_names)

    def _feed_monitors(self, task: CoTask, desc: str,
                       ready_names: tuple) -> None:
        if self.monitors is None:
            return
        from ..core.trace import TraceEvent
        self.monitors.feed(TraceEvent(
            step=self.steps, task_tid=task.ltid, task_name=task.name,
            kind="run", effect_repr=desc, chosen_index=0, fanout=1,
            task_ltid=task.ltid), ready_names)

    def _finish(self, task: CoTask, result: Any = None,
                error: Optional[BaseException] = None) -> None:
        task.done = True
        task.result = result
        task.error = error
        if self.metrics is not None:
            self.metrics.inc("tasks_failed" if error is not None
                             else "tasks_finished")
        if self.profiler is not None and task.joiners:
            now = self.profiler.now()
            for j in task.joiners:
                j.ready_at = now
        self.ready.extend(task.joiners)
        task.joiners = []


# ---------------------------------------------------------------------------
# communication / synchronization for cooperative tasks
# ---------------------------------------------------------------------------

class CoChannel:
    """Bounded FIFO channel between cooperative tasks (capacity ≥ 1).

    Pass ``sched=`` (and optionally ``name=``) to tap the channel into
    the scheduler's :class:`~repro.obs.MonitorBus`: each ``put`` feeds a
    send-shaped :class:`~repro.core.trace.TraceEvent` and each ``get``
    a deliver-shaped one, so message-stream detectors — including
    :class:`~repro.obs.ProtocolMonitor` conformance checking — watch
    coroutine channels exactly like kernel mailboxes.  An untapped
    channel (the default) does zero extra work.
    """

    def __init__(self, capacity: int = 1, *, sched: Optional[Any] = None,
                 name: str = ""):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self.sched = sched
        self.name = name or f"chan-{next(_chan_ids)}"
        self._items: deque = deque()
        #: per-item ``(seq, sender-name)`` metadata, kept only when
        #: tapped — lets ``get`` attribute the delivery to its send
        self._meta: deque = deque()
        self._getters: list[CoTask] = []
        self._putters: list[CoTask] = []
        self.closed = False

    # -- monitor tap ---------------------------------------------------
    def _tapped(self) -> bool:
        return self.sched is not None and self.sched.monitors is not None

    def _tap(self, point: str, item: Any, seq: Optional[int],
             sender: Optional[str] = None) -> None:
        from ..core.trace import TraceEvent
        s = self.sched
        task = s.current
        tname = task.name if task is not None else "?"
        ltid = task.ltid if task is not None else -1
        ready = (tname,) + tuple(t.name for t in s.ready)
        if point == "send":
            ev = TraceEvent(
                step=s.steps, task_tid=ltid, task_name=tname,
                kind="run", effect_repr=f"send {item!r} to {self.name}",
                chosen_index=0, fanout=1, task_ltid=ltid,
                obj_name=self.name, msg_seq=seq)
        else:
            ev = TraceEvent(
                step=s.steps, task_tid=ltid, task_name=tname,
                kind="deliver", effect_repr=f"recv from {self.name}",
                chosen_index=0, fanout=1, task_ltid=ltid,
                payload_repr=f"<Envelope #{seq} {item!r} from {sender}>",
                recv_seq=seq, recv_mbox=self.name)
        s.monitors.feed(ev, ready)

    def put(self, item: Any) -> Iterator[Any]:
        while len(self._items) >= self.capacity and not self.closed:
            yield _Park(self._putters)
        if self.closed:
            raise ChannelClosed("put on closed channel")
        self._items.append(item)
        if self._tapped():
            self.sched._chan_seq += 1
            seq = self.sched._chan_seq
            cur = self.sched.current
            self._meta.append((seq, cur.name if cur is not None else "?"))
            self._tap("send", item, seq)
        if self._getters:
            yield _Wake(self._getters)

    def get(self) -> Iterator[Any]:
        while not self._items and not self.closed:
            yield _Park(self._getters)
        if not self._items:
            raise ChannelClosed("get on closed drained channel")
        item = self._items.popleft()
        if self._meta:
            seq, sender = self._meta.popleft()
            if self._tapped():
                self._tap("deliver", item, seq, sender)
        if self._putters:
            yield _Wake(self._putters)
        return item

    def close(self) -> Iterator[Any]:
        self.closed = True
        if self._getters:
            yield _Wake(self._getters)
        if self._putters:
            yield _Wake(self._putters)

    def __len__(self) -> int:
        return len(self._items)


class CoEvent:
    """One-shot broadcast flag for cooperative tasks."""

    def __init__(self) -> None:
        self._set = False
        self._waiters: list[CoTask] = []

    def wait(self) -> Iterator[Any]:
        while not self._set:
            yield _Park(self._waiters)

    def set(self) -> Iterator[Any]:
        self._set = True
        if self._waiters:
            yield _Wake(self._waiters)

    @property
    def is_set(self) -> bool:
        return self._set


class CoSemaphore:
    """Counting semaphore for cooperative tasks."""

    def __init__(self, permits: int = 1):
        if permits < 0:
            raise ValueError("permits must be >= 0")
        self.permits = permits
        self._waiters: list[CoTask] = []

    def acquire(self) -> Iterator[Any]:
        while self.permits == 0:
            yield _Park(self._waiters)
        self.permits -= 1

    def release(self) -> Iterator[Any]:
        self.permits += 1
        if self._waiters:
            yield _Wake(self._waiters, 1)
