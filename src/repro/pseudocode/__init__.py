"""repro.pseudocode — the paper's language-independent pseudocode, executable.

The notation of Figures 1-5 (Tew's CS1 pseudocode extended with
``PARA``, ``EXC_ACC``, ``WAIT``/``NOTIFY``, ``MESSAGE``/``Send``/
``ON_RECEIVING``) with a lexer, parser, static analysis, a kernel-backed
interpreter, exhaustive output enumeration, and a round-tripping
pretty-printer.

>>> from repro.pseudocode import possible_outputs
>>> sorted(possible_outputs('''
... PARA
... PRINT "hello "
... PRINT "world "
... ENDPARA
... '''))
['hello world', 'world hello']
"""

from .analysis import AnalysisError, ProgramInfo, analyze
from .ast_nodes import Program
from .formatter import format_expr, format_program, format_stmt
from .interpreter import (PseudoResult, PseudoRuntimeError, Runtime,
                          compile_program, interpret)
from .lexer import LexError, tokenize
from .outputs import (enumerate_outputs, normalize_output, output_witness,
                      possible_outputs)
from .parser import ParseError, parse
from .values import Instance, MessageValue, format_value

__all__ = [
    "tokenize", "parse", "analyze", "compile_program", "interpret",
    "possible_outputs", "enumerate_outputs", "output_witness",
    "normalize_output", "format_program", "format_stmt", "format_expr",
    "format_value", "Runtime", "PseudoResult", "Program", "ProgramInfo",
    "MessageValue", "Instance",
    "LexError", "ParseError", "AnalysisError", "PseudoRuntimeError",
]
