"""Token definitions for the paper's pseudocode notation (Figures 1-5).

The notation extends Tew's CS1 pseudocode with concurrency constructs:
``PARA/ENDPARA`` (concurrent execution), ``EXC_ACC/END_EXC_ACC``
(exclusive access), ``WAIT()/NOTIFY()`` (conditional synchronization),
and the message-passing forms ``MESSAGE.name(v)``, ``Send(m).To(r)``,
``ON_RECEIVING``.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any

__all__ = ["TokenType", "Token", "KEYWORDS"]


class TokenType(enum.Enum):
    # literals & names
    NUMBER = "NUMBER"
    STRING = "STRING"
    IDENT = "IDENT"
    # punctuation
    LPAREN = "("
    RPAREN = ")"
    COMMA = ","
    DOT = "."
    PIPE = "|"
    NEWLINE = "NEWLINE"
    EOF = "EOF"
    # operators
    ASSIGN = "="
    EQ = "=="
    NE = "!="
    LE = "<="
    GE = ">="
    LT = "<"
    GT = ">"
    PLUS = "+"
    MINUS = "-"
    STAR = "*"
    SLASH = "/"
    PERCENT = "%"
    # keywords (values are the surface spellings)
    IF = "IF"
    THEN = "THEN"
    ELSE = "ELSE"
    ENDIF = "ENDIF"
    WHILE = "WHILE"
    ENDWHILE = "ENDWHILE"
    PARA = "PARA"
    ENDPARA = "ENDPARA"
    DEFINE = "DEFINE"
    ENDDEF = "ENDDEF"
    CLASS = "CLASS"
    ENDCLASS = "ENDCLASS"
    EXC_ACC = "EXC_ACC"
    END_EXC_ACC = "END_EXC_ACC"
    WAIT = "WAIT"
    NOTIFY = "NOTIFY"
    PRINT = "PRINT"
    PRINTLN = "PRINTLN"
    SEND = "Send"
    TO = "To"
    ON_RECEIVING = "ON_RECEIVING"
    MESSAGE = "MESSAGE"
    NEW = "new"
    RETURN = "RETURN"
    AND = "AND"
    OR = "OR"
    NOT = "NOT"
    TRUE = "True"
    FALSE = "False"


#: surface spelling → keyword token type.  ``END_PARA`` is accepted as a
#: synonym for ``ENDPARA`` because the paper itself uses both (Figure 3
#: vs Figures 6-7).
KEYWORDS: dict[str, TokenType] = {
    **{t.value: t for t in [
        TokenType.IF, TokenType.THEN, TokenType.ELSE, TokenType.ENDIF,
        TokenType.WHILE, TokenType.ENDWHILE, TokenType.PARA,
        TokenType.ENDPARA, TokenType.DEFINE, TokenType.ENDDEF,
        TokenType.CLASS, TokenType.ENDCLASS, TokenType.EXC_ACC,
        TokenType.END_EXC_ACC, TokenType.WAIT, TokenType.NOTIFY,
        TokenType.PRINT, TokenType.PRINTLN, TokenType.SEND, TokenType.TO,
        TokenType.ON_RECEIVING, TokenType.MESSAGE, TokenType.NEW,
        TokenType.RETURN, TokenType.AND, TokenType.OR, TokenType.NOT,
        TokenType.TRUE, TokenType.FALSE,
    ]},
    "END_PARA": TokenType.ENDPARA,
}


@dataclass(frozen=True)
class Token:
    """One lexeme with its source position (1-based line/column)."""

    type: TokenType
    value: Any
    line: int
    col: int

    def __repr__(self) -> str:
        return f"Token({self.type.name}, {self.value!r}, L{self.line})"
