"""Static analysis of pseudocode programs.

Enforces the well-formedness rules the paper states in its figure
captions, and computes the information the interpreter needs:

* **Placement rules** (Figure 4): ``EXC_ACC`` "only appears within a
  function definition"; ``WAIT()``/``NOTIFY()`` "only be called inside a
  EXC_ACC/END_EXC_ACC block".  ``ON_RECEIVING`` must sit inside a class
  method (it reads the instance's mailbox).
* **Global variable set** — names assigned at program top level.  These
  are the variables concurrency acts on; everything assigned first
  inside a function is function-local.
* **EXC_ACC footprints and exclusion groups.**  Figure 4 keys exclusion
  on data: a block excludes "other function calls that read or modify
  the same variables that appear inside the markers".  We compute each
  block's footprint (global variables it references) and union-find
  overlapping footprints into *exclusion groups*; the interpreter backs
  each group with one monitor.  Transitive grouping is slightly coarser
  than the letter of the figure (blocks with disjoint footprints chained
  by a third block share a group) but is sound — it only removes
  interleavings that touch unrelated chained state — and it gives
  WAIT/NOTIFY an unambiguous home monitor.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional

from .ast_nodes import (Assign, Binary, Call, ClassDef, ExcAccBlock,
                        ExprStmt, FieldAssign, FunctionDef, IfStmt, Literal,
                        MessageExpr, MethodCall, NewExpr, NotifyStmt,
                        OnReceiving, ParaBlock, PrintStmt, Program,
                        ReturnStmt, SendStmt, Stmt, Unary, Var, WaitStmt,
                        WhileStmt)

__all__ = ["AnalysisError", "ProgramInfo", "analyze"]


class AnalysisError(Exception):
    """A well-formedness rule is violated; message names the line."""


@dataclass
class ProgramInfo:
    """Results of static analysis, consumed by the interpreter."""

    globals: set[str] = field(default_factory=set)
    #: every EXC_ACC block in the program (id() keyed via list identity)
    exc_blocks: list[ExcAccBlock] = field(default_factory=list)
    #: exclusion-group key → sorted variable tuple (for reporting)
    groups: dict[str, tuple[str, ...]] = field(default_factory=dict)
    #: functions/methods that contain ON_RECEIVING (actor behaviours)
    receive_methods: set[str] = field(default_factory=set)
    warnings: list[str] = field(default_factory=list)


# ---------------------------------------------------------------------------
# expression/statement walkers
# ---------------------------------------------------------------------------

def _expr_vars(expr) -> Iterable[str]:
    """All variable names read in an expression."""
    if expr is None:
        return
    if isinstance(expr, Var):
        yield expr.name
    elif isinstance(expr, Unary):
        yield from _expr_vars(expr.operand)
    elif isinstance(expr, Binary):
        yield from _expr_vars(expr.left)
        yield from _expr_vars(expr.right)
    elif isinstance(expr, (Call, MessageExpr, NewExpr)):
        for a in expr.args:
            yield from _expr_vars(a)
    elif isinstance(expr, MethodCall):
        yield from _expr_vars(expr.obj)
        for a in expr.args:
            yield from _expr_vars(a)
    elif isinstance(expr, Literal):
        return


def _stmt_vars(stmt: Stmt) -> Iterable[str]:
    """Variables read or written by a statement (recursively)."""
    if isinstance(stmt, Assign):
        yield stmt.name
        yield from _expr_vars(stmt.value)
    elif isinstance(stmt, FieldAssign):
        yield from _expr_vars(stmt.obj)
        yield from _expr_vars(stmt.value)
    elif isinstance(stmt, PrintStmt):
        yield from _expr_vars(stmt.value)
    elif isinstance(stmt, IfStmt):
        for cond, body in stmt.branches:
            yield from _expr_vars(cond)
            for s in body:
                yield from _stmt_vars(s)
        for s in stmt.else_body:
            yield from _stmt_vars(s)
    elif isinstance(stmt, WhileStmt):
        yield from _expr_vars(stmt.condition)
        for s in stmt.body:
            yield from _stmt_vars(s)
    elif isinstance(stmt, (ParaBlock,)):
        for s in stmt.arms:
            yield from _stmt_vars(s)
    elif isinstance(stmt, ExcAccBlock):
        for s in stmt.body:
            yield from _stmt_vars(s)
    elif isinstance(stmt, SendStmt):
        yield from _expr_vars(stmt.message)
        yield from _expr_vars(stmt.receiver)
    elif isinstance(stmt, OnReceiving):
        for arm in stmt.arms:
            for s in arm.body:
                yield from _stmt_vars(s)
    elif isinstance(stmt, ExprStmt):
        yield from _expr_vars(stmt.expr)
    elif isinstance(stmt, ReturnStmt):
        yield from _expr_vars(stmt.value)


def _assigned_names(stmts: Iterable[Stmt]) -> Iterable[str]:
    """Names assigned (recursively) in a statement list."""
    for s in stmts:
        if isinstance(s, Assign):
            yield s.name
        elif isinstance(s, IfStmt):
            for _, body in s.branches:
                yield from _assigned_names(body)
            yield from _assigned_names(s.else_body)
        elif isinstance(s, WhileStmt):
            yield from _assigned_names(s.body)
        elif isinstance(s, ParaBlock):
            yield from _assigned_names(s.arms)
        elif isinstance(s, ExcAccBlock):
            yield from _assigned_names(s.body)
        elif isinstance(s, OnReceiving):
            for arm in s.arms:
                yield from _assigned_names(arm.body)


# ---------------------------------------------------------------------------
# placement rules
# ---------------------------------------------------------------------------

def _check_placement(stmts: Iterable[Stmt], *, in_function: bool,
                     in_exc: bool, in_method: bool) -> None:
    for s in stmts:
        if isinstance(s, ExcAccBlock):
            if not in_function:
                raise AnalysisError(
                    f"line {s.line}: EXC_ACC only appears within a function "
                    f"definition (paper Figure 4)")
            if in_exc:
                raise AnalysisError(
                    f"line {s.line}: nested EXC_ACC blocks are not allowed")
            _check_placement(s.body, in_function=in_function, in_exc=True,
                             in_method=in_method)
        elif isinstance(s, (WaitStmt, NotifyStmt)):
            if not in_exc:
                kind = "WAIT()" if isinstance(s, WaitStmt) else "NOTIFY()"
                raise AnalysisError(
                    f"line {s.line}: {kind} may only be called inside an "
                    f"EXC_ACC/END_EXC_ACC block (paper Figure 4)")
        elif isinstance(s, OnReceiving):
            if not in_method:
                raise AnalysisError(
                    f"line {s.line}: ON_RECEIVING must appear inside a class "
                    f"method (it reads the instance's mailbox)")
            for arm in s.arms:
                _check_placement(arm.body, in_function=in_function,
                                 in_exc=in_exc, in_method=in_method)
        elif isinstance(s, IfStmt):
            for _, body in s.branches:
                _check_placement(body, in_function=in_function, in_exc=in_exc,
                                 in_method=in_method)
            _check_placement(s.else_body, in_function=in_function,
                             in_exc=in_exc, in_method=in_method)
        elif isinstance(s, WhileStmt):
            _check_placement(s.body, in_function=in_function, in_exc=in_exc,
                             in_method=in_method)
        elif isinstance(s, ParaBlock):
            _check_placement(s.arms, in_function=in_function, in_exc=in_exc,
                             in_method=in_method)


def _collect_exc_blocks(stmts: Iterable[Stmt], out: list[ExcAccBlock]) -> None:
    for s in stmts:
        if isinstance(s, ExcAccBlock):
            out.append(s)
            _collect_exc_blocks(s.body, out)
        elif isinstance(s, IfStmt):
            for _, body in s.branches:
                _collect_exc_blocks(body, out)
            _collect_exc_blocks(s.else_body, out)
        elif isinstance(s, WhileStmt):
            _collect_exc_blocks(s.body, out)
        elif isinstance(s, ParaBlock):
            _collect_exc_blocks(s.arms, out)
        elif isinstance(s, OnReceiving):
            for arm in s.arms:
                _collect_exc_blocks(arm.body, out)


# ---------------------------------------------------------------------------
# call-graph check
# ---------------------------------------------------------------------------

def _check_calls(stmts: Iterable[Stmt], known: set[str],
                 classes: dict[str, ClassDef], info: ProgramInfo) -> None:
    def check_expr(expr) -> None:
        if expr is None:
            return
        if isinstance(expr, Call):
            if expr.name not in known:
                raise AnalysisError(
                    f"line {expr.line}: call to undefined function "
                    f"{expr.name!r}")
            for a in expr.args:
                check_expr(a)
        elif isinstance(expr, NewExpr):
            if expr.class_name not in classes:
                raise AnalysisError(
                    f"line {expr.line}: new of undefined class "
                    f"{expr.class_name!r}")
            for a in expr.args:
                check_expr(a)
        elif isinstance(expr, MethodCall):
            check_expr(expr.obj)
            for a in expr.args:
                check_expr(a)
        elif isinstance(expr, Unary):
            check_expr(expr.operand)
        elif isinstance(expr, Binary):
            check_expr(expr.left)
            check_expr(expr.right)
        elif isinstance(expr, MessageExpr):
            for a in expr.args:
                check_expr(a)

    for s in stmts:
        if isinstance(s, Assign):
            check_expr(s.value)
        elif isinstance(s, FieldAssign):
            check_expr(s.obj)
            check_expr(s.value)
        elif isinstance(s, PrintStmt):
            check_expr(s.value)
        elif isinstance(s, IfStmt):
            for cond, body in s.branches:
                check_expr(cond)
                _check_calls(body, known, classes, info)
            _check_calls(s.else_body, known, classes, info)
        elif isinstance(s, WhileStmt):
            check_expr(s.condition)
            _check_calls(s.body, known, classes, info)
        elif isinstance(s, ParaBlock):
            _check_calls(s.arms, known, classes, info)
        elif isinstance(s, ExcAccBlock):
            _check_calls(s.body, known, classes, info)
        elif isinstance(s, SendStmt):
            check_expr(s.message)
            check_expr(s.receiver)
        elif isinstance(s, OnReceiving):
            for arm in s.arms:
                _check_calls(arm.body, known, classes, info)
        elif isinstance(s, ExprStmt):
            check_expr(s.expr)
        elif isinstance(s, ReturnStmt):
            check_expr(s.value)


# ---------------------------------------------------------------------------
# main entry
# ---------------------------------------------------------------------------

def analyze(program: Program) -> ProgramInfo:
    """Check well-formedness and annotate EXC_ACC blocks with groups.

    Mutates the AST (fills ``ExcAccBlock.footprint`` / ``.group``) and
    returns the :class:`ProgramInfo` summary.  Raises
    :class:`AnalysisError` on rule violations.
    """
    info = ProgramInfo()
    info.globals = set(_assigned_names(program.main))

    all_functions: list[tuple[FunctionDef, bool]] = [
        (fn, False) for fn in program.functions.values()]
    for cls in program.classes.values():
        all_functions.extend((m, True) for m in cls.methods.values())

    # placement rules
    _check_placement(program.main, in_function=False, in_exc=False,
                     in_method=False)
    for fn, is_method in all_functions:
        _check_placement(fn.body, in_function=True, in_exc=False,
                         in_method=is_method)
        if fn.has_receive():
            info.receive_methods.add(fn.name)

    # known callables: user functions + class methods (checked dynamically)
    known = set(program.functions)
    _check_calls(program.main, known, program.classes, info)
    for fn, _ in all_functions:
        _check_calls(fn.body, known | set(fn.params), program.classes, info)

    # EXC_ACC footprints
    blocks: list[ExcAccBlock] = []
    for fn, _ in all_functions:
        fn_blocks: list[ExcAccBlock] = []
        _collect_exc_blocks(fn.body, fn_blocks)
        local_names = set(fn.params) | set(_assigned_names(fn.body))
        for block in fn_blocks:
            refs = set(_stmt_vars(block))  # type: ignore[arg-type]
            footprint = frozenset((refs & info.globals) - set(fn.params))
            if not footprint:
                # no shared data: private group keyed by defining function
                footprint = frozenset({f"<{fn.name}>"})
                info.warnings.append(
                    f"line {block.line}: EXC_ACC in {fn.name!r} references no "
                    f"global variables; it only excludes itself")
            _ = local_names  # locals excluded implicitly via globals filter
            block.footprint = footprint
            blocks.append(block)
    _collect_exc_blocks(program.main, blocks)  # rejected earlier; belt & braces

    # union-find over footprints → exclusion groups
    parent: dict[str, str] = {}

    def find(x: str) -> str:
        while parent.setdefault(x, x) != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    def union(a: str, b: str) -> None:
        parent[find(a)] = find(b)

    for block in blocks:
        vars_ = sorted(block.footprint)
        for a, b in zip(vars_, vars_[1:]):
            union(a, b)
    members: dict[str, list[str]] = {}
    for block in blocks:
        for v in block.footprint:
            members.setdefault(find(v), []).append(v)
    for block in blocks:
        root = find(next(iter(sorted(block.footprint))))
        group_vars = tuple(sorted(set(members[root])))
        key = "+".join(group_vars)
        block.group = key
        info.groups[key] = group_vars
    info.exc_blocks = blocks
    return info
