"""Pretty-printer: AST → canonical pseudocode text.

Round-trips with the parser (``parse(format_program(parse(src)))`` is
structurally identical to ``parse(src)``), which the property-based
tests exercise.  Useful for emitting generated course materials and for
rendering misconception counterexamples back in the notation students
read.
"""

from __future__ import annotations

from .ast_nodes import (Assign, Binary, Call, ClassDef, ExcAccBlock,
                        ExprStmt, FieldAssign, FunctionDef, IfStmt, Literal,
                        MessageExpr, MethodCall, NewExpr, NotifyStmt,
                        OnReceiving, ParaBlock, PrintStmt, Program,
                        ReturnStmt, SendStmt, Stmt, Unary, Var, WaitStmt,
                        WhileStmt)

__all__ = ["format_expr", "format_stmt", "format_program"]

_INDENT = "  "


def format_expr(expr) -> str:
    if isinstance(expr, Literal):
        if isinstance(expr.value, str):
            escaped = expr.value.replace("\\", "\\\\").replace('"', '\\"')
            return f'"{escaped}"'
        if expr.value is True:
            return "True"
        if expr.value is False:
            return "False"
        return str(expr.value)
    if isinstance(expr, Var):
        return expr.name
    if isinstance(expr, Unary):
        if expr.op == "NOT":
            return f"NOT {format_expr(expr.operand)}"
        return f"-{format_expr(expr.operand)}"
    if isinstance(expr, Binary):
        return (f"({format_expr(expr.left)} {expr.op} "
                f"{format_expr(expr.right)})")
    if isinstance(expr, MessageExpr):
        args = ", ".join(format_expr(a) for a in expr.args)
        return f"MESSAGE.{expr.msg_name}({args})"
    if isinstance(expr, NewExpr):
        args = ", ".join(format_expr(a) for a in expr.args)
        return f"new {expr.class_name}({args})" if expr.args \
            else f"new {expr.class_name}()"
    if isinstance(expr, Call):
        args = ", ".join(format_expr(a) for a in expr.args)
        return f"{expr.name}({args})"
    if isinstance(expr, MethodCall):
        field = getattr(expr, "field_name", None)
        if field is not None and not expr.method:
            return f"{format_expr(expr.obj)}.{field}"
        args = ", ".join(format_expr(a) for a in expr.args)
        return f"{format_expr(expr.obj)}.{expr.method}({args})"
    raise TypeError(f"cannot format {type(expr).__name__}")


def _fmt_block(stmts: list[Stmt], depth: int) -> list[str]:
    lines: list[str] = []
    for s in stmts:
        lines.extend(format_stmt(s, depth))
    return lines


def format_stmt(stmt: Stmt, depth: int = 0) -> list[str]:
    pad = _INDENT * depth

    if isinstance(stmt, Assign):
        return [f"{pad}{stmt.name} = {format_expr(stmt.value)}"]
    if isinstance(stmt, FieldAssign):
        return [f"{pad}{format_expr(stmt.obj)}.{stmt.field_name} = "
                f"{format_expr(stmt.value)}"]
    if isinstance(stmt, PrintStmt):
        kw = "PRINTLN" if stmt.newline else "PRINT"
        return [f"{pad}{kw} {format_expr(stmt.value)}"]
    if isinstance(stmt, IfStmt):
        lines = []
        for i, (cond, body) in enumerate(stmt.branches):
            head = "IF" if i == 0 else "ELSE IF"
            lines.append(f"{pad}{head} {format_expr(cond)} THEN")
            lines.extend(_fmt_block(body, depth + 1))
        if stmt.else_body:
            lines.append(f"{pad}ELSE")
            lines.extend(_fmt_block(stmt.else_body, depth + 1))
        lines.append(f"{pad}ENDIF")
        return lines
    if isinstance(stmt, WhileStmt):
        return [f"{pad}WHILE {format_expr(stmt.condition)}",
                *_fmt_block(stmt.body, depth + 1),
                f"{pad}ENDWHILE"]
    if isinstance(stmt, ParaBlock):
        return [f"{pad}PARA",
                *_fmt_block(stmt.arms, depth + 1),
                f"{pad}ENDPARA"]
    if isinstance(stmt, ExcAccBlock):
        return [f"{pad}EXC_ACC",
                *_fmt_block(stmt.body, depth + 1),
                f"{pad}END_EXC_ACC"]
    if isinstance(stmt, WaitStmt):
        return [f"{pad}WAIT()"]
    if isinstance(stmt, NotifyStmt):
        return [f"{pad}NOTIFY()"]
    if isinstance(stmt, SendStmt):
        return [f"{pad}Send({format_expr(stmt.message)})"
                f".To({format_expr(stmt.receiver)})"]
    if isinstance(stmt, OnReceiving):
        lines = [f"{pad}ON_RECEIVING"]
        for arm in stmt.arms:
            params = ", ".join(arm.params)
            lines.append(f"{pad}{_INDENT}MESSAGE.{arm.msg_name}({params})")
            lines.extend(_fmt_block(arm.body, depth + 2))
        return lines
    if isinstance(stmt, ExprStmt):
        return [f"{pad}{format_expr(stmt.expr)}"]
    if isinstance(stmt, ReturnStmt):
        if stmt.value is None:
            return [f"{pad}RETURN"]
        return [f"{pad}RETURN {format_expr(stmt.value)}"]
    raise TypeError(f"cannot format {type(stmt).__name__}")


def _fmt_funcdef(fn: FunctionDef, depth: int) -> list[str]:
    pad = _INDENT * depth
    params = ", ".join(fn.params)
    return [f"{pad}DEFINE {fn.name}({params})",
            *_fmt_block(fn.body, depth + 1),
            f"{pad}ENDDEF"]


def format_program(program: Program) -> str:
    """Render a whole program as canonical pseudocode text."""
    lines: list[str] = []
    for cls in program.classes.values():
        lines.append(f"CLASS {cls.name}")
        for method in cls.methods.values():
            lines.extend(_fmt_funcdef(method, 1))
        lines.append("ENDCLASS")
        lines.append("")
    for fn in program.functions.values():
        lines.extend(_fmt_funcdef(fn, 0))
        lines.append("")
    lines.extend(_fmt_block(program.main, 0))
    return "\n".join(lines).rstrip() + "\n"
