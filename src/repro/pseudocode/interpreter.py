"""Tree-walking interpreter: pseudocode AST → kernel tasks.

Implements the atomicity model stated across the paper's Figures 1-5:

* *simple statements are executed atomically* — each statement executes
  between two scheduler yield points; the leading ``Pause`` marks the
  statement boundary where other tasks may interleave;
* *condition calculation is not necessarily atomic if it involves
  function call statements; the choice of branch is atomic* — condition
  expressions evaluate inline, but any user-function call inside them
  yields at the callee's own statement boundaries;
* *statements within PARA/ENDPARA execute concurrently* — each arm is a
  kernel task; the enclosing task joins all arms at ``ENDPARA``;
* *statements of a called function execute sequentially* but interleave
  with other arms — a call runs in the caller's task;
* ``EXC_ACC`` acquires the monitor of the block's exclusion group (see
  :mod:`repro.pseudocode.analysis`); ``WAIT()``/``NOTIFY()`` act on the
  innermost held group monitor with Mesa broadcast semantics;
* ``Send(...).To(...)`` is asynchronous; ``ON_RECEIVING`` is a daemon
  message loop on the instance's mailbox, whose delivery policy decides
  which arrival orders are possible.

The interpreter is written so a *program* (in the explorer's sense) can
be built from source once and executed under any policy: every run gets
fresh globals, monitors and mailboxes.
"""

from __future__ import annotations

from typing import Any, Callable, Iterator, Optional

from ..core.effects import (Acquire, Effect, Emit, Join, Notify, Pause,
                            Receive, Release, Send, Spawn, Wait)
from ..core.mailbox import DeliveryPolicy
from ..core.policy import SchedulingPolicy
from ..core.scheduler import Scheduler
from ..core.monitor import SimMonitor
from ..core.trace import Trace
from .analysis import ProgramInfo, analyze
from .ast_nodes import (Assign, Binary, Call, ExcAccBlock, ExprStmt,
                        FieldAssign, FunctionDef, IfStmt, Literal,
                        MessageExpr, MethodCall, NewExpr, NotifyStmt,
                        OnReceiving, ParaBlock, PrintStmt, Program,
                        ReceiveArm, ReturnStmt, SendStmt, Stmt, Unary, Var,
                        WaitStmt, WhileStmt)
from .parser import parse
from .values import Instance, MessageValue, format_value

__all__ = ["PseudoRuntimeError", "Runtime", "PseudoResult", "interpret",
           "compile_program"]


class PseudoRuntimeError(Exception):
    """Runtime fault in a pseudocode program (bad name, bad operand...)."""


class _ReturnSignal(Exception):
    def __init__(self, value: Any):
        self.value = value


class _TaskCtx:
    """Per-kernel-task interpreter state: the held-monitor stack."""

    __slots__ = ("monitors",)

    def __init__(self) -> None:
        self.monitors: list[SimMonitor] = []


class _Env:
    """Name environment: shared globals + optional function locals +
    the ``this`` instance for method bodies."""

    __slots__ = ("globals", "locals", "instance")

    def __init__(self, globals_: dict, locals_: Optional[dict] = None,
                 instance: Optional[Instance] = None):
        self.globals = globals_
        self.locals = locals_
        self.instance = instance

    def lookup(self, name: str, line: int) -> Any:
        if self.locals is not None and name in self.locals:
            return self.locals[name]
        if name in self.globals:
            return self.globals[name]
        if name == "this" and self.instance is not None:
            return self.instance
        raise PseudoRuntimeError(f"line {line}: undefined variable {name!r}")

    def assign(self, name: str, value: Any) -> None:
        # paper convention: names first assigned at top level are global;
        # inside a function, a parameter (or an existing local) shadows
        # the global, assignment to a global name updates the global,
        # and any other assignment creates a local.
        if self.locals is not None and name in self.locals:
            self.locals[name] = value
        elif name in self.globals or self.locals is None:
            self.globals[name] = value
        else:
            self.locals[name] = value


class _RunState:
    """Everything that must be fresh per execution."""

    def __init__(self, runtime: "Runtime", sched: Scheduler):
        self.runtime = runtime
        self.sched = sched
        self.globals: dict[str, Any] = {}
        self.monitors: dict[str, SimMonitor] = {
            key: SimMonitor(f"exc[{key}]")
            for key in runtime.info.groups}


def _direct_vars(stmt: Stmt):
    """Variables the statement's *first atomic segment* reads or writes.

    This is the segment between the statement's boundary yield and the
    statement's first internal yield — e.g. for an assignment, the
    right-hand side evaluation plus the store; for an IF, all condition
    evaluations; for a WHILE, the condition.  Statements executed inside
    the segment's callees carry their own boundaries and are excluded.
    """
    from .analysis import _expr_vars
    if isinstance(stmt, Assign):
        yield stmt.name
        yield from _expr_vars(stmt.value)
    elif isinstance(stmt, PrintStmt):
        yield from _expr_vars(stmt.value)
    elif isinstance(stmt, IfStmt):
        for cond, _ in stmt.branches:
            yield from _expr_vars(cond)
    elif isinstance(stmt, WhileStmt):
        yield from _expr_vars(stmt.condition)
    elif isinstance(stmt, SendStmt):
        yield from _expr_vars(stmt.message)
        yield from _expr_vars(stmt.receiver)
    elif isinstance(stmt, ExprStmt):
        yield from _expr_vars(stmt.expr)
    elif isinstance(stmt, ReturnStmt):
        yield from _expr_vars(stmt.value)


def _stmt_label(stmt: Stmt) -> str:
    kind = type(stmt).__name__
    if isinstance(stmt, ExprStmt) and isinstance(stmt.expr, Call):
        return f"L{stmt.line}:{stmt.expr.name}()"
    if isinstance(stmt, ExprStmt) and isinstance(stmt.expr, MethodCall):
        return f"L{stmt.line}:.{stmt.expr.method}()"
    if isinstance(stmt, Assign):
        return f"L{stmt.line}:{stmt.name}="
    return f"L{stmt.line}:{kind}"


class Runtime:
    """A compiled pseudocode program, executable under any scheduler.

    >>> rt = compile_program('''
    ... PARA
    ... PRINT "hello "
    ... PRINT "world "
    ... ENDPARA
    ... ''')
    >>> rt.run().output_text()
    'hello world '
    """

    def __init__(self, program: Program,
                 mailbox_policy: DeliveryPolicy = DeliveryPolicy.ARBITRARY):
        self.program = program
        self.mailbox_policy = mailbox_policy
        self.info: ProgramInfo = analyze(program)

    # ------------------------------------------------------------------
    # explorer integration
    # ------------------------------------------------------------------
    def make_program(self) -> Callable[[Scheduler], Callable[[], Any]]:
        """Return a `Program` callable for :func:`repro.verify.explore`."""

        def program_fn(sched: Scheduler) -> Callable[[], Any]:
            rs = _RunState(self, sched)
            sched.spawn(self._exec_main(rs), name="main")
            return lambda: self._observe(rs)

        return program_fn

    def run(self, policy: Optional[SchedulingPolicy] = None,
            **sched_kw: Any) -> "PseudoResult":
        """Execute once under ``policy`` (default fair round-robin)."""
        sched = Scheduler(policy, **sched_kw)
        rs = _RunState(self, sched)
        sched.spawn(self._exec_main(rs), name="main")
        trace = sched.run()
        return PseudoResult(trace=trace, globals=dict(rs.globals))

    @staticmethod
    def _observe(rs: "_RunState") -> dict[str, Any]:
        simple = (int, float, str, bool, MessageValue, type(None))
        return {k: v for k, v in rs.globals.items() if isinstance(v, simple)}

    # ------------------------------------------------------------------
    # statement execution (generators over kernel effects)
    # ------------------------------------------------------------------
    def _exec_main(self, rs: _RunState) -> Iterator[Effect]:
        env = _Env(rs.globals)
        ctx = _TaskCtx()
        yield from self._exec_stmts(rs, self.program.main, env, ctx)

    def _exec_stmts(self, rs: _RunState, stmts: list[Stmt], env: _Env,
                    ctx: _TaskCtx) -> Iterator[Effect]:
        for stmt in stmts:
            yield from self._exec_stmt(rs, stmt, env, ctx)

    def _needs_boundary(self, stmt: Stmt) -> bool:
        """Statement-boundary elision — a sound partial-order reduction.

        Every statement boundary is a scheduling point, and each point
        multiplies the schedule tree.  A boundary only matters when the
        segment it opens is *observable*: it touches a global variable,
        emits output, or mutates an object field.  Statements whose
        first segment is pure plumbing (entering EXC_ACC — the Acquire
        is the real scheduling point; WAIT/NOTIFY preludes; PARA spawn
        setup; calls whose arguments are local) commute with every
        concurrent action, so eliding their boundary removes redundant
        interleavings without removing any reachable behaviour.
        """
        cached = getattr(stmt, "_boundary", None)
        if cached is not None:
            return cached
        if isinstance(stmt, (PrintStmt, FieldAssign)):
            need = True   # output order / shared object fields are observable
        elif isinstance(stmt, (ExcAccBlock, WaitStmt, NotifyStmt, ParaBlock,
                               OnReceiving)):
            need = False  # the kernel effect itself is the scheduling point
        else:
            need = any(v in self.info.globals for v in _direct_vars(stmt))
        stmt._boundary = need
        return need

    def _boundary_effect(self, stmt: Stmt) -> Effect:
        """The statement-boundary effect, annotated for race detection.

        A boundary whose statement writes a global is an
        ``Access(var, WRITE)``; one that only reads globals is an
        ``Access(var, READ)`` (first such variable — the kernel carries
        one annotation per effect).  The race detector then flags
        unsynchronized conflicting statements in pseudocode programs,
        e.g. the two halves of a split read-modify-write.

        Known approximations: only one variable per statement is
        annotated, and for statements whose expression calls a function
        the annotation is stamped at the boundary (before the callee
        runs), which can over-report concurrency for such statements —
        conservative in the "may flag a questionable pair" direction,
        never hiding a real race on the annotated variable.
        """
        cached = getattr(stmt, "_boundary_fx", None)
        if cached is not None:
            return cached
        from ..core.effects import Access as AccessEffect
        from ..core.effects import AccessKind
        label = _stmt_label(stmt)
        effect: Effect = Pause(label)
        if isinstance(stmt, Assign) and stmt.name in self.info.globals:
            effect = AccessEffect(stmt.name, AccessKind.WRITE, label)
        else:
            for var in _direct_vars(stmt):
                if var in self.info.globals:
                    effect = AccessEffect(var, AccessKind.READ, label)
                    break
        stmt._boundary_fx = effect
        return effect

    def _exec_stmt(self, rs: _RunState, stmt: Stmt, env: _Env,
                   ctx: _TaskCtx) -> Iterator[Effect]:
        if self._needs_boundary(stmt):
            yield self._boundary_effect(stmt)  # statement boundary

        if isinstance(stmt, Assign):
            value = yield from self._eval(rs, stmt.value, env, ctx)
            env.assign(stmt.name, value)
            return
        if isinstance(stmt, FieldAssign):
            obj = yield from self._eval(rs, stmt.obj, env, ctx)
            if not isinstance(obj, Instance):
                raise PseudoRuntimeError(
                    f"line {stmt.line}: field assignment on non-object {obj!r}")
            value = yield from self._eval(rs, stmt.value, env, ctx)
            obj.fields[stmt.field_name] = value
            return
        if isinstance(stmt, PrintStmt):
            value = yield from self._eval(rs, stmt.value, env, ctx)
            text = format_value(value)
            yield Emit(text + "\n" if stmt.newline else text)
            return
        if isinstance(stmt, IfStmt):
            for cond, body in stmt.branches:
                test = yield from self._eval(rs, cond, env, ctx)
                if test:
                    yield from self._exec_stmts(rs, body, env, ctx)
                    return
            yield from self._exec_stmts(rs, stmt.else_body, env, ctx)
            return
        if isinstance(stmt, WhileStmt):
            first = True
            while True:
                if not first:
                    # loop back-edge is a statement boundary (and keeps
                    # spin loops preemptible)
                    yield Pause(f"L{stmt.line}:while")
                first = False
                test = yield from self._eval(rs, stmt.condition, env, ctx)
                if not test:
                    return
                yield from self._exec_stmts(rs, stmt.body, env, ctx)
            return
        if isinstance(stmt, ParaBlock):
            tasks = []
            for arm in stmt.arms:
                arm_ctx = _TaskCtx()
                gen = self._exec_arm(rs, arm, env, arm_ctx)
                task = yield Spawn(gen, name=_stmt_label(arm))
                tasks.append(task)
            for task in tasks:
                yield Join(task)
            return
        if isinstance(stmt, ExcAccBlock):
            monitor = rs.monitors[stmt.group]
            yield Acquire(monitor)
            ctx.monitors.append(monitor)
            try:
                yield from self._exec_stmts(rs, stmt.body, env, ctx)
            finally:
                ctx.monitors.pop()
                yield Release(monitor)
            return
        if isinstance(stmt, WaitStmt):
            monitor = self._current_monitor(ctx, stmt.line, "WAIT()")
            yield Wait(monitor)
            return
        if isinstance(stmt, NotifyStmt):
            monitor = self._current_monitor(ctx, stmt.line, "NOTIFY()")
            # paper semantics: "once a NOTIFY() function is executed, all
            # WAIT() functions finish their execution" — broadcast
            yield Notify(monitor, all=True)
            return
        if isinstance(stmt, SendStmt):
            message = yield from self._eval(rs, stmt.message, env, ctx)
            receiver = yield from self._eval(rs, stmt.receiver, env, ctx)
            if not isinstance(receiver, Instance):
                raise PseudoRuntimeError(
                    f"line {stmt.line}: Send target {receiver!r} is not an "
                    f"object")
            if not isinstance(message, MessageValue):
                raise PseudoRuntimeError(
                    f"line {stmt.line}: Send payload {message!r} is not a "
                    f"MESSAGE value")
            yield Send(receiver.mailbox, message)
            return
        if isinstance(stmt, OnReceiving):
            yield from self._exec_receive_loop(rs, stmt, env, ctx)
            return
        if isinstance(stmt, ExprStmt):
            yield from self._eval(rs, stmt.expr, env, ctx)
            return
        if isinstance(stmt, ReturnStmt):
            value = None
            if stmt.value is not None:
                value = yield from self._eval(rs, stmt.value, env, ctx)
            raise _ReturnSignal(value)

        raise PseudoRuntimeError(
            f"line {stmt.line}: unsupported statement {type(stmt).__name__}")

    def _exec_arm(self, rs: _RunState, arm: Stmt, env: _Env,
                  ctx: _TaskCtx) -> Iterator[Effect]:
        """One PARA arm as a task body (swallows _ReturnSignal)."""
        try:
            yield from self._exec_stmt(rs, arm, env, ctx)
        except _ReturnSignal:
            pass

    @staticmethod
    def _current_monitor(ctx: _TaskCtx, line: int, what: str) -> SimMonitor:
        if not ctx.monitors:
            raise PseudoRuntimeError(
                f"line {line}: {what} outside any EXC_ACC block at run time")
        return ctx.monitors[-1]

    def _exec_receive_loop(self, rs: _RunState, stmt: OnReceiving, env: _Env,
                           ctx: _TaskCtx) -> Iterator[Effect]:
        instance = env.instance
        if instance is None:
            raise PseudoRuntimeError(
                f"line {stmt.line}: ON_RECEIVING with no receiving instance")
        arms = stmt.arms

        def matcher(msg: Any) -> bool:
            return isinstance(msg, MessageValue) and any(
                a.msg_name == msg.name and len(a.params) == len(msg.args)
                for a in arms)

        while True:
            msg = yield Receive(instance.mailbox, matcher)
            arm = next(a for a in arms
                       if a.msg_name == msg.name
                       and len(a.params) == len(msg.args))
            for param, value in zip(arm.params, msg.args):
                env.assign(param, value) if env.locals is None else \
                    env.locals.__setitem__(param, value)
            yield from self._exec_stmts(rs, arm.body, env, ctx)

    # ------------------------------------------------------------------
    # expressions
    # ------------------------------------------------------------------
    def _eval(self, rs: _RunState, expr: Any, env: _Env,
              ctx: _TaskCtx) -> Iterator[Effect]:
        if isinstance(expr, Literal):
            return expr.value
        if isinstance(expr, Var):
            return env.lookup(expr.name, expr.line)
        if isinstance(expr, Unary):
            operand = yield from self._eval(rs, expr.operand, env, ctx)
            if expr.op == "NOT":
                return not operand
            if expr.op == "-":
                return -operand
            raise PseudoRuntimeError(f"line {expr.line}: bad unary {expr.op}")
        if isinstance(expr, Binary):
            return (yield from self._eval_binary(rs, expr, env, ctx))
        if isinstance(expr, MessageExpr):
            args = []
            for a in expr.args:
                args.append((yield from self._eval(rs, a, env, ctx)))
            return MessageValue(expr.msg_name, tuple(args))
        if isinstance(expr, NewExpr):
            cls = self.program.classes.get(expr.class_name)
            if cls is None:
                raise PseudoRuntimeError(
                    f"line {expr.line}: unknown class {expr.class_name!r}")
            instance = Instance(cls, policy=self.mailbox_policy)
            if expr.args:
                init = cls.methods.get("init")
                if init is None:
                    raise PseudoRuntimeError(
                        f"line {expr.line}: class {cls.name!r} takes no "
                        f"constructor arguments (no DEFINE init)")
                args = []
                for a in expr.args:
                    args.append((yield from self._eval(rs, a, env, ctx)))
                yield from self._call_function(rs, init, args, env, ctx,
                                               instance=instance)
            return instance
        if isinstance(expr, Call):
            fn = self.program.functions.get(expr.name)
            if fn is None:
                raise PseudoRuntimeError(
                    f"line {expr.line}: undefined function {expr.name!r}")
            args = []
            for a in expr.args:
                args.append((yield from self._eval(rs, a, env, ctx)))
            return (yield from self._call_function(rs, fn, args, env, ctx,
                                                   instance=env.instance))
        if isinstance(expr, MethodCall):
            # field read sneaks in as a MethodCall subclass (_FieldRef)
            if getattr(expr, "field_name", None) is not None and not expr.method:
                obj = yield from self._eval(rs, expr.obj, env, ctx)
                if not isinstance(obj, Instance):
                    raise PseudoRuntimeError(
                        f"line {expr.line}: field read on non-object {obj!r}")
                try:
                    return obj.fields[expr.field_name]
                except KeyError:
                    raise PseudoRuntimeError(
                        f"line {expr.line}: {obj!r} has no field "
                        f"{expr.field_name!r}") from None
            obj = yield from self._eval(rs, expr.obj, env, ctx)
            if not isinstance(obj, Instance):
                raise PseudoRuntimeError(
                    f"line {expr.line}: method call on non-object {obj!r}")
            method = obj.class_def.methods.get(expr.method)
            if method is None:
                raise PseudoRuntimeError(
                    f"line {expr.line}: {obj.class_name} has no method "
                    f"{expr.method!r}")
            args = []
            for a in expr.args:
                args.append((yield from self._eval(rs, a, env, ctx)))
            if method.has_receive():
                # actor behaviour: start the message loop as a daemon task
                gen = self._method_task(rs, obj, method, args)
                yield Spawn(gen, name=f"{obj!r}.{method.name}", daemon=True)
                return None
            return (yield from self._call_function(rs, method, args, env,
                                                   ctx, instance=obj))
        raise PseudoRuntimeError(
            f"unsupported expression {type(expr).__name__}")

    def _eval_binary(self, rs: _RunState, expr: Binary, env: _Env,
                     ctx: _TaskCtx) -> Iterator[Effect]:
        if expr.op == "AND":
            left = yield from self._eval(rs, expr.left, env, ctx)
            if not left:
                return False
            right = yield from self._eval(rs, expr.right, env, ctx)
            return bool(right)
        if expr.op == "OR":
            left = yield from self._eval(rs, expr.left, env, ctx)
            if left:
                return True
            right = yield from self._eval(rs, expr.right, env, ctx)
            return bool(right)
        left = yield from self._eval(rs, expr.left, env, ctx)
        right = yield from self._eval(rs, expr.right, env, ctx)
        try:
            if expr.op == "+":
                return left + right
            if expr.op == "-":
                return left - right
            if expr.op == "*":
                return left * right
            if expr.op == "/":
                # pseudocode division: integer / integer stays exact when even
                result = left / right
                if isinstance(left, int) and isinstance(right, int) \
                        and left % right == 0:
                    return left // right
                return result
            if expr.op == "%":
                return left % right
            if expr.op == "==":
                return left == right
            if expr.op == "!=":
                return left != right
            if expr.op == "<":
                return left < right
            if expr.op == "<=":
                return left <= right
            if expr.op == ">":
                return left > right
            if expr.op == ">=":
                return left >= right
        except TypeError as exc:
            raise PseudoRuntimeError(
                f"line {expr.line}: bad operands for {expr.op!r}: "
                f"{left!r}, {right!r}") from exc
        raise PseudoRuntimeError(f"line {expr.line}: bad operator {expr.op!r}")

    # ------------------------------------------------------------------
    # calls
    # ------------------------------------------------------------------
    def _call_function(self, rs: _RunState, fn: FunctionDef, args: list,
                       env: _Env, ctx: _TaskCtx,
                       instance: Optional[Instance]) -> Iterator[Effect]:
        if len(args) != len(fn.params):
            raise PseudoRuntimeError(
                f"{fn.name}() takes {len(fn.params)} argument(s), got "
                f"{len(args)}")
        callee_env = _Env(env.globals, dict(zip(fn.params, args)), instance)
        try:
            yield from self._exec_stmts(rs, fn.body, callee_env, ctx)
        except _ReturnSignal as ret:
            return ret.value
        return None

    def _method_task(self, rs: _RunState, instance: Instance,
                     method: FunctionDef, args: list) -> Iterator[Effect]:
        """Body of a spawned actor-behaviour task."""
        env = _Env(rs.globals, dict(zip(method.params, args)), instance)
        ctx = _TaskCtx()
        try:
            yield from self._exec_stmts(rs, method.body, env, ctx)
        except _ReturnSignal:
            pass


class PseudoResult:
    """Outcome of a single pseudocode execution."""

    def __init__(self, trace: Trace, globals: dict[str, Any]):
        self.trace = trace
        self.globals = globals

    @property
    def outcome(self) -> str:
        return self.trace.outcome

    def output_text(self) -> str:
        return self.trace.output_str()

    def output_tokens(self) -> list[str]:
        return self.output_text().split()

    def __repr__(self) -> str:
        return (f"<PseudoResult {self.outcome} output={self.output_text()!r} "
                f"globals={self.globals!r}>")


def compile_program(source: str,
                    mailbox_policy: DeliveryPolicy = DeliveryPolicy.ARBITRARY
                    ) -> Runtime:
    """Parse + analyze pseudocode text into an executable Runtime."""
    return Runtime(parse(source), mailbox_policy=mailbox_policy)


def interpret(source: str, policy: Optional[SchedulingPolicy] = None,
              mailbox_policy: DeliveryPolicy = DeliveryPolicy.ARBITRARY,
              **sched_kw: Any) -> PseudoResult:
    """One-shot: parse, analyze and execute pseudocode text."""
    return compile_program(source, mailbox_policy).run(policy, **sched_kw)
