"""Runtime values of the pseudocode language.

Pseudocode programs compute over Python ints/floats/strings/booleans plus
two language-specific values: :class:`MessageValue` (``MESSAGE.name(v)``)
and :class:`Instance` (``new ClassName()``, which owns a mailbox so it
can be a ``Send(...).To(...)`` target).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any

from ..core.mailbox import DeliveryPolicy, Mailbox

if TYPE_CHECKING:  # pragma: no cover
    from .ast_nodes import ClassDef

__all__ = ["MessageValue", "Instance", "format_value"]


@dataclass(frozen=True)
class MessageValue:
    """A ``MESSAGE.name(args...)`` value — named, carries a value tuple.

    The paper: "A special message variable that carries a collection of
    values.  The message-name is used to distinguish message variables
    from one another."
    """

    name: str
    args: tuple = ()

    def __repr__(self) -> str:
        inner = ", ".join(repr(a) for a in self.args)
        return f"MESSAGE.{self.name}({inner})"


class Instance:
    """An object created with ``new ClassName(...)``.

    Owns a mailbox (so it can receive messages) and a field dictionary.
    Identity semantics — two instances are equal only if identical.
    """

    _counter = 0

    def __init__(self, class_def: "ClassDef",
                 policy: DeliveryPolicy = DeliveryPolicy.ARBITRARY):
        Instance._counter += 1
        self.serial = Instance._counter
        self.class_def = class_def
        self.fields: dict[str, Any] = {}
        self.mailbox = Mailbox(f"{class_def.name}#{self.serial}", policy=policy)

    @property
    def class_name(self) -> str:
        return self.class_def.name

    def __repr__(self) -> str:
        return f"<{self.class_name}#{self.serial}>"


def format_value(value: Any) -> str:
    """How PRINT renders a value (booleans in pseudocode spelling)."""
    if value is True:
        return "True"
    if value is False:
        return "False"
    if isinstance(value, float) and value.is_integer():
        return str(value)
    return str(value)
