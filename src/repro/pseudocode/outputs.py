"""Output-possibility enumeration — the paper's "Output possibility 1/2/…".

Every concurrent example in Figures 3-5 lists the set of outputs the
program could print.  :func:`possible_outputs` computes that set exactly
by exhaustively exploring the schedule space, and
:func:`output_witness` retrieves a replayable schedule for a particular
possibility.

Outputs are compared as whitespace-normalized token strings, matching
how the figures present them ("possibility 1: hello world").
"""

from __future__ import annotations

from typing import Any, Optional, Union

from ..core.mailbox import DeliveryPolicy
from ..verify.explorer import ExplorationResult, explore
from .interpreter import Runtime, compile_program

__all__ = ["normalize_output", "possible_outputs", "enumerate_outputs",
           "output_witness"]


def normalize_output(text: str) -> str:
    """Whitespace-normalize an output for possibility comparison."""
    return " ".join(text.split())


def _as_runtime(program: Union[str, Runtime],
                mailbox_policy: DeliveryPolicy) -> Runtime:
    if isinstance(program, Runtime):
        return program
    return compile_program(program, mailbox_policy)


def enumerate_outputs(program: Union[str, Runtime],
                      *,
                      mailbox_policy: DeliveryPolicy = DeliveryPolicy.ARBITRARY,
                      max_runs: int = 20_000,
                      **explore_kw: Any) -> ExplorationResult:
    """Explore all schedules of a pseudocode program.

    Accepts source text or a pre-compiled :class:`Runtime`.  Raises
    RuntimeError if exploration is cut off by the budget — possibility
    sets must be exact to be meaningful.
    """
    runtime = _as_runtime(program, mailbox_policy)
    result = explore(runtime.make_program(), max_runs=max_runs, **explore_kw)
    if not result.complete:
        raise RuntimeError(
            f"schedule space exceeds budget ({result.runs} runs explored); "
            f"raise max_runs or simplify the program")
    if result.outcomes.get("failed"):
        sample = result.failures[0] if result.failures else None
        raise RuntimeError(
            "program failed on some schedule"
            + (f": {sample.render(last=5)}" if sample else ""))
    return result


def possible_outputs(program: Union[str, Runtime],
                     **kw: Any) -> set[str]:
    """The exact set of normalized outputs over all schedules.

    >>> sorted(possible_outputs('''
    ... PARA
    ... PRINT "hello "
    ... PRINT "world "
    ... ENDPARA
    ... '''))
    ['hello world', 'world hello']
    """
    result = enumerate_outputs(program, **kw)
    return {normalize_output(s) for s in result.output_strings()}


def output_witness(program: Union[str, Runtime], output: str,
                   **kw: Any) -> Optional[list[int]]:
    """A replayable schedule producing ``output`` (normalized), or None."""
    result = enumerate_outputs(program, **kw)
    want = normalize_output(output)
    for key, trace in result.witnesses.items():
        got = normalize_output("".join(str(v) for v in key[0]))
        if got == want:
            return trace.schedule()
    return None
