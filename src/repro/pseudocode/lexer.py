"""Hand-written lexer for the pseudocode notation.

Line-oriented: newlines are significant (they terminate statements).
``#`` starts a comment to end of line.  Keywords are case-sensitive,
matching the paper's figures exactly (``PARA``, ``Send``, ``To``,
``new``...).
"""

from __future__ import annotations

from .tokens import KEYWORDS, Token, TokenType

__all__ = ["LexError", "tokenize"]


class LexError(SyntaxError):
    """Invalid character or malformed literal, with source position."""

    def __init__(self, message: str, line: int, col: int):
        super().__init__(f"line {line}, col {col}: {message}")
        self.line = line
        self.col = col


_TWO_CHAR = {
    "==": TokenType.EQ, "!=": TokenType.NE,
    "<=": TokenType.LE, ">=": TokenType.GE,
}
_ONE_CHAR = {
    "(": TokenType.LPAREN, ")": TokenType.RPAREN, ",": TokenType.COMMA,
    ".": TokenType.DOT, "|": TokenType.PIPE, "=": TokenType.ASSIGN,
    "<": TokenType.LT, ">": TokenType.GT, "+": TokenType.PLUS,
    "-": TokenType.MINUS, "*": TokenType.STAR, "/": TokenType.SLASH,
    "%": TokenType.PERCENT,
}


def _ident_start(ch: str) -> bool:
    return ch.isalpha() or ch == "_"


def _ident_cont(ch: str) -> bool:
    return ch.isalnum() or ch == "_"


def tokenize(source: str) -> list[Token]:
    """Lex ``source`` into a token list ending with EOF.

    Consecutive newlines collapse to one NEWLINE token; a NEWLINE is
    also guaranteed before EOF so the parser's statement loop is
    uniform.
    """
    tokens: list[Token] = []
    line, col = 1, 1
    i, n = 0, len(source)

    def push(ttype: TokenType, value, tok_col: int) -> None:
        tokens.append(Token(ttype, value, line, tok_col))

    while i < n:
        ch = source[i]

        if ch == "#":  # comment to end of line
            while i < n and source[i] != "\n":
                i += 1
            continue

        if ch == "\n":
            if tokens and tokens[-1].type is not TokenType.NEWLINE:
                push(TokenType.NEWLINE, "\n", col)
            i += 1
            line += 1
            col = 1
            continue

        if ch in " \t\r":
            i += 1
            col += 1
            continue

        if ch == '"' or ch == "'":
            quote = ch
            start_col = col
            j = i + 1
            buf = []
            while j < n and source[j] != quote:
                if source[j] == "\n":
                    raise LexError("unterminated string", line, start_col)
                if source[j] == "\\" and j + 1 < n:
                    esc = source[j + 1]
                    buf.append({"n": "\n", "t": "\t", "\\": "\\",
                                '"': '"', "'": "'"}.get(esc, esc))
                    j += 2
                else:
                    buf.append(source[j])
                    j += 1
            if j >= n:
                raise LexError("unterminated string", line, start_col)
            push(TokenType.STRING, "".join(buf), start_col)
            col += j + 1 - i
            i = j + 1
            continue

        if ch.isdigit():
            start_col = col
            j = i
            while j < n and source[j].isdigit():
                j += 1
            is_float = False
            if j < n and source[j] == "." and j + 1 < n and source[j + 1].isdigit():
                is_float = True
                j += 1
                while j < n and source[j].isdigit():
                    j += 1
            text = source[i:j]
            push(TokenType.NUMBER, float(text) if is_float else int(text), start_col)
            col += j - i
            i = j
            continue

        if _ident_start(ch):
            start_col = col
            j = i
            while j < n and _ident_cont(source[j]):
                j += 1
            word = source[i:j]
            ttype = KEYWORDS.get(word, TokenType.IDENT)
            push(ttype, word, start_col)
            col += j - i
            i = j
            continue

        two = source[i:i + 2]
        if two in _TWO_CHAR:
            push(_TWO_CHAR[two], two, col)
            i += 2
            col += 2
            continue

        if ch in _ONE_CHAR:
            push(_ONE_CHAR[ch], ch, col)
            i += 1
            col += 1
            continue

        raise LexError(f"unexpected character {ch!r}", line, col)

    if tokens and tokens[-1].type is not TokenType.NEWLINE:
        tokens.append(Token(TokenType.NEWLINE, "\n", line, col))
    tokens.append(Token(TokenType.EOF, None, line, col))
    return tokens
