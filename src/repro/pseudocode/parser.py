"""Recursive-descent parser for the pseudocode notation.

Grammar (statements are newline-terminated; block keywords close blocks):

.. code-block:: text

    program   := (funcdef | classdef | stmt | NEWLINE)*
    funcdef   := DEFINE IDENT [ "(" params ")" ] block ENDDEF
    classdef  := CLASS IDENT (funcdef | NEWLINE)* ENDCLASS
    stmt      := IF expr THEN block (ELSE IF expr THEN block)*
                    [ELSE block] ENDIF
               | WHILE expr block ENDWHILE
               | PARA block ENDPARA
               | EXC_ACC block END_EXC_ACC
               | WAIT "(" ")" | NOTIFY "(" ")"
               | PRINT expr | PRINTLN expr
               | Send "(" expr ")" "." To "(" expr ")"
               | ON_RECEIVING arm+
               | RETURN [expr]
               | IDENT "=" expr
               | postfix "." IDENT "=" expr
               | expr                      (call statement)
    arm       := MESSAGE "." IDENT "(" params ")" block
    expr      := or-chain of comparisons over +,-,*,/,% with NOT/unary-
"""

from __future__ import annotations

from typing import Optional

from .ast_nodes import (Assign, Binary, Call, ClassDef, ExcAccBlock,
                        ExprStmt, FieldAssign, FunctionDef, IfStmt, Literal,
                        MessageExpr, MethodCall, NewExpr, NotifyStmt,
                        OnReceiving, ParaBlock, PrintStmt, Program,
                        ReceiveArm, ReturnStmt, SendStmt, Stmt, Unary, Var,
                        WaitStmt, WhileStmt)
from .lexer import tokenize
from .tokens import Token, TokenType as T

__all__ = ["ParseError", "parse"]

#: tokens that terminate a statement list
_BLOCK_ENDERS = frozenset({
    T.ENDIF, T.ENDWHILE, T.ENDPARA, T.ENDDEF, T.ENDCLASS,
    T.END_EXC_ACC, T.ELSE, T.EOF,
})


class ParseError(SyntaxError):
    def __init__(self, message: str, token: Token):
        super().__init__(f"line {token.line}: {message} (at {token.type.name} "
                         f"{token.value!r})")
        self.token = token


class _Parser:
    def __init__(self, tokens: list[Token]):
        self.tokens = tokens
        self.pos = 0

    # -- token plumbing ----------------------------------------------------
    def peek(self, offset: int = 0) -> Token:
        return self.tokens[min(self.pos + offset, len(self.tokens) - 1)]

    def at(self, *types: T) -> bool:
        return self.peek().type in types

    def advance(self) -> Token:
        tok = self.tokens[self.pos]
        if tok.type is not T.EOF:
            self.pos += 1
        return tok

    def expect(self, ttype: T, what: str = "") -> Token:
        if not self.at(ttype):
            raise ParseError(f"expected {what or ttype.value}", self.peek())
        return self.advance()

    def skip_newlines(self) -> None:
        while self.at(T.NEWLINE):
            self.advance()

    def end_statement(self) -> None:
        """Consume the statement terminator (newline or natural block end)."""
        if self.at(T.NEWLINE):
            self.advance()
        elif not self.at(*_BLOCK_ENDERS) and not self.at(T.PIPE):
            raise ParseError("expected end of statement", self.peek())

    # -- program -----------------------------------------------------------
    def parse_program(self) -> Program:
        prog = Program(line=1)
        self.skip_newlines()
        while not self.at(T.EOF):
            if self.at(T.DEFINE):
                fn = self.parse_funcdef()
                prog.functions[fn.name] = fn
            elif self.at(T.CLASS):
                cls = self.parse_classdef()
                prog.classes[cls.name] = cls
            else:
                prog.main.append(self.parse_statement())
            self.skip_newlines()
        return prog

    def parse_funcdef(self) -> FunctionDef:
        start = self.expect(T.DEFINE)
        name = self.expect(T.IDENT, "function name").value
        params: list[str] = []
        if self.at(T.LPAREN):
            self.advance()
            while not self.at(T.RPAREN):
                params.append(self.expect(T.IDENT, "parameter name").value)
                if self.at(T.COMMA):
                    self.advance()
            self.expect(T.RPAREN)
        body = self.parse_block()
        self.expect(T.ENDDEF)
        self.end_statement()
        return FunctionDef(line=start.line, name=name, params=params, body=body)

    def parse_classdef(self) -> ClassDef:
        start = self.expect(T.CLASS)
        name = self.expect(T.IDENT, "class name").value
        self.skip_newlines()
        methods: dict[str, FunctionDef] = {}
        while not self.at(T.ENDCLASS):
            if self.at(T.EOF):
                raise ParseError("unterminated CLASS", self.peek())
            fn = self.parse_funcdef()
            methods[fn.name] = fn
            self.skip_newlines()
        self.expect(T.ENDCLASS)
        self.end_statement()
        return ClassDef(line=start.line, name=name, methods=methods)

    # -- statements ----------------------------------------------------------
    def parse_block(self) -> list[Stmt]:
        """Statements until (not consuming) a block-ender keyword."""
        self.skip_newlines()
        stmts: list[Stmt] = []
        while not self.at(*_BLOCK_ENDERS):
            stmts.append(self.parse_statement())
            self.skip_newlines()
        return stmts

    def parse_statement(self) -> Stmt:
        tok = self.peek()

        if tok.type is T.IF:
            return self.parse_if()
        if tok.type is T.WHILE:
            self.advance()
            cond = self.parse_expr()
            body = self.parse_block()
            self.expect(T.ENDWHILE)
            self.end_statement()
            return WhileStmt(line=tok.line, condition=cond, body=body)
        if tok.type is T.PARA:
            self.advance()
            arms = self.parse_block()
            self.expect(T.ENDPARA)
            self.end_statement()
            return ParaBlock(line=tok.line, arms=arms)
        if tok.type is T.EXC_ACC:
            self.advance()
            body = self.parse_block()
            self.expect(T.END_EXC_ACC)
            self.end_statement()
            return ExcAccBlock(line=tok.line, body=body)
        if tok.type is T.WAIT:
            self.advance()
            self.expect(T.LPAREN)
            self.expect(T.RPAREN)
            self.end_statement()
            return WaitStmt(line=tok.line)
        if tok.type is T.NOTIFY:
            self.advance()
            self.expect(T.LPAREN)
            self.expect(T.RPAREN)
            self.end_statement()
            return NotifyStmt(line=tok.line)
        if tok.type in (T.PRINT, T.PRINTLN):
            self.advance()
            value = self.parse_expr()
            self.end_statement()
            return PrintStmt(line=tok.line, value=value,
                             newline=tok.type is T.PRINTLN)
        if tok.type is T.SEND:
            self.advance()
            self.expect(T.LPAREN)
            message = self.parse_expr()
            self.expect(T.RPAREN)
            self.expect(T.DOT)
            self.expect(T.TO, "To")
            self.expect(T.LPAREN)
            receiver = self.parse_expr()
            self.expect(T.RPAREN)
            self.end_statement()
            return SendStmt(line=tok.line, message=message, receiver=receiver)
        if tok.type is T.ON_RECEIVING:
            return self.parse_on_receiving()
        if tok.type is T.RETURN:
            self.advance()
            value: Optional = None
            if not self.at(T.NEWLINE, *_BLOCK_ENDERS):
                value = self.parse_expr()
            self.end_statement()
            return ReturnStmt(line=tok.line, value=value)

        # assignment vs expression statement
        if tok.type is T.IDENT and self.peek(1).type is T.ASSIGN:
            name = self.advance().value
            self.advance()  # '='
            value = self.parse_expr()
            self.end_statement()
            return Assign(line=tok.line, name=name, value=value)

        expr = self.parse_expr()
        # field assignment:  postfix . field = expr  parses as Var/MethodCall
        if self.at(T.ASSIGN):
            if isinstance(expr, MethodCall) and not expr.args and expr.method:
                raise ParseError("cannot assign to a method call", self.peek())
            if isinstance(expr, _FieldRef):
                self.advance()
                value = self.parse_expr()
                self.end_statement()
                return FieldAssign(line=tok.line, obj=expr.obj,
                                   field_name=expr.field_name, value=value)
            raise ParseError("invalid assignment target", self.peek())
        self.end_statement()
        if isinstance(expr, _FieldRef):
            raise ParseError("field reference is not a statement", tok)
        return ExprStmt(line=tok.line, expr=expr)

    def parse_if(self) -> IfStmt:
        start = self.expect(T.IF)
        node = IfStmt(line=start.line)
        cond = self.parse_expr()
        self.expect(T.THEN, "THEN")
        body = self.parse_block()
        node.branches.append((cond, body))
        while self.at(T.ELSE):
            self.advance()
            if self.at(T.IF):
                self.advance()
                cond = self.parse_expr()
                self.expect(T.THEN, "THEN")
                body = self.parse_block()
                node.branches.append((cond, body))
            else:
                node.else_body = self.parse_block()
                break
        self.expect(T.ENDIF)
        self.end_statement()
        return node

    def parse_on_receiving(self) -> OnReceiving:
        start = self.expect(T.ON_RECEIVING)
        self.skip_newlines()
        node = OnReceiving(line=start.line)
        while self.at(T.MESSAGE) or self.at(T.PIPE):
            if self.at(T.PIPE):
                self.advance()
                self.skip_newlines()
                continue
            arm_tok = self.advance()  # MESSAGE
            self.expect(T.DOT)
            msg_name = self.expect(T.IDENT, "message name").value
            params: list[str] = []
            self.expect(T.LPAREN)
            while not self.at(T.RPAREN):
                params.append(self.expect(T.IDENT, "pattern variable").value)
                if self.at(T.COMMA):
                    self.advance()
            self.expect(T.RPAREN)
            body = self.parse_arm_block()
            node.arms.append(ReceiveArm(line=arm_tok.line, msg_name=msg_name,
                                        params=params, body=body))
        if not node.arms:
            raise ParseError("ON_RECEIVING needs at least one MESSAGE arm",
                             self.peek())
        return node

    def parse_arm_block(self) -> list[Stmt]:
        """Arm body: statements until the next MESSAGE arm or block end."""
        self.skip_newlines()
        stmts: list[Stmt] = []
        while not self.at(*_BLOCK_ENDERS) and not self.at(T.MESSAGE) \
                and not self.at(T.PIPE):
            stmts.append(self.parse_statement())
            self.skip_newlines()
        return stmts

    # -- expressions -----------------------------------------------------------
    def parse_expr(self):
        return self.parse_or()

    def parse_or(self):
        left = self.parse_and()
        while self.at(T.OR):
            tok = self.advance()
            left = Binary(line=tok.line, op="OR", left=left,
                          right=self.parse_and())
        return left

    def parse_and(self):
        left = self.parse_not()
        while self.at(T.AND):
            tok = self.advance()
            left = Binary(line=tok.line, op="AND", left=left,
                          right=self.parse_not())
        return left

    def parse_not(self):
        if self.at(T.NOT):
            tok = self.advance()
            return Unary(line=tok.line, op="NOT", operand=self.parse_not())
        return self.parse_comparison()

    _CMP = {T.EQ: "==", T.NE: "!=", T.LE: "<=", T.GE: ">=",
            T.LT: "<", T.GT: ">"}

    def parse_comparison(self):
        left = self.parse_additive()
        while self.peek().type in self._CMP:
            tok = self.advance()
            left = Binary(line=tok.line, op=self._CMP[tok.type], left=left,
                          right=self.parse_additive())
        return left

    def parse_additive(self):
        left = self.parse_multiplicative()
        while self.at(T.PLUS, T.MINUS):
            tok = self.advance()
            left = Binary(line=tok.line, op=tok.value, left=left,
                          right=self.parse_multiplicative())
        return left

    def parse_multiplicative(self):
        left = self.parse_unary()
        while self.at(T.STAR, T.SLASH, T.PERCENT):
            tok = self.advance()
            left = Binary(line=tok.line, op=tok.value, left=left,
                          right=self.parse_unary())
        return left

    def parse_unary(self):
        if self.at(T.MINUS):
            tok = self.advance()
            return Unary(line=tok.line, op="-", operand=self.parse_unary())
        return self.parse_postfix()

    def parse_postfix(self):
        expr = self.parse_primary()
        while self.at(T.DOT):
            self.advance()
            name = self.expect(T.IDENT, "member name").value
            if self.at(T.LPAREN):
                self.advance()
                args = self.parse_args()
                expr = MethodCall(line=self.peek().line, obj=expr,
                                  method=name, args=args)
            else:
                expr = _FieldRef(line=self.peek().line, obj=expr,
                                 field_name=name)
        return expr

    def parse_args(self) -> list:
        args = []
        while not self.at(T.RPAREN):
            args.append(self.parse_expr())
            if self.at(T.COMMA):
                self.advance()
        self.expect(T.RPAREN)
        return args

    def parse_primary(self):
        tok = self.peek()
        if tok.type is T.NUMBER or tok.type is T.STRING:
            self.advance()
            return Literal(line=tok.line, value=tok.value)
        if tok.type is T.TRUE:
            self.advance()
            return Literal(line=tok.line, value=True)
        if tok.type is T.FALSE:
            self.advance()
            return Literal(line=tok.line, value=False)
        if tok.type is T.LPAREN:
            self.advance()
            expr = self.parse_expr()
            self.expect(T.RPAREN)
            return expr
        if tok.type is T.MESSAGE:
            self.advance()
            self.expect(T.DOT)
            name = self.expect(T.IDENT, "message name").value
            self.expect(T.LPAREN)
            args = self.parse_args()
            return MessageExpr(line=tok.line, msg_name=name, args=args)
        if tok.type is T.NEW:
            self.advance()
            cls = self.expect(T.IDENT, "class name").value
            args = []
            if self.at(T.LPAREN):
                self.advance()
                args = self.parse_args()
            return NewExpr(line=tok.line, class_name=cls, args=args)
        if tok.type is T.IDENT:
            self.advance()
            if self.at(T.LPAREN):
                self.advance()
                args = self.parse_args()
                return Call(line=tok.line, name=tok.value, args=args)
            return Var(line=tok.line, name=tok.value)
        raise ParseError("expected an expression", tok)


class _FieldRef(MethodCall):
    """Internal: ``obj.field`` before we know if it's read or assigned.

    Reuses MethodCall storage; the interpreter evaluates it as a field
    read, the parser turns ``_FieldRef = expr`` into FieldAssign.
    """

    def __init__(self, line: int, obj, field_name: str):
        super().__init__(line=line, obj=obj, method="", args=[])
        self.field_name = field_name


def parse(source: str) -> Program:
    """Parse pseudocode text into a :class:`Program` AST."""
    return _Parser(tokenize(source)).parse_program()
