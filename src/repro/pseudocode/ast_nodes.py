"""AST for the pseudocode notation.

Every node carries its source ``line`` for diagnostics and for the
interpreter's step labels (trace events name the pseudocode line they
executed, which is how witness traces are rendered back to students).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional

__all__ = [
    "Node", "Expr", "Stmt",
    # expressions
    "Literal", "Var", "Unary", "Binary", "Call", "MethodCall",
    "MessageExpr", "NewExpr",
    # statements
    "Assign", "FieldAssign", "PrintStmt", "IfStmt", "WhileStmt",
    "ParaBlock", "ExcAccBlock", "WaitStmt", "NotifyStmt", "SendStmt",
    "OnReceiving", "ReceiveArm", "ExprStmt", "ReturnStmt",
    # definitions
    "FunctionDef", "ClassDef", "Program",
]


@dataclass
class Node:
    line: int = 0


# ---------------------------------------------------------------------------
# expressions
# ---------------------------------------------------------------------------

@dataclass
class Expr(Node):
    pass


@dataclass
class Literal(Expr):
    value: Any = None


@dataclass
class Var(Expr):
    name: str = ""


@dataclass
class Unary(Expr):
    op: str = ""
    operand: Expr = None


@dataclass
class Binary(Expr):
    op: str = ""
    left: Expr = None
    right: Expr = None


@dataclass
class Call(Expr):
    """Plain function call ``f(a, b)`` — may appear as expression or
    statement.  Calls to user DEFINEs are non-atomic (their statements
    interleave); calls to builtins are atomic."""

    name: str = ""
    args: list[Expr] = field(default_factory=list)


@dataclass
class MethodCall(Expr):
    """``obj.method(args)`` — instance method invocation."""

    obj: Expr = None
    method: str = ""
    args: list[Expr] = field(default_factory=list)


@dataclass
class MessageExpr(Expr):
    """``MESSAGE.name(arg, ...)`` — constructs a message value."""

    msg_name: str = ""
    args: list[Expr] = field(default_factory=list)


@dataclass
class NewExpr(Expr):
    """``new ClassName(args)`` — instantiates a pseudocode class."""

    class_name: str = ""
    args: list[Expr] = field(default_factory=list)


# ---------------------------------------------------------------------------
# statements
# ---------------------------------------------------------------------------

@dataclass
class Stmt(Node):
    pass


@dataclass
class Assign(Stmt):
    name: str = ""
    value: Expr = None


@dataclass
class FieldAssign(Stmt):
    """``obj.field = expr`` — assignment to an instance field."""

    obj: Expr = None
    field_name: str = ""
    value: Expr = None


@dataclass
class PrintStmt(Stmt):
    value: Expr = None
    newline: bool = False      # PRINTLN vs PRINT


@dataclass
class IfStmt(Stmt):
    """IF/ELSE IF/ELSE chain.  ``branches`` is [(condition, body), ...];
    ``else_body`` may be empty."""

    branches: list[tuple[Expr, list[Stmt]]] = field(default_factory=list)
    else_body: list[Stmt] = field(default_factory=list)


@dataclass
class WhileStmt(Stmt):
    condition: Expr = None
    body: list[Stmt] = field(default_factory=list)


@dataclass
class ParaBlock(Stmt):
    """``PARA ... ENDPARA`` — each arm statement runs concurrently; the
    enclosing task continues only after all arms finish (cobegin/coend,
    matching Figure 4 where ``PRINTLN x`` observes both changeX calls)."""

    arms: list[Stmt] = field(default_factory=list)


@dataclass
class ExcAccBlock(Stmt):
    """``EXC_ACC ... END_EXC_ACC`` — exclusive access on the shared
    variables the block references (footprint computed by analysis)."""

    body: list[Stmt] = field(default_factory=list)
    #: filled by analysis: shared variables this block touches
    footprint: frozenset[str] = frozenset()
    #: filled by analysis: exclusion-group key this block locks
    group: Optional[str] = None


@dataclass
class WaitStmt(Stmt):
    pass


@dataclass
class NotifyStmt(Stmt):
    pass


@dataclass
class SendStmt(Stmt):
    """``Send(message).To(receiver)`` — asynchronous send."""

    message: Expr = None
    receiver: Expr = None


@dataclass
class ReceiveArm(Node):
    """One ``MESSAGE.name(param, ...) statements`` arm."""

    msg_name: str = ""
    params: list[str] = field(default_factory=list)
    body: list[Stmt] = field(default_factory=list)


@dataclass
class OnReceiving(Stmt):
    """``ON_RECEIVING arm+`` — a message-handling loop.  A method whose
    body reaches an OnReceiving is an *actor behaviour*: invoking it
    starts a daemon task that dispatches arriving messages forever."""

    arms: list[ReceiveArm] = field(default_factory=list)


@dataclass
class ExprStmt(Stmt):
    """An expression evaluated for effect — function/method call."""

    expr: Expr = None


@dataclass
class ReturnStmt(Stmt):
    value: Optional[Expr] = None


# ---------------------------------------------------------------------------
# definitions & program
# ---------------------------------------------------------------------------

@dataclass
class FunctionDef(Node):
    name: str = ""
    params: list[str] = field(default_factory=list)
    body: list[Stmt] = field(default_factory=list)

    def has_receive(self) -> bool:
        """Does the body (recursively) contain ON_RECEIVING?"""
        return _contains_receive(self.body)


@dataclass
class ClassDef(Node):
    name: str = ""
    methods: dict[str, FunctionDef] = field(default_factory=dict)


@dataclass
class Program(Node):
    functions: dict[str, FunctionDef] = field(default_factory=dict)
    classes: dict[str, ClassDef] = field(default_factory=dict)
    #: top-level statements, executed sequentially by the main task
    main: list[Stmt] = field(default_factory=list)


def _contains_receive(stmts: list[Stmt]) -> bool:
    for s in stmts:
        if isinstance(s, OnReceiving):
            return True
        if isinstance(s, IfStmt):
            if any(_contains_receive(b) for _, b in s.branches):
                return True
            if _contains_receive(s.else_body):
                return True
        elif isinstance(s, WhileStmt) and _contains_receive(s.body):
            return True
        elif isinstance(s, (ParaBlock,)) and _contains_receive(s.arms):
            return True
        elif isinstance(s, ExcAccBlock) and _contains_receive(s.body):
            return True
    return False
