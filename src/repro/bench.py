"""Cross-runtime benchmark runner — threads vs actors vs coroutines.

The paper's first contribution is implementing the *same* classical
problems in all three models and comparing them for performance; this
module is that comparison as a harness.  Each registered problem runs
on every requested runtime under one parameterized workload
(``workers`` × ``ops``, warmup + repetitions), with a
:class:`~repro.obs.profile.Profiler` attached to the runtime's own
primitives — so a cell reports not just wall-clock percentiles and
throughput but the runtime-internal signals the wall clock hides: lock
waits and monitor contention for threads, mailbox enqueue→dequeue
latency and queue depth for actors, resume latency and ready-queue
residency for coroutines.

Outputs:

* :meth:`BenchResult.as_dict` — schema-stable JSON (the ``repro bench
  --json`` payload and the ``BENCH_runtimes.json`` regression baseline);
* :meth:`BenchResult.markdown` — the paper-style comparison table;
* :meth:`BenchResult.chrome_trace` — per-repetition spans on one lane
  per runtime, via :func:`repro.obs.export.chrome_trace_from_spans`;
* :func:`compare_to_baseline` — throughput regression gating with a
  tolerance recorded in the baseline file (CI's ``bench-smoke`` job).

Wall-clock reads all go through the injected ``clock`` (default
:data:`repro.obs.profile.wall_clock`), so unit tests drive the runner
with a :class:`~repro.obs.profile.FakeClock` and assert exact numbers.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass
from typing import Any, Callable, Optional

from .obs.metrics import Histogram
from .obs.profile import Profiler, wall_clock

__all__ = ["Workload", "QUICK", "DEFAULT", "BenchResult", "bench_problems",
           "bench_runtimes", "run_bench", "compare_to_baseline",
           "make_baseline"]

#: current shape of the ``--json`` payload / baseline file
SCHEMA_VERSION = 1

#: the three runtimes the paper races, in report column order
RUNTIMES = ("threads", "actors", "coroutines")


@dataclass(frozen=True)
class Workload:
    """One parameterized workload applied identically to every cell.

    ``workers`` scales how many concurrent participants a problem
    spawns, ``ops`` how many operations each performs; the problem
    adapters translate both into their natural parameters (items,
    crossings, meals, rounds...).  ``warmup`` repetitions run and are
    discarded before the ``repetitions`` that are measured.
    """

    workers: int = 4
    ops: int = 200
    warmup: int = 1
    repetitions: int = 5


#: the CI smoke workload (``repro bench --quick``)
QUICK = Workload(workers=2, ops=25, warmup=1, repetitions=3)
#: the default full workload
DEFAULT = Workload()


# ---------------------------------------------------------------------------
# problem adapters: name -> runtime -> fn(workload, profiler) -> ops done
# ---------------------------------------------------------------------------

def _buffer(runner: Callable) -> Callable:
    def run(w: Workload, profiler: Optional[Profiler]) -> int:
        lanes = max(1, w.workers // 2)
        runner(capacity=max(2, w.workers), producers=lanes, consumers=lanes,
               items_each=w.ops, profiler=profiler)
        return lanes * w.ops
    return run


def _bridge(runner: Callable) -> Callable:
    def run(w: Workload, profiler: Optional[Profiler]) -> int:
        n = max(2, w.workers)
        cars = tuple((f"car-{i}", "red" if i % 2 == 0 else "blue")
                     for i in range(n))
        runner(cars=cars, crossings=w.ops, profiler=profiler)
        return n * w.ops
    return run


def _philosophers(runner: Callable) -> Callable:
    def run(w: Workload, profiler: Optional[Profiler]) -> int:
        n = max(2, w.workers)
        return runner(n=n, meals=w.ops, profiler=profiler)
    return run


def _rw(runner: Callable) -> Callable:
    def run(w: Workload, profiler: Optional[Profiler]) -> int:
        readers = max(1, w.workers)
        writers = max(1, w.workers // 2)
        runner(readers=readers, writers=writers, rounds=w.ops,
               profiler=profiler)
        return (readers + writers) * w.ops
    return run


def _pingpong(runner: Callable) -> Callable:
    def run(w: Workload, profiler: Optional[Profiler]) -> int:
        return runner(rounds=w.ops * max(1, w.workers), profiler=profiler)
    return run


def _sum(runner: Callable) -> Callable:
    def run(w: Workload, profiler: Optional[Profiler]) -> int:
        n = w.ops * max(1, w.workers)
        runner(values=range(n), workers=max(1, w.workers),
               profiler=profiler)
        return n
    return run


def _registry() -> dict[str, dict[str, Callable]]:
    # imported lazily so `import repro.bench` stays cheap
    from .problems import (bounded_buffer, dining_philosophers, pingpong,
                           readers_writers, single_lane_bridge, sum_workers)
    return {
        "bounded_buffer": {
            "threads": _buffer(bounded_buffer.run_threads_buffer),
            "actors": _buffer(bounded_buffer.run_actor_buffer),
            "coroutines": _buffer(bounded_buffer.run_coroutine_buffer),
        },
        "bridge": {
            "threads": _bridge(single_lane_bridge.run_threads_bridge),
            "actors": _bridge(single_lane_bridge.run_actor_bridge),
            "coroutines": _bridge(single_lane_bridge.run_coroutine_bridge),
        },
        "dining_philosophers": {
            "threads": _philosophers(
                dining_philosophers.run_threads_philosophers),
            "actors": _philosophers(
                dining_philosophers.run_actor_philosophers),
            "coroutines": _philosophers(
                dining_philosophers.run_coroutine_philosophers),
        },
        "readers_writers": {
            "threads": _rw(readers_writers.run_threads_rw),
            "actors": _rw(readers_writers.run_actor_rw),
            "coroutines": _rw(readers_writers.run_coroutine_rw),
        },
        "pingpong": {
            "threads": _pingpong(pingpong.run_threads_pingpong),
            "actors": _pingpong(pingpong.run_actor_pingpong),
            "coroutines": _pingpong(pingpong.run_coroutine_pingpong),
        },
        "sum_workers": {
            "threads": _sum(sum_workers.run_threads_sum),
            "actors": _sum(sum_workers.run_actor_sum),
            "coroutines": _sum(sum_workers.run_coroutine_sum),
        },
    }


def bench_problems() -> list[str]:
    """Problem names the bench runner knows, sorted."""
    return sorted(_registry())


def bench_runtimes() -> list[str]:
    """Runtime names the bench runner knows, in column order."""
    return list(RUNTIMES)


# ---------------------------------------------------------------------------
# the runner
# ---------------------------------------------------------------------------

class BenchResult:
    """All measured cells of one bench invocation."""

    def __init__(self, workload: Workload, cells: list[dict[str, Any]],
                 spans: list[tuple]):
        self.workload = workload
        self.cells = cells
        self.spans = spans

    def as_dict(self) -> dict[str, Any]:
        """Schema-stable JSON payload (sorted keys, fixed field set)."""
        return {
            "schema": SCHEMA_VERSION,
            "workload": asdict(self.workload),
            "cells": self.cells,
        }

    def cell(self, problem: str, runtime: str) -> Optional[dict[str, Any]]:
        for c in self.cells:
            if c["problem"] == problem and c["runtime"] == runtime:
                return c
        return None

    def markdown(self, detail: bool = False) -> str:
        """The paper-style comparison table (optionally + profile detail).

        One row per problem, one column pair (throughput, p95 run time)
        per runtime — the shape of the paper's "compared for
        performance" discussion, regenerated from measurements.
        """
        runtimes = [r for r in RUNTIMES
                    if any(c["runtime"] == r for c in self.cells)]
        # extra runtimes (e.g. "cluster") get columns after the core three
        runtimes += sorted({c["runtime"] for c in self.cells}
                           - set(RUNTIMES))
        problems = sorted({c["problem"] for c in self.cells})
        head = ("| problem | "
                + " | ".join(f"{r} ops/s | {r} p95 ms" for r in runtimes)
                + " |")
        rule = "|---" * (1 + 2 * len(runtimes)) + "|"
        lines = [head, rule]
        for problem in problems:
            row = [problem]
            for r in runtimes:
                c = self.cell(problem, r)
                if c is None:
                    row += ["—", "—"]
                else:
                    row.append(f"{c['throughput_ops_per_s']:,.0f}")
                    row.append(f"{c['wall_us']['p95'] / 1000:.2f}")
            lines.append("| " + " | ".join(row) + " |")
        if detail:
            for c in self.cells:
                lines.append("")
                lines.append(f"### {c['problem']} on {c['runtime']}")
                lines.append("")
                lines.append(f"- ops/run: {c['ops_total']}, repetitions: "
                             f"{c['repetitions']}, throughput: "
                             f"{c['throughput_ops_per_s']:,.0f} ops/s")
                wall = c["wall_us"]
                lines.append(f"- run time us: p50={wall['p50']:.0f} "
                             f"p95={wall['p95']:.0f} p99={wall['p99']:.0f}")
                for name, h in c["profile"]["histograms"].items():
                    lines.append(f"- {name}: n={h['count']} "
                                 f"mean={h['mean']:.1f} p50={h['p50']:.1f} "
                                 f"p95={h['p95']:.1f} p99={h['p99']:.1f}")
                for name, v in c["profile"]["counters"].items():
                    lines.append(f"- {name}: {v}")
        return "\n".join(lines)

    def chrome_trace(self) -> dict[str, Any]:
        """Per-repetition spans, one lane per runtime (wall-clock time)."""
        from .obs.export import chrome_trace_from_spans
        return chrome_trace_from_spans(
            self.spans, source="repro.bench",
            meta={"workload": asdict(self.workload)})


def run_bench(problems: Optional[list[str]] = None,
              runtimes: Optional[list[str]] = None,
              workload: Workload = DEFAULT,
              clock: Optional[Callable[[], float]] = None,
              profile: bool = True,
              progress: Optional[Callable[[str], None]] = None
              ) -> BenchResult:
    """Run every requested problem × runtime cell and collect results.

    ``clock`` injects the time source (tests pass a
    :class:`~repro.obs.profile.FakeClock`); ``profile=False`` runs the
    workloads with ``profiler=None`` — the runtimes' un-instrumented
    hot paths — which is what the overhead regression test compares
    against.  Unknown problem or runtime names raise ``KeyError``
    listing the known ones.
    """
    registry = _registry()
    problems = list(problems) if problems else sorted(registry)
    runtimes = list(runtimes) if runtimes else list(RUNTIMES)
    for p in problems:
        if p not in registry:
            raise KeyError(f"unknown bench problem {p!r}; known: "
                           + ", ".join(sorted(registry)))
    for r in runtimes:
        if r not in RUNTIMES:
            raise KeyError(f"unknown runtime {r!r}; known: "
                           + ", ".join(RUNTIMES))
    clock = clock if clock is not None else wall_clock

    cells: list[dict[str, Any]] = []
    spans: list[tuple] = []
    for problem in problems:
        for runtime in runtimes:
            fn = registry[problem][runtime]
            if progress is not None:
                progress(f"{problem} on {runtime} "
                         f"({workload.repetitions} reps)")
            profiler = Profiler(clock=clock) if profile else None
            for _ in range(workload.warmup):
                fn(workload, None)     # warmup never pollutes the profile
            wall = Histogram()
            ops_total = 0
            total_s = 0.0
            for rep in range(workload.repetitions):
                t0 = clock()
                ops = fn(workload, profiler)
                t1 = clock()
                ops_total += ops if isinstance(ops, int) else 0
                wall.record((t1 - t0) * 1e6)
                total_s += t1 - t0
                spans.append((f"{problem} rep {rep}", runtime, t0, t1))
            ops_per_run = ops_total // workload.repetitions
            cells.append({
                "problem": problem,
                "runtime": runtime,
                "workers": workload.workers,
                "ops": workload.ops,
                "ops_total": ops_per_run,
                "repetitions": workload.repetitions,
                "wall_us": wall.snapshot(),
                "throughput_ops_per_s": (
                    round(ops_total / total_s, 1) if total_s > 0 else 0.0),
                "profile": (profiler.snapshot() if profiler is not None
                            else {"counters": {}, "gauges": {},
                                  "histograms": {}}),
            })
    return BenchResult(workload, cells, spans)


# ---------------------------------------------------------------------------
# regression baseline
# ---------------------------------------------------------------------------

def make_baseline(result: BenchResult, tolerance: float = 0.9
                  ) -> dict[str, Any]:
    """Distill a result into the checked-in ``BENCH_runtimes.json`` shape.

    ``tolerance`` is the fractional throughput drop CI accepts before
    failing: 0.9 means "fail below 10% of the recorded number" —
    deliberately generous, because shared CI machines jitter by integer
    factors while real hot-path regressions land at order-of-magnitude.
    """
    if not 0 <= tolerance < 1:
        raise ValueError(f"tolerance must be in [0, 1), not {tolerance}")
    return {
        "schema": SCHEMA_VERSION,
        "tolerance": tolerance,
        "workload": asdict(result.workload),
        "cells": {
            f"{c['problem']}.{c['runtime']}": {
                "throughput_ops_per_s": c["throughput_ops_per_s"],
                "wall_us_p95": c["wall_us"]["p95"],
            }
            for c in result.cells
        },
    }


def compare_to_baseline(result: BenchResult, baseline: dict[str, Any]
                        ) -> list[str]:
    """Throughput regressions of ``result`` against a baseline dict.

    Returns one human-readable message per regressed cell (empty =
    gate passes).  Cells missing from either side are ignored — the
    baseline only constrains what it recorded.
    """
    tolerance = float(baseline.get("tolerance", 0.9))
    floor_factor = 1.0 - tolerance
    regressions = []
    for c in result.cells:
        key = f"{c['problem']}.{c['runtime']}"
        base = baseline.get("cells", {}).get(key)
        if base is None:
            continue
        floor = base["throughput_ops_per_s"] * floor_factor
        if c["throughput_ops_per_s"] < floor:
            regressions.append(
                f"{key}: {c['throughput_ops_per_s']:,.0f} ops/s is below "
                f"{floor:,.0f} (baseline {base['throughput_ops_per_s']:,.0f}"
                f" × {floor_factor:.2f})")
    return regressions


def load_baseline(path: str) -> dict[str, Any]:
    """Read a baseline file written by ``repro bench --update-baseline``."""
    with open(path) as fh:
        return json.load(fh)
