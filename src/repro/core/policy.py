"""Scheduling policies — who runs next, and which message is delivered.

The scheduler computes the set of *enabled transitions* at each step and
asks its policy to pick one.  A transition is a :class:`Transition`
naming the task to resume plus an optional payload choice (which pending
message to deliver, or which ``Choice`` option to take).

Policies are the kernel's single source of nondeterminism, which is what
makes executions replayable: record the chosen indices, replay them with
:class:`FixedPolicy`, and the run is reproduced bit-for-bit.  The model
checker in :mod:`repro.verify.explorer` is nothing more than a policy
that performs DFS over these indices.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, Optional, Sequence

from .errors import ReplayError
from .task import Task

__all__ = [
    "Transition",
    "SchedulingPolicy",
    "RoundRobinPolicy",
    "RandomPolicy",
    "FixedPolicy",
    "RecordingPolicy",
]


@dataclass(frozen=True)
class Transition:
    """One enabled step the scheduler could take next.

    ``kind`` is one of ``"run"`` (resume a READY task), ``"acquire"``
    (grant a free lock to a blocked acquirer), ``"deliver"`` (hand a
    pending message to a blocked receiver; ``payload`` is the message,
    ``payload_index`` its mailbox slot), or ``"choice"`` (resolve an
    explicit Choice effect; ``payload`` is the chosen option).

    ``footprint`` is the transition's declared access footprint — a
    frozenset of ``(domain, key, mode)`` tokens (see
    :meth:`repro.core.effects.Effect.footprint`) — when the scheduler
    can know it before execution: grants touch their lock, deliveries
    their mailbox, choices nothing.  ``None`` means *unknown* (a
    ``"run"`` resume may do anything), which reduction-aware policies
    must treat as conflicting with everything.
    """

    task: Task
    kind: str = "run"
    payload: Any = None
    payload_index: int = -1
    footprint: Optional[frozenset] = None

    def describe(self) -> str:
        if self.kind == "run":
            return f"run {self.task.name}"
        if self.kind == "acquire":
            return f"{self.task.name} acquires {self.task.blocked_on!r}"
        if self.kind == "deliver":
            return f"deliver {self.payload!r} to {self.task.name}"
        return f"{self.task.name} chooses {self.payload!r}"


class SchedulingPolicy:
    """Strategy interface: pick the index of the transition to execute."""

    def choose(self, transitions: Sequence[Transition]) -> int:
        raise NotImplementedError

    def reset(self) -> None:
        """Called when a scheduler run starts; stateful policies rewind."""


class RoundRobinPolicy(SchedulingPolicy):
    """Deterministic fair rotation over tasks.

    Picks the transition whose task has least-recently run; ties are
    broken by task id, and among several transitions of the same task
    (message choices) the first is taken.  Gives every task a turn, so
    simple programs terminate and fairness-sensitive demos behave.
    """

    def __init__(self) -> None:
        self._last_run: dict[int, int] = {}
        self._tick = 0

    def reset(self) -> None:
        self._last_run.clear()
        self._tick = 0

    def choose(self, transitions: Sequence[Transition]) -> int:
        best_i = 0
        best_key: Optional[tuple[int, int]] = None
        for i, tr in enumerate(transitions):
            key = (self._last_run.get(tr.task.tid, -1), tr.task.tid)
            if best_key is None or key < best_key:
                best_key, best_i = key, i
        self._tick += 1
        self._last_run[transitions[best_i].task.tid] = self._tick
        return best_i


class RandomPolicy(SchedulingPolicy):
    """Seeded uniform choice — the stress-testing scheduler.

    With a fixed ``seed`` the run is reproducible; different seeds
    sample different interleavings, which is how the problem test
    suites hunt for races and deadlocks without full exploration.
    """

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed
        self._rng = random.Random(seed)

    def reset(self) -> None:
        self._rng = random.Random(self.seed)

    def choose(self, transitions: Sequence[Transition]) -> int:
        return self._rng.randrange(len(transitions))


class FixedPolicy(SchedulingPolicy):
    """Replay a recorded choice sequence; then defer to ``tail``.

    Raises :class:`ReplayError` if a recorded index is out of range for
    the enabled set — that means the program is not deterministic given
    the schedule, i.e. a kernel bug or an impure task body.
    """

    def __init__(self, schedule: Sequence[int], tail: Optional[SchedulingPolicy] = None):
        self.schedule = list(schedule)
        self.tail = tail or RoundRobinPolicy()
        self._pos = 0

    def reset(self) -> None:
        self._pos = 0
        self.tail.reset()

    @property
    def exhausted(self) -> bool:
        return self._pos >= len(self.schedule)

    def choose(self, transitions: Sequence[Transition]) -> int:
        if self._pos < len(self.schedule):
            idx = self.schedule[self._pos]
            self._pos += 1
            if not 0 <= idx < len(transitions):
                raise ReplayError(
                    f"schedule step {self._pos - 1} wants transition {idx} "
                    f"but only {len(transitions)} enabled"
                )
            return idx
        return self.tail.choose(transitions)


class RecordingPolicy(SchedulingPolicy):
    """Wrap another policy and record (index, fan-out) per decision.

    The explorer uses the fan-out record to know where unexplored
    branches remain.
    """

    def __init__(self, inner: SchedulingPolicy):
        self.inner = inner
        self.decisions: list[tuple[int, int]] = []

    def reset(self) -> None:
        self.decisions = []
        self.inner.reset()

    def choose(self, transitions: Sequence[Transition]) -> int:
        idx = self.inner.choose(transitions)
        self.decisions.append((idx, len(transitions)))
        return idx
