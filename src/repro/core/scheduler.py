"""The deterministic cooperative scheduler — heart of the kernel.

One :class:`Scheduler` executes one run of a concurrent program.  Tasks
are generators; the scheduler repeatedly

1. computes the set of *enabled transitions* (runnable tasks, grantable
   lock acquisitions, deliverable messages, pending explicit choices),
2. asks its :class:`~repro.core.policy.SchedulingPolicy` to pick one,
3. executes it: resume the task's generator one atomic step, interpret
   the effect it yields, and park/ready the task accordingly.

All nondeterminism flows through step 2, so recording the chosen indices
makes every run exactly replayable — the property the model checker in
:mod:`repro.verify` is built on (CHESS-style systematic testing).

The scheduler also maintains vector clocks along the synchronization
edges (lock release→acquire, message send→deliver, spawn→first step,
finish→join) so the race detector and causal mailbox policy see the true
happens-before relation of the run.
"""

from __future__ import annotations

import inspect
from typing import Any, Callable, Iterable, Optional

from .clock import VectorClock
from .effects import (Access, Acquire, Choice, Effect, Emit, Join, Notify,
                      Pause, Receive, Release, Send, Sleep, Spawn, Wait)
from .errors import (BudgetExceeded, DeadlockError, IllegalEffectError,
                     SimulationError, TaskFailed)
from .mailbox import Mailbox
from .monitor import SimMonitor
from .policy import (RoundRobinPolicy, SchedulingPolicy, Transition)
from .task import Task, TaskState
from .trace import Trace, TraceEvent

__all__ = ["Scheduler", "run_tasks"]

#: generous default so runaway programs fail loudly instead of hanging
DEFAULT_MAX_STEPS = 200_000


class Scheduler:
    """Execute generator tasks under a scheduling policy.

    Parameters
    ----------
    policy:
        Decides every scheduling choice.  Defaults to fair round-robin.
    raise_on_deadlock:
        If True (default) a deadlock raises :class:`DeadlockError`;
        otherwise the run ends with ``trace.outcome == "deadlock"`` —
        the explorer uses the latter to *count* deadlocking schedules.
    raise_on_failure:
        If True (default) a task exception aborts the run with
        :class:`TaskFailed`; otherwise it is recorded on the task.
    max_steps:
        Hard step budget; exceeding it raises :class:`BudgetExceeded`
        (or records outcome ``"budget"``).
    track_clocks:
        Maintain vector clocks (needed by the race detector and the
        CAUSAL mailbox policy; small constant overhead).
    """

    def __init__(self,
                 policy: Optional[SchedulingPolicy] = None,
                 *,
                 raise_on_deadlock: bool = True,
                 raise_on_failure: bool = True,
                 max_steps: int = DEFAULT_MAX_STEPS,
                 track_clocks: bool = True):
        self.policy = policy or RoundRobinPolicy()
        self.raise_on_deadlock = raise_on_deadlock
        self.raise_on_failure = raise_on_failure
        self.max_steps = max_steps
        self.track_clocks = track_clocks

        self.tasks: list[Task] = []
        self.trace = Trace()
        self._step_no = 0
        self._ran = False

    # ------------------------------------------------------------------
    # task creation
    # ------------------------------------------------------------------
    def spawn(self, fn: Callable[..., Any] | Any, *args: Any,
              name: str = "", daemon: bool = False, **kwargs: Any) -> Task:
        """Register a task.

        ``fn`` may be a generator function (called with ``*args``) or an
        already-created generator.  Returns the :class:`Task` handle.
        Daemon tasks do not prevent quiescent termination.
        """
        if inspect.isgenerator(fn):
            if args or kwargs:
                raise TypeError("pass args only with a generator function")
            gen = fn
        elif callable(fn):
            gen = fn(*args, **kwargs)
        else:
            raise TypeError(f"cannot spawn {fn!r}")
        task = Task(gen, name=name or getattr(fn, "__name__", ""))
        task.daemon = daemon
        if self.track_clocks:
            # child inherits the current global knowledge at spawn time
            task.vclock = VectorClock().tick(task.tid)
        self.tasks.append(task)
        return task

    # ------------------------------------------------------------------
    # enabled-transition computation
    # ------------------------------------------------------------------
    def enabled_transitions(self) -> list[Transition]:
        out: list[Transition] = []
        for task in self.tasks:
            if task.state is TaskState.READY:
                if task.choice_options is not None:
                    for opt in task.choice_options:
                        out.append(Transition(task, "choice", payload=opt))
                else:
                    out.append(Transition(task, "run"))
            elif task.state is TaskState.BLOCKED_ACQUIRE:
                lock = task.blocked_on
                if lock._can_grant(task):
                    out.append(Transition(task, "acquire"))
            elif task.state is TaskState.BLOCKED_RECEIVE:
                mailbox: Mailbox = task.blocked_on
                for idx in mailbox._deliverable(task.receive_matcher):
                    out.append(Transition(task, "deliver",
                                          payload=mailbox.pending[idx].message,
                                          payload_index=idx))
        return out

    # ------------------------------------------------------------------
    # single step
    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Execute one transition.  Returns False when the run is over."""
        if all(t.finished for t in self.tasks):
            return False
        transitions = self.enabled_transitions()
        if not transitions:
            if self._advance_sleepers():
                return True
            unfinished = [t for t in self.tasks if not t.finished]
            if all(t.daemon for t in unfinished):
                # quiescence: only daemon message loops remain, all idle
                return False
            blocked = [(t.name, t.describe_block()) for t in unfinished]
            self.trace.outcome = "deadlock"
            self.trace.detail = "; ".join(f"{n}: {r}" for n, r in blocked)
            if self.raise_on_deadlock:
                raise DeadlockError(blocked)
            return False
        if self._step_no >= self.max_steps:
            self.trace.outcome = "budget"
            self.trace.detail = f"exceeded {self.max_steps} steps"
            if self.raise_on_failure:
                raise BudgetExceeded(self.trace.detail)
            return False

        idx = self.policy.choose(transitions)
        if not 0 <= idx < len(transitions):
            raise SimulationError(f"policy chose {idx} of {len(transitions)}")
        tr = transitions[idx]
        self._execute(tr, idx, len(transitions))
        self._tick_sleepers()
        return True

    def run(self) -> Trace:
        """Run to completion (or deadlock/budget); returns the trace."""
        if self._ran:
            raise SimulationError("Scheduler instances are single-use; create a new one")
        self._ran = True
        self.policy.reset()
        try:
            while self.step():
                pass
        finally:
            self._close_leftover_generators()
        if self.trace.outcome == "done" and any(
                t.state is TaskState.FAILED for t in self.tasks):
            self.trace.outcome = "failed"
        return self.trace

    def _close_leftover_generators(self) -> None:
        """Close abandoned generators (deadlocked/blocked tasks).

        Task bodies may hold ``finally: yield Release(...)`` clauses;
        closing such a generator raises RuntimeError ("generator
        ignored GeneratorExit"), which is expected for an abandoned
        task — we swallow it so interpreter shutdown stays quiet.
        """
        for task in self.tasks:
            if not task.finished:
                try:
                    task.gen.close()
                except (RuntimeError, StopIteration):
                    pass

    # ------------------------------------------------------------------
    # transition execution
    # ------------------------------------------------------------------
    def _execute(self, tr: Transition, chosen: int, fanout: int) -> None:
        task = tr.task
        value: Any = None
        payload_repr: Optional[str] = None

        if tr.kind == "run":
            value, task.pending_value = task.pending_value, None
        elif tr.kind == "choice":
            task.choice_options = None
            value = tr.payload
            payload_repr = repr(tr.payload)
        elif tr.kind == "acquire":
            lock = task.blocked_on
            lock._grant(task, getattr(task, "_reacquire_depth", 1) or 1)
            task._reacquire_depth = 1
            self._merge_clock(task, lock._vclock)
            self._unblock(task)
            payload_repr = getattr(lock, "name", None)
        elif tr.kind == "deliver":
            mailbox: Mailbox = task.blocked_on
            env = mailbox._take(tr.payload_index)
            self._merge_clock(task, env.vclock)
            self._unblock(task)
            task.receive_matcher = None
            value = env.message
            payload_repr = repr(env)
        else:  # pragma: no cover
            raise SimulationError(f"unknown transition kind {tr.kind}")

        self._step_no += 1
        if self.track_clocks and task.vclock is not None:
            task.vclock = task.vclock.tick(task.tid)
        task.steps += 1

        # resume the generator for exactly one atomic segment
        access_var = access_kind = None
        try:
            effect = task.gen.send(value)
        except StopIteration as stop:
            self._finish(task, stop.value)
            effect_repr = "return"
        except Exception as exc:  # noqa: BLE001 - user task code may raise anything
            self._fail(task, exc)
            effect_repr = f"raise {type(exc).__name__}"
        else:
            try:
                effect_repr = self._apply_effect(task, effect)
            except IllegalEffectError as exc:
                # protocol violations are the *task's* bug, not the
                # kernel's: fail the task like any other user exception
                self._fail(task, exc)
                effect_repr = f"illegal {type(effect).__name__}"
            else:
                if isinstance(effect, Access):
                    access_var, access_kind = effect.var, effect.kind

        self.trace.events.append(TraceEvent(
            step=self._step_no,
            task_tid=task.tid,
            task_name=task.name,
            kind=tr.kind,
            effect_repr=effect_repr,
            chosen_index=chosen,
            fanout=fanout,
            vclock=task.vclock if self.track_clocks else None,
            access_var=access_var,
            access_kind=access_kind,
            payload_repr=payload_repr,
        ))

        if task.state is TaskState.FAILED and self.raise_on_failure:
            raise TaskFailed(task.name, task.error)  # type: ignore[arg-type]

    # ------------------------------------------------------------------
    # effect interpretation
    # ------------------------------------------------------------------
    def _apply_effect(self, task: Task, effect: Effect) -> str:
        if isinstance(effect, (Pause, Access)):
            label = effect.label or ("access " + effect.var
                                     if isinstance(effect, Access) else "pause")
            return label

        if isinstance(effect, Acquire):
            lock = effect.lock
            if lock._can_grant(task):
                lock._grant(task)
                self._merge_clock(task, lock._vclock)
            else:
                self._block(task, TaskState.BLOCKED_ACQUIRE, lock,
                            f"acquire {getattr(lock, 'name', lock)!r}")
            return f"acquire {getattr(lock, 'name', lock)}"

        if isinstance(effect, Release):
            lock = effect.lock
            fully = lock._release(task)
            if fully and self.track_clocks and task.vclock is not None:
                lock._vclock = lock._vclock.merge(task.vclock)
            return f"release {getattr(lock, 'name', lock)}"

        if isinstance(effect, Wait):
            mon = effect.monitor
            if not isinstance(mon, SimMonitor):
                raise IllegalEffectError(f"WAIT on non-monitor {mon!r}")
            if self.track_clocks and task.vclock is not None:
                mon._vclock = mon._vclock.merge(task.vclock)
            mon._park_waiter(task)
            self._block(task, TaskState.BLOCKED_WAIT, mon,
                        f"wait on {mon.name}")
            return f"wait {mon.name}"

        if isinstance(effect, Notify):
            mon = effect.monitor
            if not isinstance(mon, SimMonitor):
                raise IllegalEffectError(f"NOTIFY on non-monitor {mon!r}")
            if mon._owner is not task:
                raise IllegalEffectError(
                    f"{task.name} notified {mon.name} without holding it")
            for waiter, depth in mon._pop_waiters(effect.all):
                waiter._reacquire_depth = depth
                self._block(waiter, TaskState.BLOCKED_ACQUIRE, mon,
                            f"re-acquire {mon.name} after notify")
            return f"notify{'All' if effect.all else ''} {mon.name}"

        if isinstance(effect, Send):
            env = effect.mailbox._deposit(effect.message, task)
            return f"send {env.message!r} to {effect.mailbox.name}"

        if isinstance(effect, Receive):
            task.receive_matcher = effect.matcher
            self._block(task, TaskState.BLOCKED_RECEIVE, effect.mailbox,
                        f"receive from {effect.mailbox.name}")
            return f"receive from {effect.mailbox.name}"

        if isinstance(effect, Spawn):
            child = self.spawn(effect.gen, name=effect.name,
                               daemon=effect.daemon)
            if self.track_clocks and task.vclock is not None:
                child.vclock = child.vclock.merge(task.vclock)
            task.pending_value = child
            return f"spawn {child.name}"

        if isinstance(effect, Join):
            target: Task = effect.task
            if target.finished:
                task.pending_value = target.result
                self._merge_clock(task, target.vclock)
            else:
                target.joiners.append(task)
                self._block(task, TaskState.BLOCKED_JOIN, target,
                            f"join {target.name}")
            return f"join {target.name}"

        if isinstance(effect, Choice):
            if not effect.options:
                raise IllegalEffectError(f"{task.name} yielded an empty Choice")
            task.choice_options = tuple(effect.options)
            return f"choice of {len(effect.options)}"

        if isinstance(effect, Emit):
            self.trace.output.append(effect.value)
            return f"emit {effect.value!r}"

        if isinstance(effect, Sleep):
            if effect.ticks > 0:
                task.sleep_ticks = effect.ticks
                task.state = TaskState.SLEEPING
                task.blocked_reason = f"sleep {effect.ticks}"
            return f"sleep {effect.ticks}"

        raise IllegalEffectError(
            f"{task.name} yielded non-effect {effect!r} — task bodies must "
            f"yield repro.core.effects.Effect instances")

    # ------------------------------------------------------------------
    # helpers
    # ------------------------------------------------------------------
    def _block(self, task: Task, state: TaskState, on: Any, reason: str) -> None:
        task.state = state
        task.blocked_on = on
        task.blocked_reason = reason

    def _unblock(self, task: Task) -> None:
        task.state = TaskState.READY
        task.blocked_on = None
        task.blocked_reason = ""

    def _merge_clock(self, task: Task, other: Optional[VectorClock]) -> None:
        if self.track_clocks and task.vclock is not None and other is not None:
            task.vclock = task.vclock.merge(other)

    def _finish(self, task: Task, result: Any) -> None:
        task.state = TaskState.DONE
        task.result = result
        for joiner in task.joiners:
            joiner.pending_value = result
            self._merge_clock(joiner, task.vclock)
            self._unblock(joiner)
        task.joiners.clear()

    def _fail(self, task: Task, exc: BaseException) -> None:
        task.state = TaskState.FAILED
        task.error = exc
        for joiner in task.joiners:
            # joiner observes the failure as a TaskFailed raised at its Join
            joiner.pending_value = None
            self._unblock(joiner)
        task.joiners.clear()

    def _tick_sleepers(self) -> None:
        for t in self.tasks:
            if t.state is TaskState.SLEEPING:
                t.sleep_ticks -= 1
                if t.sleep_ticks <= 0:
                    self._unblock(t)

    def _advance_sleepers(self) -> bool:
        """No enabled transition: fast-forward simulated time if possible."""
        sleepers = [t for t in self.tasks if t.state is TaskState.SLEEPING]
        if not sleepers:
            return False
        for t in sleepers:
            self._unblock(t)
        return True

    # ------------------------------------------------------------------
    def results(self) -> dict[str, Any]:
        """Map of task name → return value (finished tasks only)."""
        return {t.name: t.result for t in self.tasks if t.state is TaskState.DONE}


def run_tasks(*fns: Callable[[], Any],
              policy: Optional[SchedulingPolicy] = None,
              names: Optional[Iterable[str]] = None,
              **kwargs: Any) -> Trace:
    """Convenience: spawn each generator function and run to completion.

    >>> def hello():
    ...     yield Emit("hello ")
    >>> def world():
    ...     yield Emit("world ")
    >>> run_tasks(hello, world).output_str()
    'hello world '
    """
    sched = Scheduler(policy, **kwargs)
    name_list = list(names) if names else [""] * len(fns)
    for fn, name in zip(fns, name_list):
        sched.spawn(fn, name=name)
    return sched.run()
