"""The deterministic cooperative scheduler — heart of the kernel.

One :class:`Scheduler` executes one run of a concurrent program.  Tasks
are generators; the scheduler repeatedly

1. computes the set of *enabled transitions* (runnable tasks, grantable
   lock acquisitions, deliverable messages, pending explicit choices),
2. asks its :class:`~repro.core.policy.SchedulingPolicy` to pick one,
3. executes it: resume the task's generator one atomic step, interpret
   the effect it yields, and park/ready the task accordingly.

All nondeterminism flows through step 2, so recording the chosen indices
makes every run exactly replayable — the property the model checker in
:mod:`repro.verify` is built on (CHESS-style systematic testing).

The scheduler also maintains vector clocks along the synchronization
edges (lock release→acquire, message send→deliver, spawn→first step,
finish→join) so the race detector and causal mailbox policy see the true
happens-before relation of the run.
"""

from __future__ import annotations

import inspect
from typing import TYPE_CHECKING, Any, Callable, Iterable, Optional

if TYPE_CHECKING:  # pragma: no cover
    from ..obs.metrics import KernelMetrics
    from ..obs.monitors import MonitorBus

from .clock import VectorClock
from .effects import (EMPTY_FOOTPRINT, Access, AccessKind, Acquire, Choice,
                      Effect, Emit, Join, Notify, Pause, Receive, Release,
                      Send, Sleep, Spawn, Wait)
from .errors import (BudgetExceeded, DeadlockError, IllegalEffectError,
                     SimulationError, TaskFailed)
from .mailbox import Mailbox
from .monitor import SimMonitor
from .policy import (RoundRobinPolicy, SchedulingPolicy, Transition)
from .task import Task, TaskState
from .trace import Trace, TraceEvent

__all__ = ["Scheduler", "run_tasks"]

#: generous default so runaway programs fail loudly instead of hanging
DEFAULT_MAX_STEPS = 200_000


class Scheduler:
    """Execute generator tasks under a scheduling policy.

    Parameters
    ----------
    policy:
        Decides every scheduling choice.  Defaults to fair round-robin.
    raise_on_deadlock:
        If True (default) a deadlock raises :class:`DeadlockError`;
        otherwise the run ends with ``trace.outcome == "deadlock"`` —
        the explorer uses the latter to *count* deadlocking schedules.
    raise_on_failure:
        If True (default) a task exception aborts the run with
        :class:`TaskFailed`; otherwise it is recorded on the task.
    max_steps:
        Hard step budget; exceeding it raises :class:`BudgetExceeded`
        (or records outcome ``"budget"``).
    track_clocks:
        Maintain vector clocks (needed by the race detector and the
        CAUSAL mailbox policy; small constant overhead).
    record_enabled:
        Attach reduction metadata to every step: the executed effect's
        access footprint, the task's spawn-order index (``ltid``) and a
        summary of the whole enabled set go into the
        :class:`~repro.core.trace.TraceEvent`, and enabled
        :class:`Transition` objects carry their declared footprints.
        Off by default (the explorer's partial-order reduction turns it
        on; normal runs skip the bookkeeping).
    step_hook:
        Optional callable invoked with the scheduler after every
        executed step during :meth:`run`; returning a falsy value stops
        the run with outcome ``"pruned"`` (the explorer's
        state-fingerprint cut-off).
    metrics:
        Optional :class:`repro.obs.KernelMetrics` sink.  When given,
        the scheduler records counters/gauges/histograms (context
        switches, lock contention and wait ticks, mailbox depth,
        message latency, per-task run/block ticks) as it executes.
        When None (default) the only cost is one ``is None`` test per
        step — instrumentation never changes scheduling decisions.
    monitors:
        Optional :class:`repro.obs.MonitorBus`.  When given, every
        executed step's :class:`TraceEvent` is fed to the bus online
        (together with the names of the then-runnable tasks), and the
        run's outcome is delivered via ``bus.finish`` when :meth:`run`
        returns normally.  Guarded by the same single ``is None`` test
        as ``metrics`` — detectors observe the event stream only and
        can never perturb scheduling, fingerprints or sleep sets.
    """

    def __init__(self,
                 policy: Optional[SchedulingPolicy] = None,
                 *,
                 raise_on_deadlock: bool = True,
                 raise_on_failure: bool = True,
                 max_steps: int = DEFAULT_MAX_STEPS,
                 track_clocks: bool = True,
                 record_enabled: bool = False,
                 step_hook: Optional[Callable[["Scheduler"], bool]] = None,
                 metrics: Optional["KernelMetrics"] = None,
                 monitors: Optional["MonitorBus"] = None):
        self.policy = policy or RoundRobinPolicy()
        self.raise_on_deadlock = raise_on_deadlock
        self.raise_on_failure = raise_on_failure
        self.max_steps = max_steps
        self.track_clocks = track_clocks
        self.record_enabled = record_enabled
        self.step_hook = step_hook
        self.metrics = metrics
        self.monitors = monitors
        #: optional program-provided callable exposing shared state to
        #: :meth:`fingerprint` (set it inside the program callable)
        self.fingerprint_extra: Optional[Callable[[], Any]] = None

        self.tasks: list[Task] = []
        self.trace = Trace()
        self._step_no = 0
        self._ran = False
        #: task tid -> spawn-order index (replay-stable identity)
        self._ltids: dict[int, int] = {}
        #: id(lock/mailbox/monitor) -> (first-use index, object)
        self._objects: dict[int, tuple[int, Any]] = {}
        self._sleepers_active = False
        #: any Access effect executed — user shared state exists
        self._access_seen = False
        #: spawn-order id of the previously executed task (ctx switches)
        self._last_ran_ltid: Optional[int] = None
        #: sync-object name / envelope seqs of the step being executed,
        #: published into its TraceEvent (trace-export flow pairing)
        self._evt_obj_name: Optional[str] = None
        self._evt_msg_seq: Optional[int] = None
        self._evt_recv_seq: Optional[int] = None
        self._evt_recv_mbox: Optional[str] = None

    # ------------------------------------------------------------------
    # task creation
    # ------------------------------------------------------------------
    def spawn(self, fn: Callable[..., Any] | Any, *args: Any,
              name: str = "", daemon: bool = False, **kwargs: Any) -> Task:
        """Register a task.

        ``fn`` may be a generator function (called with ``*args``) or an
        already-created generator.  Returns the :class:`Task` handle.
        Daemon tasks do not prevent quiescent termination.
        """
        if inspect.isgenerator(fn):
            if args or kwargs:
                raise TypeError("pass args only with a generator function")
            gen = fn
        elif callable(fn):
            gen = fn(*args, **kwargs)
        else:
            raise TypeError(f"cannot spawn {fn!r}")
        task = Task(gen, name=name or getattr(fn, "__name__", ""))
        task.daemon = daemon
        # spawn-order index: replay-stable, unlike the process-global tid
        self._ltids[task.tid] = len(self._ltids)
        if self.track_clocks:
            # child inherits the current global knowledge at spawn time
            task.vclock = VectorClock().tick(task.tid)
        self.tasks.append(task)
        if self.metrics is not None:
            self.metrics.inc("tasks_spawned")
        return task

    # ------------------------------------------------------------------
    # enabled-transition computation
    # ------------------------------------------------------------------
    def enabled_transitions(self) -> list[Transition]:
        out: list[Transition] = []
        rec = self.record_enabled
        for task in self.tasks:
            if task.state is TaskState.READY:
                if task.choice_options is not None:
                    for opt in task.choice_options:
                        out.append(Transition(
                            task, "choice", payload=opt,
                            footprint=EMPTY_FOOTPRINT if rec else None))
                else:
                    # what the generator will do next is unknown until it
                    # resumes: footprint stays None (= conflicts with all)
                    out.append(Transition(task, "run"))
            elif task.state is TaskState.BLOCKED_ACQUIRE:
                lock = task.blocked_on
                if lock._can_grant(task):
                    fp = (frozenset({self._stable_token(("lock", id(lock), "w"))})
                          if rec else None)
                    out.append(Transition(task, "acquire", footprint=fp))
            elif task.state is TaskState.BLOCKED_RECEIVE:
                mailbox: Mailbox = task.blocked_on
                fp = (frozenset({self._stable_token(("mbox", id(mailbox), "w"))})
                      if rec else None)
                for idx in mailbox._deliverable(task.receive_matcher):
                    out.append(Transition(task, "deliver",
                                          payload=mailbox.pending[idx].message,
                                          payload_index=idx,
                                          footprint=fp))
        return out

    # ------------------------------------------------------------------
    # single step
    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Execute one transition.  Returns False when the run is over."""
        if all(t.finished for t in self.tasks):
            return False
        transitions = self.enabled_transitions()
        if not transitions:
            if self._advance_sleepers():
                return True
            unfinished = [t for t in self.tasks if not t.finished]
            if all(t.daemon for t in unfinished):
                # quiescence: only daemon message loops remain, all idle
                return False
            blocked = [(t.name, t.describe_block()) for t in unfinished]
            self.trace.outcome = "deadlock"
            self.trace.detail = "; ".join(f"{n}: {r}" for n, r in blocked)
            if self.raise_on_deadlock:
                raise DeadlockError(blocked)
            return False
        if self._step_no >= self.max_steps:
            self.trace.outcome = "budget"
            self.trace.detail = f"exceeded {self.max_steps} steps"
            if self.raise_on_failure:
                raise BudgetExceeded(self.trace.detail)
            return False

        enabled_summary: Optional[tuple] = None
        if self.record_enabled:
            self._sleepers_active = any(
                t.state is TaskState.SLEEPING for t in self.tasks)
            enabled_summary = tuple(
                (self._ltid_of(tr.task.tid), tr.kind,
                 tr.payload_index if tr.kind == "deliver"
                 else (repr(tr.payload) if tr.kind == "choice" else 0))
                for tr in transitions)

        idx = self.policy.choose(transitions)
        if not 0 <= idx < len(transitions):
            raise SimulationError(f"policy chose {idx} of {len(transitions)}")
        tr = transitions[idx]
        self._execute(tr, idx, len(transitions), enabled_summary)
        self._tick_sleepers()
        return True

    def run(self) -> Trace:
        """Run to completion (or deadlock/budget); returns the trace."""
        if self._ran:
            raise SimulationError("Scheduler instances are single-use; create a new one")
        self._ran = True
        self.policy.reset()
        try:
            while self.step():
                if self.step_hook is not None and not self.step_hook(self):
                    self.trace.outcome = "pruned"
                    self.trace.detail = "state already expanded elsewhere"
                    break
        finally:
            self._close_leftover_generators()
        if self.trace.outcome == "done" and any(
                t.state is TaskState.FAILED for t in self.tasks):
            self.trace.outcome = "failed"
        if self.monitors is not None:
            # end-of-run detectors (deadlock cycles, lost wakeups) fire
            # here; raise_on_* exits skip them — hazard hunting runs
            # with raise_on_deadlock/failure=False, as explore() does
            self.monitors.finish(self.trace.outcome, self.trace.detail)
        return self.trace

    def _close_leftover_generators(self) -> None:
        """Close abandoned generators (deadlocked/blocked tasks).

        Task bodies may hold ``finally: yield Release(...)`` clauses;
        closing such a generator raises RuntimeError ("generator
        ignored GeneratorExit"), which is expected for an abandoned
        task — we swallow it so interpreter shutdown stays quiet.
        """
        for task in self.tasks:
            if not task.finished:
                try:
                    task.gen.close()
                except (RuntimeError, StopIteration):
                    pass

    # ------------------------------------------------------------------
    # transition execution
    # ------------------------------------------------------------------
    def _execute(self, tr: Transition, chosen: int, fanout: int,
                 enabled: Optional[tuple] = None) -> None:
        task = tr.task
        value: Any = None
        payload_repr: Optional[str] = None
        ready_names: tuple = ()
        if self.monitors is not None:
            # runnable tasks at choice time (starvation monitoring)
            ready_names = tuple(t.name for t in self.tasks
                                if t.state is TaskState.READY)
        self._evt_obj_name = None
        self._evt_msg_seq = None
        self._evt_recv_seq = None
        self._evt_recv_mbox = None

        m = self.metrics
        if m is not None:
            m.inc("steps")
            ltid = self._ltid_of(task.tid)
            if self._last_ran_ltid is not None and self._last_ran_ltid != ltid:
                m.inc("context_switches")
            self._last_ran_ltid = ltid
            m.observe("enabled_fanout", fanout)
            m.task_add(task.name, "steps", 1)

        # reduction bookkeeping: the executed step's access footprint.
        # Kind contributions must be captured *before* dispatch clears
        # ``blocked_on`` (acquire grants and delivers mutate the object).
        step_fp: Optional[set] = set() if self.record_enabled else None
        if step_fp is not None:
            # an Access yielded last step announced what THIS segment does
            announced = getattr(task, "_announced_access", None)
            if announced is not None:
                step_fp.add(announced)
                task._announced_access = None
            if tr.kind == "acquire":
                step_fp.add(("lock", id(task.blocked_on), "w"))
            elif tr.kind == "deliver":
                step_fp.add(("mbox", id(task.blocked_on), "w"))

        if tr.kind == "run":
            value, task.pending_value = task.pending_value, None
        elif tr.kind == "choice":
            task.choice_options = None
            value = tr.payload
            payload_repr = repr(tr.payload)
        elif tr.kind == "acquire":
            lock = task.blocked_on
            lock._grant(task, getattr(task, "_reacquire_depth", 1) or 1)
            task._reacquire_depth = 1
            self._merge_clock(task, lock._vclock)
            payload_repr = getattr(lock, "name", None)
            self._evt_obj_name = payload_repr
            if m is not None:
                blocked_at = getattr(task, "_blocked_at_step", None)
                if blocked_at is not None:
                    m.observe("lock_wait_ticks", self._step_no - blocked_at)
                m.inc("lock_acquires")
                m.inc(f"lock.{payload_repr}.acquires")
            self._unblock(task)
        elif tr.kind == "deliver":
            mailbox: Mailbox = task.blocked_on
            env = mailbox._take(tr.payload_index)
            self._merge_clock(task, env.vclock)
            self._evt_recv_mbox = mailbox.name
            self._evt_recv_seq = env.seq
            if m is not None:
                m.inc("messages_delivered")
                m.inc(f"mailbox.{mailbox.name}.delivered")
                sent_at = m._sent_at.pop(env.seq, None)
                if sent_at is not None:
                    m.observe("message_latency_ticks",
                              self._step_no - sent_at)
            self._unblock(task)
            task.receive_matcher = None
            value = env.message
            payload_repr = repr(env)
        else:  # pragma: no cover
            raise SimulationError(f"unknown transition kind {tr.kind}")

        if self.record_enabled and value is not None:
            # kernel-fed inputs (choice picks, delivered messages, join
            # results) become task-local state invisible to fingerprints
            # unless logged: two tasks at the same step with different
            # inputs are NOT in the same local state
            task._inputs = getattr(task, "_inputs", ()) + (
                ("task", self._ltid_of(value.tid)) if isinstance(value, Task)
                else repr(value),)

        self._step_no += 1
        if self.track_clocks and task.vclock is not None:
            task.vclock = task.vclock.tick(task.tid)
        task.steps += 1

        # resume the generator for exactly one atomic segment
        access_var = access_kind = None
        try:
            effect = task.gen.send(value)
        except StopIteration as stop:
            self._finish(task, stop.value)
            effect_repr = "return"
        except Exception as exc:  # noqa: BLE001 - user task code may raise anything
            self._fail(task, exc)
            effect_repr = f"raise {type(exc).__name__}"
        else:
            try:
                effect_repr = self._apply_effect(task, effect)
            except IllegalEffectError as exc:
                # protocol violations are the *task's* bug, not the
                # kernel's: fail the task like any other user exception
                self._fail(task, exc)
                effect_repr = f"illegal {type(effect).__name__}"
            else:
                if isinstance(effect, Access):
                    access_var, access_kind = effect.var, effect.kind
                if step_fp is not None:
                    if isinstance(effect, Access):
                        # the declared access happens in the task's NEXT
                        # segment (`yield Access(...)` precedes the code
                        # it describes) — defer the token to that step
                        task._announced_access = next(iter(effect.footprint()))
                    elif (isinstance(effect, Acquire)
                            and task.state is TaskState.BLOCKED_ACQUIRE):
                        # parking only *observes* the lock; two parks of
                        # different tasks commute (r-r independent),
                        # while a Release ("w") still conflicts
                        step_fp.add(("lock", id(effect.lock), "r"))
                    else:
                        step_fp.update(effect.footprint())

        if step_fp is not None:
            if task.finished:
                # finishing/failing wakes joiners — a write on the task
                step_fp.add(("task", task.tid, "w"))
            if self._sleepers_active:
                # any step taken while a sleeper exists advances its
                # timer: steps are never reorderable across sleep ticks
                step_fp.add(("time", 0, "w"))

        self.trace.events.append(TraceEvent(
            step=self._step_no,
            task_tid=task.tid,
            task_name=task.name,
            kind=tr.kind,
            effect_repr=effect_repr,
            chosen_index=chosen,
            fanout=fanout,
            vclock=task.vclock if self.track_clocks else None,
            access_var=access_var,
            access_kind=access_kind,
            payload_repr=payload_repr,
            task_ltid=self._ltid_of(task.tid),
            footprint=frozenset(self._stable_token(t) for t in step_fp)
            if step_fp is not None else None,
            enabled=enabled,
            obj_name=self._evt_obj_name,
            msg_seq=self._evt_msg_seq,
            recv_seq=self._evt_recv_seq,
            recv_mbox=self._evt_recv_mbox,
        ))
        if self.monitors is not None:
            self.monitors.feed(self.trace.events[-1], ready_names)

        if task.state is TaskState.FAILED and self.raise_on_failure:
            raise TaskFailed(task.name, task.error)  # type: ignore[arg-type]

    # ------------------------------------------------------------------
    # effect interpretation
    # ------------------------------------------------------------------
    def _apply_effect(self, task: Task, effect: Effect) -> str:
        if isinstance(effect, (Acquire, Release)):
            self._register(effect.lock)
        elif isinstance(effect, (Wait, Notify)):
            self._register(effect.monitor)
        elif isinstance(effect, (Send, Receive)):
            self._register(effect.mailbox)

        if isinstance(effect, (Pause, Access)):
            if isinstance(effect, Access):
                self._access_seen = True
                if effect.kind is AccessKind.READ:
                    task._read_access = True
            label = effect.label or ("access " + effect.var
                                     if isinstance(effect, Access) else "pause")
            return label

        m = self.metrics
        if isinstance(effect, Acquire):
            lock = effect.lock
            self._evt_obj_name = getattr(lock, "name", None)
            if lock._can_grant(task):
                lock._grant(task)
                self._merge_clock(task, lock._vclock)
                if m is not None:
                    m.inc("lock_acquires")
                    m.inc(f"lock.{self._evt_obj_name}.acquires")
                    m.observe("lock_wait_ticks", 0)
            else:
                if hasattr(lock, "contention_count"):
                    lock.contention_count += 1
                if m is not None:
                    m.inc("lock_contended")
                    m.inc(f"lock.{self._evt_obj_name}.contended")
                self._block(task, TaskState.BLOCKED_ACQUIRE, lock,
                            f"acquire {getattr(lock, 'name', lock)!r}")
            return f"acquire {getattr(lock, 'name', lock)}"

        if isinstance(effect, Release):
            lock = effect.lock
            self._evt_obj_name = getattr(lock, "name", None)
            fully = lock._release(task)
            if fully and self.track_clocks and task.vclock is not None:
                lock._vclock = lock._vclock.merge(task.vclock)
            if m is not None:
                m.inc("lock_releases")
            return f"release {getattr(lock, 'name', lock)}"

        if isinstance(effect, Wait):
            mon = effect.monitor
            if not isinstance(mon, SimMonitor):
                raise IllegalEffectError(f"WAIT on non-monitor {mon!r}")
            self._evt_obj_name = mon.name
            if m is not None:
                m.inc("monitor_waits")
            if self.track_clocks and task.vclock is not None:
                mon._vclock = mon._vclock.merge(task.vclock)
            mon._park_waiter(task)
            self._block(task, TaskState.BLOCKED_WAIT, mon,
                        f"wait on {mon.name}")
            return f"wait {mon.name}"

        if isinstance(effect, Notify):
            mon = effect.monitor
            if not isinstance(mon, SimMonitor):
                raise IllegalEffectError(f"NOTIFY on non-monitor {mon!r}")
            if mon._owner is not task:
                raise IllegalEffectError(
                    f"{task.name} notified {mon.name} without holding it")
            self._evt_obj_name = mon.name
            if m is not None:
                m.inc("monitor_notifies")
            for waiter, depth in mon._pop_waiters(effect.all):
                waiter._reacquire_depth = depth
                self._block(waiter, TaskState.BLOCKED_ACQUIRE, mon,
                            f"re-acquire {mon.name} after notify")
            return f"notify{'All' if effect.all else ''} {mon.name}"

        if isinstance(effect, Send):
            env = effect.mailbox._deposit(effect.message, task)
            self._evt_obj_name = effect.mailbox.name
            self._evt_msg_seq = env.seq
            if m is not None:
                depth = len(effect.mailbox.pending)
                m.inc("messages_sent")
                m.inc(f"mailbox.{effect.mailbox.name}.sent")
                m.observe("mailbox_depth", depth)
                m.gauge_max("mailbox_depth_max", depth)
                m.gauge_max(f"mailbox.{effect.mailbox.name}.depth_max",
                            depth)
                m._sent_at[env.seq] = self._step_no
            return f"send {env.message!r} to {effect.mailbox.name}"

        if isinstance(effect, Receive):
            self._evt_obj_name = effect.mailbox.name
            task.receive_matcher = effect.matcher
            self._block(task, TaskState.BLOCKED_RECEIVE, effect.mailbox,
                        f"receive from {effect.mailbox.name}")
            return f"receive from {effect.mailbox.name}"

        if isinstance(effect, Spawn):
            child = self.spawn(effect.gen, name=effect.name,
                               daemon=effect.daemon)
            if self.track_clocks and task.vclock is not None:
                child.vclock = child.vclock.merge(task.vclock)
            task.pending_value = child
            return f"spawn {child.name}"

        if isinstance(effect, Join):
            target: Task = effect.task
            if target.finished:
                task.pending_value = target.result
                self._merge_clock(task, target.vclock)
            else:
                target.joiners.append(task)
                self._block(task, TaskState.BLOCKED_JOIN, target,
                            f"join {target.name}")
            return f"join {target.name}"

        if isinstance(effect, Choice):
            if not effect.options:
                raise IllegalEffectError(f"{task.name} yielded an empty Choice")
            task.choice_options = tuple(effect.options)
            return f"choice of {len(effect.options)}"

        if isinstance(effect, Emit):
            self.trace.output.append(effect.value)
            return f"emit {effect.value!r}"

        if isinstance(effect, Sleep):
            if effect.ticks > 0:
                task.sleep_ticks = effect.ticks
                task.state = TaskState.SLEEPING
                task.blocked_reason = f"sleep {effect.ticks}"
            return f"sleep {effect.ticks}"

        raise IllegalEffectError(
            f"{task.name} yielded non-effect {effect!r} — task bodies must "
            f"yield repro.core.effects.Effect instances")

    # ------------------------------------------------------------------
    # helpers
    # ------------------------------------------------------------------
    def _block(self, task: Task, state: TaskState, on: Any, reason: str) -> None:
        task.state = state
        task.blocked_on = on
        task.blocked_reason = reason
        if self.metrics is not None:
            task._blocked_at_step = self._step_no

    def _unblock(self, task: Task) -> None:
        if self.metrics is not None:
            blocked_at = getattr(task, "_blocked_at_step", None)
            if blocked_at is not None:
                delta = self._step_no - blocked_at
                self.metrics.observe("block_ticks", delta)
                self.metrics.task_add(task.name, "block_ticks", delta)
                task._blocked_at_step = None
        task.state = TaskState.READY
        task.blocked_on = None
        task.blocked_reason = ""

    def _merge_clock(self, task: Task, other: Optional[VectorClock]) -> None:
        if self.track_clocks and task.vclock is not None and other is not None:
            task.vclock = task.vclock.merge(other)

    def _finish(self, task: Task, result: Any) -> None:
        task.state = TaskState.DONE
        task.result = result
        if self.metrics is not None:
            self.metrics.inc("tasks_finished")
        for joiner in task.joiners:
            joiner.pending_value = result
            self._merge_clock(joiner, task.vclock)
            self._unblock(joiner)
        task.joiners.clear()

    def _fail(self, task: Task, exc: BaseException) -> None:
        task.state = TaskState.FAILED
        task.error = exc
        if self.metrics is not None:
            self.metrics.inc("tasks_failed")
        for joiner in task.joiners:
            # joiner observes the failure as a TaskFailed raised at its Join
            joiner.pending_value = None
            self._unblock(joiner)
        task.joiners.clear()

    def _tick_sleepers(self) -> None:
        for t in self.tasks:
            if t.state is TaskState.SLEEPING:
                t.sleep_ticks -= 1
                if t.sleep_ticks <= 0:
                    self._unblock(t)

    def _advance_sleepers(self) -> bool:
        """No enabled transition: fast-forward simulated time if possible."""
        sleepers = [t for t in self.tasks if t.state is TaskState.SLEEPING]
        if not sleepers:
            return False
        for t in sleepers:
            self._unblock(t)
        return True

    # ------------------------------------------------------------------
    # reduction support: spawn-order identity + state fingerprints
    # ------------------------------------------------------------------
    def _register(self, obj: Any) -> None:
        """Track a sync object in dense first-use order.

        ``id(obj)`` differs between replayed runs; the first-use index
        does not (replay determinism), so fingerprints reference objects
        by that index.
        """
        key = id(obj)
        if key not in self._objects:
            self._objects[key] = (len(self._objects), obj)

    def _ltid_of(self, tid: int) -> int:
        return self._ltids.get(tid, -1)

    def _stable_token(self, token: tuple) -> tuple:
        """Rewrite a footprint token's key to a replay-stable form.

        Raw tokens key objects by ``id()`` and tasks by global tid —
        both differ between replayed runs.  The explorer compares
        footprints *across* runs (subtree summaries), so recorded
        footprints use the dense first-use object index / the
        spawn-order ltid instead.
        """
        dom, key, mode = token
        if dom in ("lock", "mbox"):
            ent = self._objects.get(key)
            if ent is not None:
                return (dom, ent[0], mode)
        elif dom == "task":
            return (dom, self._ltid_of(key), mode)
        return token

    def _state_ref(self, obj: Any) -> Any:
        """Replay-stable reference to whatever a task is blocked on."""
        if obj is None:
            return None
        if isinstance(obj, Task):
            return ("task", self._ltid_of(obj.tid))
        ent = self._objects.get(id(obj))
        if ent is not None:
            return ("obj", ent[0])
        return repr(obj)

    def fingerprint(self) -> tuple:
        """Hashable digest of all kernel-visible state.

        Two runs of the same program whose schedulers report equal
        fingerprints have *reconverged*: every task sits at the same
        local position in the same task state, every lock / monitor /
        mailbox holds the same (spawn-order-normalised) contents, and
        the emitted output so far is identical.  The explorer's
        ``fingerprint`` reduction prunes a run when it reaches a state
        it has already expanded at the same depth.

        Shared *user* state (plain Python variables mutated by tasks) is
        invisible to the kernel; programs relying on it should expose it
        via ``scheduler.fingerprint_extra = lambda: (...)``.  Per-task
        step counts are folded in regardless, so tasks whose control
        flow has diverged on user state never look reconverged unless
        they have taken identical step counts.
        """
        ltid = self._ltid_of
        tasks_part = tuple(
            (ltid(t.tid), t.state.name, t.steps,
             self._state_ref(t.blocked_on),
             self._state_ref(t.pending_value)
             if isinstance(t.pending_value, Task) else repr(t.pending_value),
             repr(t.choice_options) if t.choice_options is not None else None,
             t.sleep_ticks,
             # a task may declare its locals fully captured by
             # fingerprint_extra (e.g. a simulation driver whose only
             # state is the world object): its input history then stops
             # blocking reconvergence, which is what lets the
             # fingerprint reduction prune single-driver programs
             getattr(t, "_inputs", ())
             if getattr(t, "fingerprint_inputs", True) else ())
            for t in self.tasks)
        objects_part = tuple(
            obj.state_key(ltid) if hasattr(obj, "state_key") else repr(obj)
            for _, obj in sorted(self._objects.values(), key=lambda e: e[0]))
        output_part = tuple(repr(v) for v in self.trace.output)
        extra = (repr(self.fingerprint_extra())
                 if self.fingerprint_extra is not None else None)
        return (tasks_part, objects_part, output_part, extra)

    def fingerprint_opaque(self) -> bool:
        """True when kernel-invisible user state could differ between
        two runs whose :meth:`fingerprint` values are equal — pruning on
        the fingerprint would then be unsound.

        Two situations qualify: shared variables exist (an
        :class:`~repro.core.effects.Access` was executed) but the
        program exposes no ``fingerprint_extra``; or a still-running
        task has *read* a shared variable, so its locals may hold a
        value no fingerprint component tracks.
        """
        if self._access_seen and self.fingerprint_extra is None:
            return True
        return any(getattr(t, "_read_access", False) and not t.finished
                   for t in self.tasks)

    # ------------------------------------------------------------------
    def results(self) -> dict[str, Any]:
        """Map of task name → return value (finished tasks only)."""
        return {t.name: t.result for t in self.tasks if t.state is TaskState.DONE}


def run_tasks(*fns: Callable[[], Any],
              policy: Optional[SchedulingPolicy] = None,
              names: Optional[Iterable[str]] = None,
              **kwargs: Any) -> Trace:
    """Convenience: spawn each generator function and run to completion.

    >>> def hello():
    ...     yield Emit("hello ")
    >>> def world():
    ...     yield Emit("world ")
    >>> run_tasks(hello, world).output_str()
    'hello world '
    """
    sched = Scheduler(policy, **kwargs)
    name_list = list(names) if names else [""] * len(fns)
    for fn, name in zip(fns, name_list):
        sched.spawn(fn, name=name)
    return sched.run()
