"""Synchronization primitives for the simulation kernel.

These objects hold *state only* — ownership, wait queues, logical clocks.
All blocking/waking logic lives in the scheduler, which manipulates them
through the small ``_``-prefixed protocol defined here.  User tasks never
call these methods; they yield :class:`~repro.core.effects.Acquire` /
:class:`~repro.core.effects.Release` effects (or use the context-manager
helpers below that do the yielding for them).

:class:`SimLock` is reentrant (like Java intrinsic locks, which the
paper's ``EXC_ACC`` models); a plain mutex is the ``reentrant=False``
case.  :class:`SimSemaphore` and :class:`SimBarrier` are built from the
same grant protocol.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator, Optional

from .clock import VectorClock
from .effects import Acquire, Effect, Release
from .errors import IllegalEffectError

if TYPE_CHECKING:  # pragma: no cover
    from .task import Task

__all__ = ["SimLock", "SimSemaphore", "SimBarrier", "locked"]


class SimLock:
    """A (reentrant) mutual-exclusion lock in simulated time.

    Use from a task body::

        yield Acquire(lock)
        ...critical section...
        yield Release(lock)

    or, equivalently, ``yield from locked(lock, body_gen)``.
    """

    _counter = 0

    def __init__(self, name: str = "", reentrant: bool = True):
        SimLock._counter += 1
        self.name = name or f"lock-{SimLock._counter}"
        self.reentrant = reentrant
        self._owner: Optional["Task"] = None
        self._count = 0
        #: release-time clock — next acquirer merges it (happens-before edge)
        self._vclock = VectorClock()
        #: grants of this lock to a non-owner (observability)
        self.acquire_count = 0
        #: acquire attempts that found the lock held by another task
        self.contention_count = 0

    # -- scheduler protocol -------------------------------------------------
    def _can_grant(self, task: "Task") -> bool:
        if self._owner is None:
            return True
        return self.reentrant and self._owner is task

    def _grant(self, task: "Task", count: int = 1) -> None:
        if self._owner is task:
            if not self.reentrant:
                raise IllegalEffectError(f"{task.name} re-acquired non-reentrant {self.name}")
            self._count += count
            return
        if self._owner is not None:
            raise IllegalEffectError(f"grant of held lock {self.name}")
        self._owner = task
        self._count = count
        self.acquire_count += 1

    def _release(self, task: "Task") -> bool:
        """Drop one hold level; returns True when fully released."""
        if self._owner is not task:
            raise IllegalEffectError(
                f"{task.name} released {self.name} owned by "
                f"{self._owner.name if self._owner else 'nobody'}"
            )
        self._count -= 1
        if self._count == 0:
            self._owner = None
            return True
        return False

    def _strip(self, task: "Task") -> int:
        """Fully release regardless of depth (the WAIT rule); returns depth."""
        if self._owner is not task:
            raise IllegalEffectError(f"{task.name} waited on {self.name} it does not own")
        depth, self._count, self._owner = self._count, 0, None
        return depth

    # -- inspection -----------------------------------------------------------
    @property
    def held(self) -> bool:
        return self._owner is not None

    def owner_name(self) -> Optional[str]:
        return self._owner.name if self._owner else None

    def state_key(self, ltid_of_tid) -> tuple:
        """Hashable kernel-visible state for scheduler fingerprints.

        ``ltid_of_tid`` maps a global task tid to its spawn-order index
        so keys compare equal across replayed runs of the same program.
        """
        owner = ltid_of_tid(self._owner.tid) if self._owner is not None else -1
        return ("lock", owner, self._count)

    def __repr__(self) -> str:
        o = f" held by {self._owner.name}x{self._count}" if self._owner else ""
        return f"<SimLock {self.name}{o}>"


def locked(lock: SimLock, body: Iterator[Effect]) -> Iterator[Effect]:
    """``synchronized``-block helper: acquire, run ``body``, always release.

    ``body`` is a generator; its yields pass through unchanged, so the
    critical section may itself block (e.g. on a nested lock).
    """
    yield Acquire(lock)
    try:
        yield from body
    finally:
        yield Release(lock)


class SimSemaphore:
    """Counting semaphore, expressed through the lock-grant protocol.

    The scheduler treats it like a lock whose ``_can_grant`` succeeds
    while permits remain; ``Release`` returns a permit.  Not reentrant
    and not owned — any task may release.
    """

    _counter = 0

    def __init__(self, permits: int, name: str = ""):
        if permits < 0:
            raise ValueError("permits must be >= 0")
        SimSemaphore._counter += 1
        self.name = name or f"sem-{SimSemaphore._counter}"
        self.permits = permits
        self._vclock = VectorClock()
        self.acquire_count = 0
        self.contention_count = 0

    # scheduler protocol (duck-typed with SimLock)
    def _can_grant(self, task: "Task") -> bool:
        return self.permits > 0

    def _grant(self, task: "Task", count: int = 1) -> None:
        if self.permits <= 0:
            raise IllegalEffectError(f"grant on empty semaphore {self.name}")
        self.permits -= 1
        self.acquire_count += 1

    def _release(self, task: "Task") -> bool:
        self.permits += 1
        return True

    def state_key(self, ltid_of_tid) -> tuple:
        return ("sem", self.permits)

    @property
    def held(self) -> bool:  # for uniform reporting
        return self.permits == 0

    def __repr__(self) -> str:
        return f"<SimSemaphore {self.name} permits={self.permits}>"


class SimBarrier:
    """Cyclic barrier for ``parties`` tasks, built on a semaphore pair.

    Implemented at the effect level in :meth:`wait_gen`; holds no
    scheduler-visible state of its own beyond its two semaphores, which
    keeps the kernel's primitive set minimal.
    """

    _counter = 0

    def __init__(self, parties: int, name: str = ""):
        if parties < 1:
            raise ValueError("parties must be >= 1")
        SimBarrier._counter += 1
        self.name = name or f"barrier-{SimBarrier._counter}"
        self.parties = parties
        self._mutex = SimLock(f"{self.name}.mutex")
        self._turnstile = SimSemaphore(0, f"{self.name}.turnstile")
        self._count = 0
        self.generation = 0

    def wait_gen(self) -> Iterator[Effect]:
        """Yield-from this to wait at the barrier."""
        yield Acquire(self._mutex)
        self._count += 1
        arrived = self._count
        if arrived == self.parties:
            # last arrival opens the turnstile for everyone (incl. itself)
            self._count = 0
            self.generation += 1
            for _ in range(self.parties):
                self._turnstile.permits += 1
        yield Release(self._mutex)
        yield Acquire(self._turnstile)

    def __repr__(self) -> str:
        return f"<SimBarrier {self.name} {self._count}/{self.parties}>"
