"""Task — a generator-backed cooperative thread of control.

A :class:`Task` wraps a generator produced by a task function.  The
scheduler resumes it, receives the next :class:`~repro.core.effects.Effect`,
and parks it according to the effect.  The task records enough metadata
(state, what it is blocked on, vector clock, statistics) for deadlock
reporting, fairness analysis and race detection.
"""

from __future__ import annotations

import enum
from typing import Any, Generator, Optional

from .effects import Effect

__all__ = ["TaskState", "Task"]


class TaskState(enum.Enum):
    """Lifecycle of a task inside the scheduler."""

    READY = "ready"              # runnable; next resume executes one atomic step
    BLOCKED_ACQUIRE = "blocked-acquire"    # waiting for a lock/monitor to free up
    BLOCKED_WAIT = "blocked-wait"          # in a monitor's condition queue
    BLOCKED_RECEIVE = "blocked-receive"    # waiting for a deliverable message
    BLOCKED_JOIN = "blocked-join"          # waiting for another task to finish
    SLEEPING = "sleeping"                  # timed back-off (Sleep effect)
    DONE = "done"
    FAILED = "failed"


#: states from which a task can never run again
_TERMINAL = frozenset({TaskState.DONE, TaskState.FAILED})


class Task:
    """One simulated thread of control.

    Not created directly by user code — use
    :meth:`repro.core.scheduler.Scheduler.spawn` or yield a
    :class:`~repro.core.effects.Spawn` effect.
    """

    _counter = 0

    def __init__(self, gen: Generator[Effect, Any, Any], name: str = ""):
        if not hasattr(gen, "send"):
            raise TypeError(
                f"task body must be a generator (did you forget to call the "
                f"generator function, or is it a plain function?): {gen!r}"
            )
        Task._counter += 1
        self.tid: int = Task._counter
        self.name: str = name or f"task-{self.tid}"
        self.gen = gen
        self.state: TaskState = TaskState.READY
        #: object the task is blocked on (lock / monitor / mailbox / task)
        self.blocked_on: Any = None
        #: human-readable reason, used in DeadlockError reports
        self.blocked_reason: str = ""
        #: value to feed into ``gen.send`` at next resume
        self.pending_value: Any = None
        #: result of the generator once DONE
        self.result: Any = None
        #: exception if FAILED
        self.error: Optional[BaseException] = None
        #: tasks blocked on Join(self)
        self.joiners: list["Task"] = []
        #: matcher for the current Receive effect (selective receive)
        self.receive_matcher = None
        #: options of a pending Choice effect
        self.choice_options: Optional[tuple] = None
        #: remaining sleep ticks
        self.sleep_ticks: int = 0
        #: vector clock for happens-before tracking (lazily attached)
        self.vclock = None
        #: number of atomic steps this task has executed
        self.steps: int = 0
        #: daemon tasks do not prevent quiescent termination
        self.daemon: bool = False

    # ------------------------------------------------------------------
    @property
    def finished(self) -> bool:
        return self.state in _TERMINAL

    @property
    def runnable(self) -> bool:
        return self.state is TaskState.READY

    def describe_block(self) -> str:
        """One-line description for deadlock reports."""
        if self.blocked_reason:
            return self.blocked_reason
        return self.state.value

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Task {self.name} tid={self.tid} {self.state.value}>"
