"""repro.core — deterministic simulation kernel.

Tasks are generator functions yielding :class:`Effect` objects; a
:class:`Scheduler` interprets them under a pluggable
:class:`SchedulingPolicy`.  Everything upstream (the three programming
models, the pseudocode interpreter, the model checker) compiles down to
this kernel.

Quick taste::

    from repro.core import Scheduler, Emit, Pause

    def greeter(text):
        yield Pause()
        yield Emit(text)

    s = Scheduler()
    s.spawn(greeter, "hello ")
    s.spawn(greeter, "world ")
    print(s.run().output_str())
"""

from .channel import ChannelClosed, SimChannel, SimRendezvous
from .clock import LamportClock, VectorClock
from .effects import (Access, AccessKind, Acquire, Choice, Effect, Emit,
                      Join, Notify, Pause, Receive, Release, Send, Sleep,
                      Spawn, Wait)
from .errors import (BudgetExceeded, DeadlockError, IllegalEffectError,
                     MailboxError, MonitorError, ReplayError,
                     SimulationError, TaskFailed)
from .mailbox import DeliveryPolicy, Envelope, Mailbox
from .monitor import SimMonitor, synchronized, wait_while
from .policy import (FixedPolicy, RandomPolicy, RecordingPolicy,
                     RoundRobinPolicy, SchedulingPolicy, Transition)
from .primitives import SimBarrier, SimLock, SimSemaphore, locked
from .scheduler import Scheduler, run_tasks
from .task import Task, TaskState
from .trace import Trace, TraceEvent

__all__ = [
    # effects
    "Effect", "Pause", "Access", "AccessKind", "Acquire", "Release", "Wait",
    "Notify", "Send", "Receive", "Spawn", "Join", "Choice", "Emit", "Sleep",
    # tasks & scheduling
    "Task", "TaskState", "Scheduler", "run_tasks",
    "SchedulingPolicy", "RoundRobinPolicy", "RandomPolicy", "FixedPolicy",
    "RecordingPolicy", "Transition",
    # sync objects
    "SimLock", "SimSemaphore", "SimBarrier", "SimMonitor", "SimChannel",
    "SimRendezvous", "locked", "synchronized", "wait_while",
    # messaging
    "Mailbox", "DeliveryPolicy", "Envelope",
    # time
    "LamportClock", "VectorClock",
    # traces
    "Trace", "TraceEvent",
    # errors
    "SimulationError", "DeadlockError", "IllegalEffectError", "MonitorError",
    "MailboxError", "ReplayError", "BudgetExceeded", "TaskFailed",
    "ChannelClosed",
]
