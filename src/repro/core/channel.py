"""Channels — CSP-style communication built *on top of* the kernel.

Unlike :class:`~repro.core.mailbox.Mailbox` (a kernel primitive with its
own effects), channels are a library construct assembled from monitors —
deliberately, to demonstrate that the kernel's primitive set is
sufficient and to exercise the monitor under the model checker.

:class:`SimChannel` is a bounded blocking channel (capacity ≥ 1); it is
the bounded-buffer of the course's classic problem set.  Capacity 0
would require rendezvous; :class:`SimRendezvous` provides that
separately with an explicit two-phase handshake.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Iterator

from .effects import Acquire, Effect, Notify, Release, Wait
from .monitor import SimMonitor

__all__ = ["SimChannel", "SimRendezvous", "ChannelClosed"]


class ChannelClosed(Exception):
    """Receive on a closed, drained channel (or send on a closed one)."""


class SimChannel:
    """Bounded blocking FIFO channel for simulated tasks.

    All methods returning generators must be driven with ``yield from``::

        yield from chan.put_gen(item)
        item = yield from chan.get_gen()
    """

    _counter = 0

    def __init__(self, capacity: int = 1, name: str = ""):
        if capacity < 1:
            raise ValueError("capacity must be >= 1 (use SimRendezvous for 0)")
        SimChannel._counter += 1
        self.name = name or f"chan-{SimChannel._counter}"
        self.capacity = capacity
        self.monitor = SimMonitor(f"{self.name}.mon")
        self.buffer: deque[Any] = deque()
        self.closed = False

    # ------------------------------------------------------------------
    def put_gen(self, item: Any) -> Iterator[Effect]:
        """Block while full; deposit; wake everyone (Mesa broadcast)."""
        yield Acquire(self.monitor)
        try:
            while len(self.buffer) >= self.capacity and not self.closed:
                yield Wait(self.monitor)
            if self.closed:
                raise ChannelClosed(f"put on closed {self.name}")
            self.buffer.append(item)
            yield Notify(self.monitor, all=True)
        finally:
            yield Release(self.monitor)

    def get_gen(self) -> Iterator[Effect]:
        """Block while empty; remove; wake everyone.  Returns the item."""
        yield Acquire(self.monitor)
        try:
            while not self.buffer and not self.closed:
                yield Wait(self.monitor)
            if not self.buffer:
                raise ChannelClosed(f"get on closed drained {self.name}")
            item = self.buffer.popleft()
            yield Notify(self.monitor, all=True)
            return item
        finally:
            yield Release(self.monitor)

    def close_gen(self) -> Iterator[Effect]:
        """Close and wake all blocked parties so they can observe it."""
        yield Acquire(self.monitor)
        try:
            self.closed = True
            yield Notify(self.monitor, all=True)
        finally:
            yield Release(self.monitor)

    # -- inspection -----------------------------------------------------------
    def __len__(self) -> int:
        return len(self.buffer)

    def __repr__(self) -> str:
        return (f"<SimChannel {self.name} {len(self.buffer)}/{self.capacity}"
                f"{' closed' if self.closed else ''}>")


class SimRendezvous:
    """Unbuffered synchronous exchange point (CSP ``!``/``?``).

    A sender blocks until a receiver takes its item and vice versa; the
    hand-off is a happens-before edge in both directions (through the
    shared monitor).
    """

    _counter = 0
    _EMPTY = object()

    def __init__(self, name: str = ""):
        SimRendezvous._counter += 1
        self.name = name or f"rdv-{SimRendezvous._counter}"
        self.monitor = SimMonitor(f"{self.name}.mon")
        self._slot: Any = self._EMPTY
        self._taken = False

    def send_gen(self, item: Any) -> Iterator[Effect]:
        yield Acquire(self.monitor)
        try:
            # wait for the slot (one pending exchange at a time)
            while self._slot is not self._EMPTY:
                yield Wait(self.monitor)
            self._slot = item
            self._taken = False
            yield Notify(self.monitor, all=True)
            # wait until some receiver took this item
            while not self._taken:
                yield Wait(self.monitor)
            self._slot = self._EMPTY
            self._taken = False
            yield Notify(self.monitor, all=True)
        finally:
            yield Release(self.monitor)

    def recv_gen(self) -> Iterator[Effect]:
        yield Acquire(self.monitor)
        try:
            while self._slot is self._EMPTY or self._taken:
                yield Wait(self.monitor)
            item = self._slot
            self._taken = True
            yield Notify(self.monitor, all=True)
            return item
        finally:
            yield Release(self.monitor)

    def __repr__(self) -> str:
        state = "empty" if self._slot is self._EMPTY else "offering"
        return f"<SimRendezvous {self.name} {state}>"
