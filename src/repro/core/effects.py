"""Effect vocabulary — the yield protocol between tasks and the scheduler.

A simulated task is a generator function.  Whenever it needs to interact
with the concurrent world it ``yield``s an :class:`Effect`; the scheduler
interprets the effect and later resumes the generator (possibly with a
value, e.g. the received message).  Code between two yields executes
atomically — exactly the atomicity model of the paper's pseudocode, where
"simple statements are executed atomically" and every statement boundary
is a potential interleaving point.

The effects double as the instruction set of the model checker in
:mod:`repro.verify`: every scheduling decision happens at an effect, so a
recorded sequence of decisions replays an execution exactly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Any, Callable, Optional, Sequence

__all__ = [
    "EMPTY_FOOTPRINT",
    "Effect",
    "Pause",
    "Access",
    "AccessKind",
    "Acquire",
    "Release",
    "Wait",
    "Notify",
    "Send",
    "Receive",
    "Spawn",
    "Join",
    "Choice",
    "Emit",
    "Sleep",
]


#: an empty access footprint, shared by all pure effects
EMPTY_FOOTPRINT: frozenset = frozenset()


class Effect:
    """Base class for everything a task may yield to the scheduler.

    Every effect declares an *access footprint*: the set of
    ``(domain, key, mode)`` tokens naming the kernel-visible resources
    the effect touches (``mode`` is ``"r"`` or ``"w"``).  Two effects
    are *independent* when no token of one conflicts with a token of
    the other (same resource, at least one write) — the relation the
    partial-order reduction in :mod:`repro.verify.explorer` prunes by.
    Pure effects (:class:`Pause`, :class:`Choice`, :class:`Join`
    resolution) have an empty footprint and commute with everything.
    """

    __slots__ = ()

    def footprint(self) -> frozenset:
        """``(domain, key, mode)`` access tokens of this effect."""
        return EMPTY_FOOTPRINT


@dataclass(frozen=True)
class Pause(Effect):
    """A pure preemption point: "other tasks may run here".

    ``label`` is carried into the trace for debugging and for the
    pseudocode interpreter's statement-level annotations.
    """

    label: str = ""


class AccessKind(Enum):
    READ = "read"
    WRITE = "write"


@dataclass(frozen=True)
class Access(Effect):
    """A preemption point annotated with a shared-memory access.

    The kernel treats it like :class:`Pause`; the happens-before race
    detector (:mod:`repro.verify.race`) uses the ``var``/``kind``
    annotations to flag unsynchronized conflicting accesses.
    """

    var: str
    kind: AccessKind = AccessKind.READ
    label: str = ""

    def footprint(self) -> frozenset:
        return frozenset({("var", self.var,
                           "w" if self.kind is AccessKind.WRITE else "r")})


@dataclass(frozen=True)
class Acquire(Effect):
    """Block until ``lock`` can be taken, then take it atomically.

    ``lock`` is any object registered with the scheduler's lock table —
    in practice a :class:`repro.core.primitives.SimLock` or a
    :class:`repro.core.monitor.SimMonitor`.
    """

    lock: Any

    def footprint(self) -> frozenset:
        return frozenset({("lock", id(self.lock), "w")})


@dataclass(frozen=True)
class Release(Effect):
    """Release ``lock``; raises IllegalEffectError if not the owner."""

    lock: Any

    def footprint(self) -> frozenset:
        return frozenset({("lock", id(self.lock), "w")})


@dataclass(frozen=True)
class Wait(Effect):
    """Paper's ``WAIT()``: atomically release the monitor and join its
    condition queue; upon notify, re-contend for the monitor."""

    monitor: Any

    def footprint(self) -> frozenset:
        return frozenset({("lock", id(self.monitor), "w")})


@dataclass(frozen=True)
class Notify(Effect):
    """Paper's ``NOTIFY()``: wake waiters of ``monitor``.

    The paper's semantics is broadcast ("all WAIT() functions finish
    their execution"), i.e. ``all=True``; ``all=False`` gives Java's
    single ``notify()`` (FIFO waiter wake — a legal JLS implementation).
    """

    monitor: Any
    all: bool = True

    def footprint(self) -> frozenset:
        return frozenset({("lock", id(self.monitor), "w")})


@dataclass(frozen=True)
class Send(Effect):
    """Asynchronous message send — never blocks (Hewitt/actor semantics,
    and the paper's 'a send statement is asynchronous')."""

    mailbox: Any
    message: Any

    def footprint(self) -> frozenset:
        return frozenset({("mbox", id(self.mailbox), "w")})


@dataclass(frozen=True)
class Receive(Effect):
    """Block until the mailbox can deliver a message this task accepts.

    ``matcher`` optionally restricts which pending messages are
    acceptable (selective receive, as in Scala's ``receive`` blocks).
    Which acceptable message arrives is a scheduler *choice point* under
    the mailbox's delivery policy — this is how "two messages sent
    concurrently can arrive in either order" is modelled.
    """

    mailbox: Any
    matcher: Optional[Callable[[Any], bool]] = None

    def footprint(self) -> frozenset:
        # parking as a receiver only *reads* the mailbox: actual removal
        # happens at the (separate) deliver transition, which writes
        return frozenset({("mbox", id(self.mailbox), "r")})


@dataclass(frozen=True)
class Spawn(Effect):
    """Create a new task from a generator; resumes with the new Task.

    ``daemon`` tasks do not keep the simulation alive: a run ends in
    quiescence (outcome "done") once every non-daemon task has finished
    and nothing is enabled — message-loop actors are daemons.
    """

    gen: Any
    name: str = ""
    daemon: bool = False

    def footprint(self) -> frozenset:
        return frozenset({("tasks", 0, "w")})


@dataclass(frozen=True)
class Join(Effect):
    """Block until ``task`` finishes; resumes with its return value."""

    task: Any

    def footprint(self) -> frozenset:
        return frozenset({("task", getattr(self.task, "tid", id(self.task)), "r")})


@dataclass(frozen=True)
class Choice(Effect):
    """Explicit nondeterministic choice among ``options``.

    The scheduler turns each option into a distinct enabled transition;
    the chosen option is sent back into the generator.  Used to model
    environmental nondeterminism (e.g. which car arrives first) so the
    explorer can enumerate scenarios.
    """

    options: Sequence[Any] = field(default_factory=tuple)


@dataclass(frozen=True)
class Emit(Effect):
    """Append ``value`` to the run's observable output (PRINT/PRINTLN).

    Observable output is what :func:`repro.verify.explorer.explore`
    deduplicates terminal states by.
    """

    value: Any

    def footprint(self) -> frozenset:
        # all emissions append to the one global output stream, so any
        # two Emits conflict: their order is observable
        return frozenset({("out", 0, "w")})


@dataclass(frozen=True)
class Sleep(Effect):
    """Advance this task's readiness by ``ticks`` of simulated time.

    The kernel is untimed by default; Sleep lowers a task's priority for
    ``ticks`` scheduler steps, providing a simple notion of delay for
    workload generators without introducing wall-clock time.
    """

    ticks: int = 1

    def footprint(self) -> frozenset:
        # sleeping couples the task to global step time, which every
        # scheduler step advances — conservatively conflicts with all
        return frozenset({("time", 0, "w")})
