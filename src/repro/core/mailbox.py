"""Mailboxes — asynchronous message passing with pluggable delivery order.

The paper's message-passing pseudocode (Figure 5) specifies: "A send
statement is asynchronous, which means that the order in which messages
are received may differ from the order in which they were sent."  The
Actor-model section adds "two messages sent concurrently can arrive in
either order."

Which reorderings are possible is exactly a *delivery policy*:

* :data:`DeliveryPolicy.ARBITRARY` — any pending message may be the next
  delivered (the paper's stated semantics, and the ground truth for the
  Test-1 message-passing questions);
* :data:`DeliveryPolicy.PER_SENDER_FIFO` — messages from the same sender
  arrive in send order, different senders interleave freely (Erlang/Akka
  guarantee; also the paper's misconception-M5 "scenario 4" ruled out);
* :data:`DeliveryPolicy.FIFO` — global send-order delivery.  This is the
  faulty semantics of misconception M5 ("conflate message sending order
  with receiving order");
* :data:`DeliveryPolicy.CAUSAL` — delivery respects happens-before: a
  message is deliverable only if every causally-preceding pending
  message to the same mailbox has been delivered.

Tasks never call these methods directly; they yield
:class:`~repro.core.effects.Send` / :class:`~repro.core.effects.Receive`
and the scheduler drives the mailbox.  Each deliverable pending message
becomes one enabled transition, so the explorer enumerates all arrival
orders a policy admits.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Optional

from .clock import VectorClock
from .errors import MailboxError

if TYPE_CHECKING:  # pragma: no cover
    from .task import Task

__all__ = ["DeliveryPolicy", "Envelope", "Mailbox"]


class DeliveryPolicy(enum.Enum):
    ARBITRARY = "arbitrary"
    PER_SENDER_FIFO = "per-sender-fifo"
    FIFO = "fifo"
    CAUSAL = "causal"


@dataclass(frozen=True)
class Envelope:
    """A message in flight: payload plus provenance and causal stamp."""

    message: Any
    sender_tid: int
    sender_name: str
    seq: int                      # global deposit order at this mailbox
    vclock: VectorClock = field(default_factory=VectorClock, compare=False)

    def __repr__(self) -> str:
        return f"<Envelope #{self.seq} {self.message!r} from {self.sender_name}>"


class Mailbox:
    """An unbounded multi-producer mailbox owned by (usually) one receiver."""

    _counter = 0
    _seq = itertools.count(1)

    def __init__(self, name: str = "",
                 policy: DeliveryPolicy = DeliveryPolicy.ARBITRARY):
        Mailbox._counter += 1
        self.name = name or f"mailbox-{Mailbox._counter}"
        self.policy = policy
        self.pending: list[Envelope] = []
        self.closed = False
        self.delivered_count = 0
        #: deepest the pending queue has ever been (observability)
        self.high_water = 0
        #: per-sender seq of the last *delivered* message (PER_SENDER_FIFO)
        self._last_delivered_per_sender: dict[int, int] = {}

    # -- scheduler protocol ---------------------------------------------------
    def _deposit(self, message: Any, sender: "Task") -> Envelope:
        if self.closed:
            raise MailboxError(f"send to closed mailbox {self.name}")
        env = Envelope(
            message=message,
            sender_tid=sender.tid,
            sender_name=sender.name,
            seq=next(Mailbox._seq),
            vclock=sender.vclock if sender.vclock is not None else VectorClock(),
        )
        self.pending.append(env)
        if len(self.pending) > self.high_water:
            self.high_water = len(self.pending)
        return env

    def _deliverable(self, matcher: Optional[Callable[[Any], bool]]) -> list[int]:
        """Indices into ``pending`` that may be delivered next.

        The matcher (selective receive) filters acceptable payloads; the
        policy then restricts *which* acceptable message may come first.
        """
        acceptable = [i for i, env in enumerate(self.pending)
                      if matcher is None or matcher(env.message)]
        if not acceptable:
            return []
        if self.policy is DeliveryPolicy.ARBITRARY:
            return acceptable
        if self.policy is DeliveryPolicy.FIFO:
            # strictly oldest-acceptable-first (global send order)
            return acceptable[:1]
        if self.policy is DeliveryPolicy.PER_SENDER_FIFO:
            # oldest acceptable message of each sender
            seen: set[int] = set()
            out = []
            for i in acceptable:
                s = self.pending[i].sender_tid
                if s not in seen:
                    seen.add(s)
                    out.append(i)
            return out
        if self.policy is DeliveryPolicy.CAUSAL:
            out = []
            for i in acceptable:
                vi = self.pending[i].vclock
                # deliverable iff no other pending message happened-before it
                if not any(self.pending[j].vclock < vi
                           for j in range(len(self.pending)) if j != i):
                    out.append(i)
            return out
        raise MailboxError(f"unknown policy {self.policy!r}")  # pragma: no cover

    def _take(self, index: int) -> Envelope:
        env = self.pending.pop(index)
        self.delivered_count += 1
        self._last_delivered_per_sender[env.sender_tid] = env.seq
        return env

    # -- inspection -----------------------------------------------------------
    def __len__(self) -> int:
        return len(self.pending)

    def state_key(self, ltid_of_tid) -> tuple:
        """Hashable kernel-visible state for scheduler fingerprints.

        Uses ``(sender-ltid, repr(message))`` pairs rather than envelope
        identity: envelope ``seq`` numbers come from a process-global
        counter and would never compare equal across replayed runs.
        """
        return ("mbox",
                tuple((ltid_of_tid(env.sender_tid), repr(env.message))
                      for env in self.pending),
                self.delivered_count, self.closed)

    def peek_messages(self) -> list[Any]:
        return [env.message for env in self.pending]

    def close(self) -> None:
        self.closed = True

    def __repr__(self) -> str:
        return (f"<Mailbox {self.name} policy={self.policy.value} "
                f"pending={len(self.pending)}>")
