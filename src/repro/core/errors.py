"""Exception hierarchy for the deterministic simulation kernel.

Every error raised by :mod:`repro.core` derives from :class:`SimulationError`
so callers can catch kernel problems without masking bugs in user task code
(user exceptions propagate as :class:`TaskFailed` with the original attached).
"""

from __future__ import annotations

__all__ = [
    "SimulationError",
    "DeadlockError",
    "IllegalEffectError",
    "MonitorError",
    "MailboxError",
    "ReplayError",
    "BudgetExceeded",
    "TaskFailed",
]


class SimulationError(Exception):
    """Base class for all kernel-level errors."""


class DeadlockError(SimulationError):
    """Raised when no task is runnable but some tasks are not finished.

    Attributes
    ----------
    blocked:
        List of ``(task_name, reason)`` pairs describing who is stuck on
        what — e.g. ``("philosopher-2", "acquire fork-3")``.
    """

    def __init__(self, blocked: list[tuple[str, str]]):
        self.blocked = blocked
        detail = "; ".join(f"{name}: {reason}" for name, reason in blocked)
        super().__init__(f"deadlock among {len(blocked)} task(s): {detail}")


class IllegalEffectError(SimulationError):
    """A task yielded an effect that is invalid in its current state.

    Examples: releasing a lock it does not own, calling WAIT outside the
    monitor, receiving on a mailbox it is not entitled to read.
    """


class MonitorError(IllegalEffectError):
    """Monitor protocol violation (wait/notify without ownership, etc.)."""


class MailboxError(IllegalEffectError):
    """Mailbox protocol violation (bad policy, closed mailbox, ...)."""


class ReplayError(SimulationError):
    """A fixed schedule diverged from the enabled-transition structure.

    This signals a kernel/determinism bug: replaying the same choice
    sequence against the same program must always be possible.
    """


class BudgetExceeded(SimulationError):
    """An exploration or execution budget (steps, runs, depth) ran out."""


class TaskFailed(SimulationError):
    """A task's generator raised; the original exception is ``__cause__``."""

    def __init__(self, task_name: str, original: BaseException):
        self.task_name = task_name
        self.original = original
        super().__init__(f"task {task_name!r} failed: {original!r}")
        self.__cause__ = original
