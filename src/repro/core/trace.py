"""Execution traces: what happened, in which order, stamped with clocks.

Every scheduler run produces a :class:`Trace` — the sequence of executed
transitions plus the effects they performed.  Traces serve four callers:

* deadlock/failure reports (human-readable rendering);
* the explorer (the decision indices replay the run);
* the race detector (per-event vector clocks and access annotations);
* fairness properties (per-task step counts and gaps).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterator, Optional

from .clock import VectorClock
from .effects import AccessKind

__all__ = ["TraceEvent", "Trace"]


@dataclass(frozen=True)
class TraceEvent:
    """One atomic step of one task.

    ``effect_repr`` is a stable string form of the yielded effect (the
    effect objects themselves may hold live references to locks and
    mailboxes; traces must stay inspectable after the run is gone).
    """

    step: int
    task_tid: int
    task_name: str
    kind: str                      # transition kind: run/acquire/deliver/choice
    effect_repr: str
    chosen_index: int
    fanout: int                    # how many transitions were enabled
    vclock: Optional[VectorClock] = None
    access_var: Optional[str] = None
    access_kind: Optional[AccessKind] = None
    payload_repr: Optional[str] = None
    #: spawn-order index of the task — stable across replays of the same
    #: prefix, unlike the process-global ``task_tid`` (reduction bookkeeping)
    task_ltid: int = -1
    #: executed step's access footprint (only when the scheduler runs
    #: with ``record_enabled=True``; see Effect.footprint)
    footprint: Optional[frozenset] = None
    #: per-transition ``(ltid, kind, key)`` summary of the enabled set
    #: this step chose from (only with ``record_enabled=True``)
    enabled: Optional[tuple] = None
    #: name of the sync object the yielded effect involves, if any
    #: (lock/monitor name, send/receive mailbox name)
    obj_name: Optional[str] = None
    #: envelope seq of a message *sent* this step (flow-arrow start);
    #: when set, ``obj_name`` is the destination mailbox
    msg_seq: Optional[int] = None
    #: envelope seq of the message *delivered* by this step (flow-arrow
    #: finish) — distinct from ``msg_seq`` because a deliver step's
    #: resumed segment may itself yield a Send (actor replies)
    recv_seq: Optional[int] = None
    #: mailbox the delivered message came from
    recv_mbox: Optional[str] = None

    def describe(self, show_clock: bool = False) -> str:
        extra = f" [{self.payload_repr}]" if self.payload_repr else ""
        clock = (f"  {self.vclock!r}"
                 if show_clock and self.vclock is not None else "")
        return (
            f"#{self.step:<4} {self.task_name:<18} {self.kind:<8} "
            f"{self.effect_repr}{extra} ({self.chosen_index + 1}/{self.fanout})"
            f"{clock}"
        )


@dataclass
class Trace:
    """A full run: events, observable output, and outcome."""

    events: list[TraceEvent] = field(default_factory=list)
    #: values yielded via Emit, in order — the run's observable output
    output: list[Any] = field(default_factory=list)
    #: "done" | "deadlock" | "failed" | "budget" | "pruned" (cut short by
    #: an exploration step hook — state already expanded elsewhere)
    outcome: str = "done"
    #: deadlock/blocked detail when outcome != "done"
    detail: str = ""

    # ------------------------------------------------------------------
    def schedule(self) -> list[int]:
        """The decision-index sequence; feed to FixedPolicy to replay."""
        return [e.chosen_index for e in self.events]

    def decisions(self) -> list[tuple[int, int]]:
        """(chosen, fanout) pairs — where the explorer can still branch."""
        return [(e.chosen_index, e.fanout) for e in self.events]

    def steps_by_task(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for e in self.events:
            counts[e.task_name] = counts.get(e.task_name, 0) + 1
        return counts

    def events_for(self, task_name: str) -> Iterator[TraceEvent]:
        return (e for e in self.events if e.task_name == task_name)

    def output_str(self) -> str:
        """Observable output joined as text (how pseudocode output prints)."""
        return "".join(str(v) for v in self.output)

    def render(self, last: Optional[int] = None) -> str:
        """Human-readable listing of (the tail of) the trace."""
        evs = self.events if last is None else self.events[-last:]
        lines = [e.describe() for e in evs]
        lines.append(f"outcome: {self.outcome}" + (f" ({self.detail})" if self.detail else ""))
        if self.output:
            lines.append(f"output: {self.output_str()!r}")
        return "\n".join(lines)

    def format(self, limit: Optional[int] = None, *,
               clocks: bool = True) -> str:
        """Full inspectable listing, vector-clock stamps included.

        ``limit=None`` (default) lists *every* event; an integer keeps
        only the last ``limit`` (:meth:`render`'s tail behaviour).  With
        ``clocks`` each line carries the task's vector clock at that
        step, so causal structure is readable straight off the listing.
        """
        if limit is not None and limit < 0:
            raise ValueError(f"limit must be None or >= 0, got {limit}")
        if limit is None:
            evs = self.events
        else:
            evs = self.events[-limit:] if limit else []
        lines = [e.describe(show_clock=clocks) for e in evs]
        if limit is not None and len(self.events) > len(evs):
            lines.insert(0, f"... {len(self.events) - len(evs)} earlier "
                            f"events elided (limit={limit})")
        lines.append(f"outcome: {self.outcome}"
                     + (f" ({self.detail})" if self.detail else ""))
        if self.output:
            lines.append(f"output: {self.output_str()!r}")
        return "\n".join(lines)

    # -- export (repro.obs) --------------------------------------------
    def to_chrome_trace(self, **kwargs) -> dict:
        """Chrome ``trace_event`` JSON-ready dict — one lane per task,
        flow arrows pairing message sends with deliveries.  ``json.dump``
        the result and open it in ``chrome://tracing`` or Perfetto (see
        :func:`repro.obs.chrome_trace` for knobs)."""
        from ..obs.export import chrome_trace
        return chrome_trace(self, **kwargs)

    def to_jsonl(self) -> str:
        """JSONL structured-event stream: one JSON object per step plus
        a trailing summary record (:func:`repro.obs.jsonl_events`)."""
        from ..obs.export import jsonl_events
        return jsonl_events(self)

    def __len__(self) -> int:
        return len(self.events)
