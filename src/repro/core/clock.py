"""Logical time: Lamport clocks and vector clocks.

The paper grounds the Actor model in Lamport's "happened before" relation
(its reference [3]).  We implement both classic constructions:

* :class:`LamportClock` — scalar clocks giving a total order consistent
  with happens-before;
* :class:`VectorClock` — exact happens-before: ``a < b`` iff event ``a``
  causally precedes event ``b``.

The kernel stamps every task step; the race detector and the causal
mailbox policy consume the vector clocks.
"""

from __future__ import annotations

from typing import Iterable, Mapping

__all__ = ["LamportClock", "VectorClock"]


class LamportClock:
    """Scalar logical clock (Lamport 1978).

    ``tick()`` for a local event, ``merge(other)`` on message receipt
    (takes max then ticks).
    """

    __slots__ = ("time",)

    def __init__(self, time: int = 0):
        self.time = time

    def tick(self) -> int:
        self.time += 1
        return self.time

    def merge(self, other_time: int) -> int:
        self.time = max(self.time, other_time) + 1
        return self.time

    def __repr__(self) -> str:
        return f"LamportClock({self.time})"


class VectorClock:
    """Immutable vector clock keyed by process/task id.

    Immutability keeps message stamps stable after send: senders attach
    ``self.vclock`` to the message and later ticks cannot retroactively
    alter it.
    """

    __slots__ = ("_v",)

    def __init__(self, entries: Mapping[int, int] | None = None):
        self._v: dict[int, int] = dict(entries or {})

    # -- construction ---------------------------------------------------
    def tick(self, pid: int) -> "VectorClock":
        """Return a new clock with ``pid``'s component incremented."""
        v = dict(self._v)
        v[pid] = v.get(pid, 0) + 1
        return VectorClock(v)

    def merge(self, other: "VectorClock") -> "VectorClock":
        """Pointwise maximum — the receive rule (without the local tick)."""
        v = dict(self._v)
        for pid, t in other._v.items():
            if t > v.get(pid, 0):
                v[pid] = t
        return VectorClock(v)

    # -- comparison (happens-before) -------------------------------------
    def __le__(self, other: "VectorClock") -> bool:
        return all(t <= other._v.get(pid, 0) for pid, t in self._v.items())

    def __lt__(self, other: "VectorClock") -> bool:
        """True iff self happened-before other (strictly)."""
        return self <= other and self._v != other._v

    def concurrent(self, other: "VectorClock") -> bool:
        """Neither happened before the other — Lamport-concurrent events."""
        return not (self <= other) and not (other <= self)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, VectorClock):
            return NotImplemented
        # missing components are implicit zeros
        keys = set(self._v) | set(other._v)
        return all(self._v.get(k, 0) == other._v.get(k, 0) for k in keys)

    def __hash__(self) -> int:
        return hash(frozenset((k, v) for k, v in self._v.items() if v))

    # -- access ----------------------------------------------------------
    def get(self, pid: int) -> int:
        return self._v.get(pid, 0)

    def components(self) -> Iterable[tuple[int, int]]:
        return sorted(self._v.items())

    def __repr__(self) -> str:
        inner = ", ".join(f"{k}:{v}" for k, v in sorted(self._v.items()))
        return f"VC{{{inner}}}"
