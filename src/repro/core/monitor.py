"""Java-style monitor — the semantics of the paper's ``EXC_ACC`` blocks.

A :class:`SimMonitor` is a reentrant lock plus a condition queue, exactly
the intrinsic-lock + ``wait()``/``notify()``/``notifyAll()`` construct of
Java that the course teaches, and the formal meaning of the pseudocode's
``EXC_ACC`` / ``END_EXC_ACC`` / ``WAIT()`` / ``NOTIFY()`` markers
(paper Figure 4):

* only one task executes inside the monitor at a time;
* ``WAIT()`` atomically releases the monitor and parks the caller; other
  tasks "that read or modify variables inside the block may execute";
* the paper's ``NOTIFY()`` is a broadcast: "once a NOTIFY() function is
  executed, all WAIT() functions finish their execution" — woken tasks
  then *re-contend* for the monitor (Mesa semantics, like Java).

Misconception S7 in the paper conflates method invocation/return with
lock acquire/release; misconception S5 conflates locking with
conditional waiting.  Keeping the entry queue and the condition queue as
two distinct fields here is what lets the misconception engine mutate
one without the other.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Iterator, Optional

from .effects import Acquire, Effect, Notify, Release, Wait
from .primitives import SimLock

if TYPE_CHECKING:  # pragma: no cover
    from .task import Task

__all__ = ["SimMonitor", "synchronized", "wait_while"]


class SimMonitor(SimLock):
    """Reentrant lock + condition queue (Java intrinsic monitor)."""

    def __init__(self, name: str = ""):
        super().__init__(name or f"monitor-{SimLock._counter + 1}", reentrant=True)
        #: tasks parked by WAIT, with the lock depth to restore on re-entry
        self._waiters: list[tuple["Task", int]] = []
        #: lifetime WAIT parks / NOTIFY signals (observability)
        self.wait_count = 0
        self.notify_count = 0

    # -- scheduler protocol ---------------------------------------------------
    def _park_waiter(self, task: "Task") -> None:
        depth = self._strip(task)
        self._waiters.append((task, depth))
        self.wait_count += 1

    def _pop_waiters(self, all_: bool) -> list[tuple["Task", int]]:
        """Remove and return the waiters being woken (FIFO order)."""
        self.notify_count += 1
        if all_:
            woken, self._waiters = self._waiters, []
        else:
            woken, self._waiters = self._waiters[:1], self._waiters[1:]
        return woken

    # -- inspection -----------------------------------------------------------
    def state_key(self, ltid_of_tid) -> tuple:
        return super().state_key(ltid_of_tid) + (
            tuple((ltid_of_tid(t.tid), depth) for t, depth in self._waiters),)

    @property
    def waiter_count(self) -> int:
        return len(self._waiters)

    def waiter_names(self) -> list[str]:
        return [t.name for t, _ in self._waiters]

    def __repr__(self) -> str:
        o = f" held by {self._owner.name}" if self._owner else ""
        w = f" waiters={self.waiter_names()}" if self._waiters else ""
        return f"<SimMonitor {self.name}{o}{w}>"


def synchronized(monitor: SimMonitor, body: Iterator[Effect]) -> Iterator[Effect]:
    """Run ``body`` holding ``monitor`` — an ``EXC_ACC ... END_EXC_ACC`` block.

    Reentrant: nesting ``synchronized`` on the same monitor is fine.
    """
    yield Acquire(monitor)
    try:
        yield from body
    finally:
        yield Release(monitor)


def wait_while(monitor: SimMonitor, predicate: Callable[[], bool],
               notify_after: bool = False) -> Iterator[Effect]:
    """The canonical guarded-wait idiom of paper Figure 4::

        WHILE <predicate> WAIT() ENDWHILE

    Must be yielded-from while holding ``monitor``.  Always re-checks the
    predicate after waking (Mesa monitors allow barging), which is the
    behaviour misconception S6 gets wrong ("conflate wait with continuous
    execution of the enclosing while loop").  With ``notify_after`` a
    broadcast follows, matching the figure's ``changeX`` example.
    """
    while predicate():
        yield Wait(monitor)
    if notify_after:
        yield Notify(monitor, all=True)
