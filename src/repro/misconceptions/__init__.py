"""repro.misconceptions — the paper's misconception engine.

* :mod:`taxonomy` — Table I (the D/T/C/I/U hierarchy);
* :mod:`catalog` — Table III (M1-M6, S1-S8 with paper counts);
* :mod:`semantics` — each semantic misconception as a mutated bridge
  model, with :func:`answer_delta` showing which questions it flips;
* :mod:`student` — simulated students: model checkers with wrong
  models + noise + uncertainty overload.
"""

from .catalog import (CATALOG, MP_IDS, PAPER_COHORT_SIZE, SM_IDS,
                      WITNESS_REFUTATIONS, Misconception, by_id,
                      refuted_by)
from .semantics import answer_delta, mp_flags_for, mutated_lts, sm_flags_for
from .student import SimulatedStudent, StudentAnswer, translate_question
from .taxonomy import LEVELS, Level, level_of

__all__ = [
    "Level", "LEVELS", "level_of",
    "Misconception", "CATALOG", "MP_IDS", "SM_IDS", "by_id",
    "refuted_by", "WITNESS_REFUTATIONS", "PAPER_COHORT_SIZE",
    "sm_flags_for", "mp_flags_for", "mutated_lts", "answer_delta",
    "SimulatedStudent", "StudentAnswer", "translate_question",
]
