"""Misconceptions as executable semantics.

The core modelling claim of this reproduction: a *semantic*
misconception is a student reasoning **correctly inside a wrong model**.
This module builds the wrong models — mutated bridge LTSs — so a
simulated student can be literally "a model checker with a bug", and
so the ablation benchmarks can show exactly which questions each
mutation flips.
"""

from __future__ import annotations

from typing import Iterable

from ..problems.single_lane_bridge import (DEFAULT_CARS, MPFlags, SMFlags,
                                           mp_bridge_lts, sm_bridge_lts)
from ..verify.lts import LTS, answer_question_lts
from ..verify.reachability import ScenarioQuestion
from .catalog import by_id

__all__ = ["sm_flags_for", "mp_flags_for", "mutated_lts", "answer_delta"]


def sm_flags_for(mids: Iterable[str]) -> SMFlags:
    """SMFlags with the semantic misconceptions in ``mids`` switched on."""
    kwargs = {}
    for mid in mids:
        m = by_id(mid)
        if m.section != "sm" or m.kind != "semantic":
            continue
        kwargs[m.flag] = True
    return SMFlags(**kwargs)


def mp_flags_for(mids: Iterable[str]) -> MPFlags:
    """MPFlags with the semantic misconceptions in ``mids`` switched on."""
    kwargs = {}
    for mid in mids:
        m = by_id(mid)
        if m.section != "mp" or m.kind != "semantic":
            continue
        if m.flag == "fifo_delivery":
            kwargs["delivery"] = "fifo"
        else:
            kwargs[m.flag] = True
    return MPFlags(**kwargs)


def mutated_lts(section: str, mids: Iterable[str],
                cars=DEFAULT_CARS) -> LTS:
    """The bridge model as seen by a student holding ``mids``.

    ``section`` is ``"sm"`` or ``"mp"``.  Misconceptions from the other
    section and non-semantic ones are ignored (they act at the
    answering layer, not the model layer).
    """
    if section == "sm":
        return sm_bridge_lts(cars, flags=sm_flags_for(mids))
    if section == "mp":
        return mp_bridge_lts(cars, flags=mp_flags_for(mids))
    raise ValueError(f"section must be 'sm' or 'mp', got {section!r}")


def answer_delta(section: str, mids: Iterable[str],
                 questions: Iterable[ScenarioQuestion],
                 cars=DEFAULT_CARS) -> list[tuple[str, str, str]]:
    """Which questions a misconception set flips, and how.

    Returns ``(qid, correct_verdict, mutated_verdict)`` for every
    question whose answer differs between the correct model and the
    mutated one — the executable form of the paper's "students with
    misconception X answered questions of type Y wrongly".
    """
    correct = mutated_lts(section, ())
    mutated = mutated_lts(section, mids, cars=cars)
    deltas = []
    for q in questions:
        a_true = answer_question_lts(correct, q).verdict
        a_student = answer_question_lts(mutated, q).verdict
        if a_true != a_student:
            deltas.append((q.qid, a_true, a_student))
    return deltas
