"""Table I — the concurrency-misconception hierarchy.

The paper organizes misconceptions into five levels, from surface
reading errors down to state-space management failures:

=====================  =====================================================
Description (D)        misconceptions of the system and/or problem statement
Terminology (T)        misinterpretation of a term describing behaviour
Concurrency (C)        misconceptions about thread/process behaviours
Implementation (I)     misconceptions about sync (I1) / async (I2) mechanisms
Uncertainty (U)        confusion about the space of executions
=====================  =====================================================
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

__all__ = ["Level", "LEVELS", "level_of"]


class Level(enum.Enum):
    """The five levels of Table I, keyed by their paper codes."""

    D1 = ("Description", "Misconceptions of the system and/or problem "
                         "descriptions")
    T1 = ("Terminology", "Misinterpretation of a term that describes thread "
                         "or process behavior")
    C1 = ("Concurrency", "Misconceptions about thread or process behaviors")
    I1 = ("Implementation", "Misconceptions about synchronous mechanisms")
    I2 = ("Implementation", "Misconceptions about asynchronous mechanisms")
    U1 = ("Uncertainty", "Confusion about space of executions; include "
                         "impossible execution sequences or fail to consider "
                         "possible execution sequences")

    @property
    def category(self) -> str:
        return self.value[0]

    @property
    def description(self) -> str:
        return self.value[1]


@dataclass(frozen=True)
class _LevelRow:
    code: str
    category: str
    description: str


#: Table I, row by row, in paper order
LEVELS: tuple[_LevelRow, ...] = tuple(
    _LevelRow(level.name, level.category, level.description)
    for level in (Level.D1, Level.T1, Level.C1, Level.I1, Level.I2, Level.U1))


def level_of(code: str) -> Level:
    """Look up a level by its paper code ('D1', 'T1', ...)."""
    try:
        return Level[code]
    except KeyError:
        raise KeyError(f"unknown misconception level {code!r}; "
                       f"expected one of {[lv.name for lv in Level]}") from None
