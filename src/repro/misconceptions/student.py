"""Simulated students: model checkers with systematically wrong models.

A :class:`SimulatedStudent` answers Test-1 items by model-checking the
question against *their* bridge semantics:

1. **semantic misconceptions** mutate the model (via
   :mod:`repro.misconceptions.semantics`) and the student additionally
   *translates the question's vocabulary into their world* — a student
   who believes sends are synchronous reads "the bridge handled the
   message" as "the send happened" (M3), one who believes acks are
   instantaneous reads "received succeedEnter" as "the bridge processed
   the enter" (M4);
2. **noise misconceptions** corrupt answers to questions of the
   categories they affect, with the catalog's flip bias;
3. **uncertainty (U1)** caps the execution-space size a student can
   manage: past the capacity, the paper observes students "fall back
   into one of the lower level misconceptions" — modelled as a biased
   guess that over-rejects (impossible-looking scenarios get NO).

Answers come back with *evidence tags*: which misconceptions actually
influenced each answer.  The grader uses tags the way the paper's
authors used written explanations.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional

if TYPE_CHECKING:  # pragma: no cover - circular at runtime, fine for types
    from ..study.questions import QuestionItem

from ..verify.lts import answer_question_lts
from ..verify.reachability import ScenarioQuestion
from .catalog import by_id
from .semantics import mutated_lts

__all__ = ["StudentAnswer", "SimulatedStudent", "translate_question"]

_CAR_COLOR = {"redCarA": "red", "redCarB": "red", "blueCarA": "blue"}


def _translate_pattern(pattern, mids: set[str]):
    """Map one event pattern into the student's vocabulary."""
    if not isinstance(pattern, tuple):
        return pattern
    # M3: "bridge handled car's msg" ≡ "car sent msg"
    if "M3" in mids and len(pattern) == 4 and pattern[0] == "bridge" \
            and pattern[1] == "handle":
        _, _, car, msg = pattern
        return (car, "send", msg)
    # M4: "car received ack" ≡ "bridge processed the matching request"
    if "M4" in mids and len(pattern) == 3 and pattern[1] == "recv":
        car = pattern[0]
        color = _CAR_COLOR.get(car)
        ack = pattern[2]
        if color is not None:
            if ack == "succeedEnter":
                return ("bridge", "handle", car, f"{color}Enter")
            # any exit ack (literal tuple or predicate): the exit event
            return ("bridge", "handle", car, f"{color}Exit")
    return pattern


def translate_question(question: ScenarioQuestion,
                       mids: set[str]) -> ScenarioQuestion:
    """The question as the student reads it, given their misconceptions."""
    if not ({"M3", "M4"} & mids):
        return question

    def tr(patterns):
        return tuple(_translate_pattern(p, mids) for p in patterns)

    return ScenarioQuestion(
        qid=question.qid, text=question.text,
        history=tr(question.history), scenario=tr(question.scenario),
        forbidden=tr(question.forbidden),
        forbidden_anywhere=tr(question.forbidden_anywhere),
        expected=question.expected)


@dataclass
class StudentAnswer:
    """One answered item with provenance."""

    qid: str
    verdict: str                        # "YES" | "NO"
    correct: bool
    #: misconception ids whose influence is visible in this answer
    tags: set[str] = field(default_factory=set)
    overloaded: bool = False


@dataclass
class SimulatedStudent:
    """One study participant.

    ``profile`` is the set of misconception ids held; ``skill`` in
    [0, 1] scales residual careless-error probability; ``capacity`` is
    the U1 execution-space threshold (product states of the correct
    exploration); ``seed`` makes the student deterministic.
    """

    name: str
    profile: frozenset[str]
    skill: float = 0.9
    capacity: int = 900
    seed: int = 0

    def __post_init__(self) -> None:
        self._rng = random.Random(f"{self.seed}:{self.name}")

    # ------------------------------------------------------------------
    def answer(self, item: "QuestionItem", practice: float = 0.0
               ) -> StudentAnswer:
        """Answer one ground-truthed item.

        ``practice`` in [0, 1] attenuates noise and overload — the
        second-session learning effect the paper measured (79.2% vs
        60.7%, p = 0.005).
        """
        assert item.answer is not None, "item must be ground-truthed"
        mids = {m for m in self.profile
                if by_id(m).section == item.section}
        tags: set[str] = set()

        # 1. semantic layer: model-check in the student's world
        semantic = {m for m in mids if by_id(m).kind == "semantic"}
        model = mutated_lts(item.section, semantic)
        question = translate_question(item.question, semantic)
        verdict = answer_question_lts(model, question).verdict
        if verdict != item.answer:
            # practice partially repairs the model: the paper attributes
            # the session-2 gain to "learning that occurred during the
            # exam and/or additional studying between sessions"
            if practice > 0 and self._rng.random() < 0.55 * practice:
                verdict = item.answer
            else:
                tags |= {m for m in semantic}

        # 2. uncertainty layer: execution-space overload
        overloaded = False
        uncertain = {m for m in mids if by_id(m).kind == "uncertainty"}
        effective_capacity = self.capacity * (1.0 + 2.0 * practice)
        if uncertain and item.size > effective_capacity:
            overloaded = True
            if self._rng.random() > 0.35:
                # overload bias: big scenario spaces read as "impossible"
                verdict = "NO" if self._rng.random() < 0.7 else "YES"
                tags |= uncertain

        # 3. noise layer: reading/terminology slips on affected categories
        for mid in mids:
            m = by_id(mid)
            if m.kind != "noise" or item.category not in m.affects:
                continue
            if self._rng.random() < m.flip_bias * (1.0 - 0.6 * practice):
                verdict = "NO" if verdict == "YES" else "YES"
                tags.add(mid)

        # 4. residual carelessness
        careless = (1.0 - self.skill) * (1.0 - 0.5 * practice)
        if self._rng.random() < careless:
            verdict = "NO" if verdict == "YES" else "YES"

        return StudentAnswer(qid=item.qid, verdict=verdict,
                             correct=(verdict == item.answer), tags=tags,
                             overloaded=overloaded)

    def answer_section(self, items: list["QuestionItem"],
                       practice: float = 0.0) -> list[StudentAnswer]:
        return [self.answer(item, practice=practice) for item in items]

    def exhibited(self, answers: list[StudentAnswer]) -> set[str]:
        """Misconceptions visible in a set of answers (the grader's view)."""
        out: set[str] = set()
        for answer in answers:
            out |= answer.tags
        return out
