"""Table III — the catalogued misconceptions, with their paper counts
and the way each one is modelled in this reproduction.

Three model kinds:

``semantic``
    The misconception is a coherent-but-wrong *semantics*: the student
    reasons correctly inside a mutated model of the world.  These map
    to flags on the bridge LTS builders
    (:class:`repro.problems.single_lane_bridge.SMFlags` /
    :class:`MPFlags`) — e.g. M5's world delivers messages in global
    send order, S7's world holds the lock from call to return.

``noise``
    Reading/terminology slips (D and T level, plus S1/S4-style
    conflations we do not model structurally): the student sometimes
    mis-answers questions of the affected category.

``uncertainty``
    U1/M6: the student's reasoning degrades when the execution space
    exceeds their working capacity — modelled as a question-size
    threshold with fallback behaviour, matching the paper's observation
    that students "fall back into one of the lower level
    misconceptions" past 3-4 possibilities.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional

__all__ = ["Misconception", "CATALOG", "MP_IDS", "SM_IDS", "by_id",
           "refuted_by", "WITNESS_REFUTATIONS", "PAPER_COHORT_SIZE"]

#: students who completed Test 1 (9 in group S + 7 in group D)
PAPER_COHORT_SIZE = 16


@dataclass(frozen=True)
class Misconception:
    """One Table-III row.

    ``paper_count`` is the number of students who displayed it;
    ``affects`` names the question categories a noise model corrupts;
    ``flag`` is the LTS-builder flag a semantic model sets.
    """

    mid: str                 # e.g. "M5", "S7"
    level: str               # Table-I code: D1/T1/C1/I1/I2/U1
    section: str             # "mp" | "sm"
    description: str
    paper_count: int
    kind: str                # "semantic" | "noise" | "uncertainty"
    flag: Optional[str] = None
    affects: tuple[str, ...] = ()
    flip_bias: float = 0.85  # how often a noise model corrupts an
    #                          affected question (high: misconceptions are
    #                          systematic, not random slips)

    @property
    def prevalence(self) -> float:
        return self.paper_count / PAPER_COHORT_SIZE


CATALOG: tuple[Misconception, ...] = (
    # ---- message passing (Table III top half) ---------------------------
    Misconception(
        "M1", "D1", "mp",
        "Question setting misunderstood",
        paper_count=6, kind="noise", affects=("setting",), flip_bias=0.35),
    Misconception(
        "M2", "T1", "mp",
        'Misinterpret "race condition" as "different order of messages"',
        paper_count=1, kind="noise", affects=("order",), flip_bias=0.6),
    Misconception(
        "M3", "C1", "mp",
        "Send semantics: ability to send depends on condition at receiver, "
        "or send treated as a synchronous method call",
        paper_count=7, kind="semantic", flag="send_synchronous",
        affects=("send",)),
    Misconception(
        "M4", "C1", "mp",
        "Receive semantics: acknowledgement receipt assumed synchronous "
        "with the occurrence of the event (bridge entered or exited)",
        paper_count=7, kind="semantic", flag="ack_synchronous",
        affects=("ack",)),
    Misconception(
        "M5", "I2", "mp",
        "Conflate message sending order with receiving order",
        paper_count=6, kind="semantic", flag="fifo_delivery",
        affects=("order",)),
    Misconception(
        "M6", "U1", "mp",
        "Uncertainty: increased state space causes illogical reasoning",
        paper_count=7, kind="uncertainty"),
    # ---- shared memory (Table III bottom half) ---------------------------
    Misconception(
        "S1", "D1", "sm",
        "Conflate order of cars with their thread's name",
        paper_count=3, kind="noise", affects=("setting",), flip_bias=0.5),
    Misconception(
        "S2", "T1", "sm",
        'Misinterpret "race condition" as "different interleaving"',
        paper_count=1, kind="noise", affects=("return-order",),
        flip_bias=0.6),
    Misconception(
        "S3", "T1", "sm",
        'Misinterpretation of the terminology "block on"',
        paper_count=2, kind="noise", affects=("blocking",)),
    Misconception(
        "S4", "C1", "sm",
        "Conflate order of method return with order of entering/exiting "
        "the bridge",
        paper_count=4, kind="noise", affects=("return-order",)),
    Misconception(
        "S5", "C1", "sm",
        "Conflate locking with conditional waiting",
        paper_count=9, kind="semantic", flag="acquire_requires_condition",
        affects=("lock-vs-wait",)),
    Misconception(
        "S6", "I1", "sm",
        "Misinterpretation of WAIT()'s effect; conflate wait with continuous "
        "execution of the enclosing while loop",
        paper_count=1, kind="semantic", flag="wait_blocks_monitor",
        affects=("wait",)),
    Misconception(
        "S7", "I1", "sm",
        "Conflate order of method invocation/return with get/release lock",
        paper_count=10, kind="semantic", flag="lock_span_method",
        affects=("lock-span",)),
    Misconception(
        "S8", "U1", "sm",
        "Uncertainty: increased state space causes illogical reasoning",
        paper_count=2, kind="uncertainty"),
)

MP_IDS: tuple[str, ...] = tuple(m.mid for m in CATALOG if m.section == "mp")
SM_IDS: tuple[str, ...] = tuple(m.mid for m in CATALOG if m.section == "sm")

_BY_ID = {m.mid: m for m in CATALOG}


def by_id(mid: str) -> Misconception:
    try:
        return _BY_ID[mid]
    except KeyError:
        raise KeyError(f"unknown misconception {mid!r}; known: "
                       f"{sorted(_BY_ID)}") from None


#: monitor-bus witness hazard kind → misconceptions it refutes.  A
#: witness is an *observed execution fact* incompatible with the
#: misconception's mutated semantics: e.g. any out-of-send-order
#: delivery refutes M5's FIFO world for the run at hand.  The shipped
#: detectors stamp these ids on their info hazards
#: (:class:`repro.obs.Hazard` ``.refutes``); this table is the inverse
#: lookup, kept here so the catalog stays the single source of truth.
WITNESS_REFUTATIONS: dict[str, tuple[str, ...]] = {
    "message-reorder": ("M5",),
    "witness-async-send": ("M3",),
    "witness-wait-releases": ("S6",),
}


def refuted_by(hazard_kind: str) -> tuple[Misconception, ...]:
    """Misconceptions a witness hazard of ``hazard_kind`` refutes
    (empty for non-witness kinds)."""
    return tuple(by_id(mid)
                 for mid in WITNESS_REFUTATIONS.get(hazard_kind, ()))
