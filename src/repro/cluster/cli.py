"""``repro cluster`` verbs — serve, spawn, tell, status, bench.

The serve verb turns the current process into one long-running cluster
node; every other verb is an *ephemeral client*: a listen-less node
that dials the target, does one thing, and exits.  That asymmetry is
deliberate — the HELLO handshake names connections in both directions,
so a client needs no port of its own.
"""

from __future__ import annotations

import argparse
import json
import signal
import sys
import time
import uuid
from typing import Any

__all__ = ["add_cluster_commands"]


def _address(spec: str) -> tuple[str, int]:
    host, _, port = spec.rpartition(":")
    if not host or not port.isdigit():
        raise argparse.ArgumentTypeError(
            f"expected host:port, got {spec!r}")
    return host, int(port)


def _client(args: argparse.Namespace) -> "Any":
    """An ephemeral (listen-less) node dialed into ``args.connect``.

    Each invocation gets a fresh node name by default: the server keys
    dedup watermarks and retry outboxes by peer name, so a second
    short-lived client reusing yesterday's name would have its frames
    silently deduplicated (acked but never delivered) and could receive
    stale retried replies addressed to its predecessor.
    """
    from .message import serializer
    from .node import ClusterNode
    from .transport import SocketTransport
    name = args.client_name or f"client-{uuid.uuid4().hex[:8]}"
    node = ClusterNode(
        name,
        SocketTransport(name, listen=False),
        serializer=serializer(args.serializer))
    node.connect(args.peer, args.connect)
    return node


def _cmd_serve(args: argparse.Namespace) -> int:
    from ..obs.profile import Profiler
    from . import bench as _bench  # noqa: F401 - registers bench actor types
    from .message import serializer
    from .node import ClusterNode
    from .transport import SocketTransport

    transport = SocketTransport(args.name, host=args.host, port=args.port)
    node = ClusterNode(args.name, transport,
                       serializer=serializer(args.serializer),
                       workers=args.workers, profiler=Profiler(),
                       trace=args.trace)
    if args.telemetry:
        from ..obs.telemetry import TelemetryAgent
        node.attach_telemetry(TelemetryAgent(
            postmortem_dir=args.postmortem_dir))
    if args.announce:
        # parseable one-liner for scripts (the bench reads exactly this)
        print(f"PORT {transport.port}", flush=True)
    print(f"node {args.name!r} serving on {args.host}:{transport.port} "
          f"({args.serializer} wire format)", file=sys.stderr)

    stop = {"flag": False}

    def _stop(signum, frame):  # noqa: ARG001
        stop["flag"] = True

    signal.signal(signal.SIGTERM, _stop)
    try:
        while not stop["flag"]:
            time.sleep(0.2)
    except KeyboardInterrupt:
        pass
    finally:
        # close() dumps a final "node-stop" postmortem bundle (with
        # --telemetry) before the transport goes away — the graceful
        # counterpart of the crash-triggered dumps
        node.close()
        if node.telemetry is not None and node.telemetry.postmortems:
            last = node.telemetry.postmortems[-1]
            if last.get("kind") == "node-stop":
                where = last.get("path", "(in memory)")
                print(f"node {args.name!r} stopped — final postmortem "
                      f"bundle: {where}", file=sys.stderr)
    return 0


def _cmd_spawn(args: argparse.Namespace) -> int:
    node = _client(args)
    try:
        ref = node.spawn_remote(args.peer, args.type, args.actor_name,
                                timeout=args.timeout)
        print(ref.path)
        return 0
    except (RuntimeError, TimeoutError) as exc:
        print(f"cluster spawn: {exc}", file=sys.stderr)
        return 1
    finally:
        node.close()


def _cmd_tell(args: argparse.Namespace) -> int:
    from .message import split_path
    node = _client(args)
    try:
        split_path(args.path)  # validate early, before any bytes move
        message = json.loads(args.message)
        node.ref(args.path).tell(message)
        # reliable delivery means acked-or-retried: give the ack a beat
        deadline = time.monotonic() + args.timeout
        while time.monotonic() < deadline:
            if not node.status()["unacked"]:
                return 0
            time.sleep(0.02)
        print(f"cluster tell: no ack from {args.peer!r} within "
              f"{args.timeout}s (message may still be retried)",
              file=sys.stderr)
        return 1
    except (ValueError, KeyError) as exc:
        print(f"cluster tell: {exc}", file=sys.stderr)
        return 1
    finally:
        node.close()


def _cmd_status(args: argparse.Namespace) -> int:
    from .observe import merge_chrome_traces
    node = _client(args)
    try:
        status = node.status_of(args.peer, timeout=args.timeout,
                                profile=args.profile,
                                trace=bool(args.trace_out))
        trace_events = status.pop("trace", None)
        status.pop("re", None)
        print(json.dumps(status, indent=2, sort_keys=True))
        if args.trace_out:
            merged = merge_chrome_traces({args.peer: trace_events or []})
            with open(args.trace_out, "w") as fh:
                json.dump(merged, fh, sort_keys=True)
            print(f"wrote {args.trace_out} "
                  f"({len(trace_events or [])} events)", file=sys.stderr)
        return 0
    except TimeoutError as exc:
        print(f"cluster status: {exc}", file=sys.stderr)
        return 1
    finally:
        node.close()


def _cmd_cluster_bench(args: argparse.Namespace) -> int:
    from ..bench import DEFAULT, QUICK, Workload
    from .bench import run_cluster_bench

    workload = QUICK if args.quick else DEFAULT
    overrides = {k: getattr(args, k) for k in
                 ("workers", "ops", "warmup", "repetitions")
                 if getattr(args, k) is not None}
    if overrides:
        workload = Workload(**{
            "workers": workload.workers, "ops": workload.ops,
            "warmup": workload.warmup,
            "repetitions": workload.repetitions, **overrides})
    problems = args.problems.split(",") if args.problems else None

    def progress(msg: str) -> None:
        print(f"cluster bench: {msg}", file=sys.stderr)

    try:
        result = run_cluster_bench(problems=problems, workload=workload,
                                   progress=progress)
    except KeyError as exc:
        print(f"cluster bench: {exc.args[0]}", file=sys.stderr)
        return 2
    if args.json:
        print(json.dumps(result.as_dict(), sort_keys=True))
    else:
        print(result.markdown())
    return 0


def add_cluster_commands(sub: Any) -> None:
    """Install the ``cluster`` subcommand tree on the main CLI."""
    p = sub.add_parser(
        "cluster", help="distributed actor runtime: serve a node, spawn "
                        "and message remote actors, bench across "
                        "processes")
    csub = p.add_subparsers(dest="cluster_command", required=True)

    def client_flags(cp: argparse.ArgumentParser) -> None:
        cp.add_argument("--connect", type=_address, required=True,
                        metavar="HOST:PORT",
                        help="address of a serving node")
        cp.add_argument("--peer", default="worker",
                        help="node name of the serving node "
                             "(default: worker)")
        cp.add_argument("--client-name", default=None,
                        help="this ephemeral client's node name "
                             "(default: a fresh unique name — reusing a "
                             "name would inherit the server's dedup/"
                             "retry state for it)")
        cp.add_argument("--serializer", choices=("json", "pickle"),
                        default="json",
                        help="wire format (must match the server)")
        cp.add_argument("--timeout", type=float, default=5.0)

    p_serve = csub.add_parser("serve", help="run one cluster node until "
                                            "SIGTERM/Ctrl-C")
    p_serve.add_argument("--name", default="worker",
                         help="this node's cluster name")
    p_serve.add_argument("--host", default="127.0.0.1")
    p_serve.add_argument("--port", type=int, default=0,
                         help="listen port (0 = ephemeral)")
    p_serve.add_argument("--serializer", choices=("json", "pickle"),
                         default="json")
    p_serve.add_argument("--workers", type=int, default=4,
                         help="dispatcher threads of the hosted "
                              "ActorSystem")
    p_serve.add_argument("--announce", action="store_true",
                         help="print 'PORT <n>' on stdout once bound")
    p_serve.add_argument("--trace", action="store_true",
                         help="record cluster trace events (served via "
                              "the status verb)")
    p_serve.add_argument("--telemetry", action="store_true",
                         help="attach a TelemetryAgent: stream metric "
                              "frames at heartbeat cadence, evaluate "
                              "SLOs, keep a flight recorder (feeds "
                              "`repro top` and `repro postmortem`)")
    p_serve.add_argument("--postmortem-dir", default=None,
                         help="directory for postmortem bundles dumped "
                              "on actor failure / peer DOWN / SLO burn "
                              "(with --telemetry)")
    p_serve.set_defaults(fn=_cmd_serve)

    p_spawn = csub.add_parser("spawn",
                              help="spawn a registered actor type on a "
                                   "remote node")
    client_flags(p_spawn)
    p_spawn.add_argument("type", help="registered actor type name")
    p_spawn.add_argument("actor_name", help="name for the new actor")
    p_spawn.set_defaults(fn=_cmd_spawn)

    p_tell = csub.add_parser("tell", help="send one JSON message to a "
                                          "remote actor")
    client_flags(p_tell)
    p_tell.add_argument("path", help="target path, e.g. worker/echo-1")
    p_tell.add_argument("message", help="JSON-encoded message payload")
    p_tell.set_defaults(fn=_cmd_tell)

    p_status = csub.add_parser("status", help="fetch a serving node's "
                                              "status (+ profile/trace)")
    client_flags(p_status)
    p_status.add_argument("--profile", action="store_true",
                          help="include the node's profiler snapshot")
    p_status.add_argument("--trace-out", default=None,
                          help="also fetch the node's cluster trace and "
                               "write it as a Chrome trace file")
    p_status.set_defaults(fn=_cmd_status)

    p_bench = csub.add_parser(
        "bench", help="run the cluster bench cells (2 processes); "
                      "`repro bench --cluster` merges them into the "
                      "full matrix")
    p_bench.add_argument("--problems", default=None,
                         help="comma-separated subset (default: "
                              "pingpong,pingpong-local,bridge)")
    p_bench.add_argument("--workers", type=int, default=None)
    p_bench.add_argument("--ops", type=int, default=None)
    p_bench.add_argument("--warmup", type=int, default=None)
    p_bench.add_argument("--repetitions", type=int, default=None)
    p_bench.add_argument("--quick", action="store_true")
    p_bench.add_argument("--json", action="store_true")
    p_bench.set_defaults(fn=_cmd_cluster_bench)
