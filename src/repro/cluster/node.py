"""ClusterNode — one process of the distributed actor runtime.

A node hosts a local :class:`~repro.actors.system.ActorSystem` and joins
it to the cluster through a frame transport
(:mod:`repro.cluster.transport`).  Everything the single-process actor
runtime promises locally, the node extends across the process boundary:

* **location transparency** — :meth:`ClusterNode.ref` hands back a local
  :class:`~repro.actors.ref.ActorRef` or a :class:`RemoteRef` depending
  on the ``node/actor`` path; both answer ``tell``;
* **at-least-once delivery, exactly-once processing** — reliable
  envelopes retry on timeout with exponential backoff
  (:class:`~repro.cluster.delivery.Outbox`), exhaust into the local
  dead-letter log, and are deduplicated at the receiver
  (:class:`~repro.cluster.delivery.DedupTable`) so the *actor* sees each
  message once no matter how often the wire repeated it;
* **bounded remote mailboxes with credit backpressure** — each remote
  target admits at most ``mailbox_bound`` undrained remote messages;
  beyond that, arrivals stage at the receiving node and the *sending*
  thread parks in a :class:`~repro.cluster.delivery.CreditGate` until
  CREDIT envelopes flow back (no drop, no unbounded growth, no OOM);
* **failure detection** — heartbeats mark silent peers SUSPECT then
  DOWN; a DOWN peer's in-flight and future traffic dead-letters, its
  credit gates break (parked senders wake and fail fast), and every
  locally watched actor on it receives a node-down signal;
* **cross-node supervision** — :meth:`watch` registers a supervisor for
  a remote actor and optionally overrides its supervision directive
  (RESUME/RESTART/STOP, per watch); the owner node applies the directive
  on failure and sends a SIGNAL envelope that is delivered to the
  supervisor's mailbox as an :class:`ActorSignal` message.

Timing is driven by :meth:`tick` — a daemon timer thread calls it every
``tick_interval`` by default, and deterministic tests construct the node
with ``timer=False`` and call ``tick(now=...)`` by hand.
"""

from __future__ import annotations

import threading
import time
import zlib
from collections import deque
from dataclasses import dataclass
from typing import Any, Callable, Dict, Optional, Tuple

from ..actors import Actor, ActorRef, ActorSystem, SupervisionDirective
from ..obs.protocol import message_kind
from .delivery import CreditGate, DedupTable, Outbox, RetryPolicy
from .message import (ACK, CREDIT, HEARTBEAT, RELIABLE_KINDS, REPLY, SIGNAL,
                      SKIP, SPAWN, STATUS, TELEMETRY, TELL, WATCH, Envelope,
                      PickleSerializer, Serializer, make_path, split_path)
__all__ = ["ClusterConfig", "ClusterNode", "RemoteRef", "ActorSignal",
           "PeerState", "register_actor_type", "actor_type",
           "actor_type_names"]


# ===========================================================================
# remote spawn registry
# ===========================================================================

#: name -> (actor class, inject_node): the types a node will instantiate
#: on behalf of remote SPAWN requests (never arbitrary classes off the wire)
_ACTOR_TYPES: dict[str, tuple[type, bool]] = {}


def register_actor_type(name: str, cls: type,
                        inject_node: bool = False) -> None:
    """Allow remote nodes to spawn ``cls`` under ``name``.

    ``inject_node=True`` passes the hosting :class:`ClusterNode` as the
    first constructor argument — for actors that need to mint remote
    refs themselves.
    """
    if not issubclass(cls, Actor):
        raise TypeError(f"{cls.__name__} is not an Actor subclass")
    _ACTOR_TYPES[name] = (cls, inject_node)


def actor_type(name: str) -> tuple[type, bool]:
    return _ACTOR_TYPES[name]


def actor_type_names() -> list[str]:
    return sorted(_ACTOR_TYPES)


# ===========================================================================
# config / small records
# ===========================================================================

@dataclass(frozen=True)
class ClusterConfig:
    """Tunables of one node (assumed symmetric across the cluster)."""

    #: max undrained *remote* messages admitted into one actor's mailbox
    mailbox_bound: int = 256
    #: send-side credits per remote target (<= bound keeps staging finite)
    credit_window: int = 256
    #: how long a sender may park on a full target before dead-lettering
    park_timeout: float = 30.0
    #: reliable-delivery retry schedule
    retry_timeout: float = 0.2
    retry_factor: float = 2.0
    max_attempts: int = 5
    #: failure detector
    heartbeat_interval: float = 0.5
    suspect_after: float = 1.5
    down_after: float = 4.0
    #: drop a DOWN peer's per-peer state (outbox, dedup, gates, cached
    #: replies) after it has stayed silent this long past the DOWN mark —
    #: a long-running node must not accumulate state for every one-shot
    #: client that ever talked to it
    evict_after: float = 60.0
    #: timer-thread cadence (retries, acks, credits, heartbeats, pump)
    tick_interval: float = 0.005
    #: flush a cumulative ACK after this many fresh reliable frames
    ack_every: int = 16
    #: max cached request replies (duplicate-request replay window)
    reply_cache_size: int = 256
    #: telemetry-frame cadence; None piggybacks the heartbeat interval
    telemetry_interval: Optional[float] = None
    #: flight-recorder sampling for bulk send/recv/local events when the
    #: recorder is the *only* event sink (rounded down to a power of
    #: two; 1 records everything).  Both ends of a flow sample on the
    #: same wire seq, so sampled send/recv pairs still match up in the
    #: postmortem trace.  Full-fidelity tracing (``trace=True`` or a
    #: monitor bus) always records every event regardless.
    flight_sample: int = 8

    def retry_policy(self) -> RetryPolicy:
        return RetryPolicy(self.retry_timeout, self.retry_factor,
                           self.max_attempts)

    @property
    def credit_flush(self) -> int:
        return max(1, self.credit_window // 4)


class PeerState:
    """Failure-detector view of one peer node."""

    ALIVE = "alive"
    SUSPECT = "suspect"
    DOWN = "down"

    __slots__ = ("name", "state", "last_heard", "last_beat")

    def __init__(self, name: str, now: float):
        self.name = name
        self.state = PeerState.ALIVE
        self.last_heard = now
        self.last_beat = 0.0

    def __repr__(self) -> str:
        return f"<PeerState {self.name}: {self.state}>"


class ActorSignal:
    """Supervision signal delivered to a watching supervisor's mailbox."""

    __slots__ = ("path", "kind", "error", "directive", "detail")

    def __init__(self, path: str, kind: str, error: str = "",
                 directive: Optional[str] = None, detail: str = ""):
        self.path = path
        self.kind = kind                  # "failure" | "node-down"
        self.error = error
        self.directive = directive
        self.detail = detail

    def as_dict(self) -> dict[str, Any]:
        return {"path": self.path, "kind": self.kind, "error": self.error,
                "directive": self.directive, "detail": self.detail}

    @classmethod
    def from_dict(cls, d: dict[str, Any]) -> "ActorSignal":
        return cls(d["path"], d["kind"], d.get("error", ""),
                   d.get("directive"), d.get("detail", ""))

    def __repr__(self) -> str:
        return f"<ActorSignal {self.kind} {self.path} {self.error}>"


class RemoteRef:
    """Location-transparent handle on an actor of another node.

    Quacks like :class:`~repro.actors.ref.ActorRef` for the operations
    that make sense remotely (``tell``, ``name``, equality by identity);
    the node it was minted from does the routing.
    """

    __slots__ = ("node", "path", "node_name", "name", "_local")

    def __init__(self, node: "ClusterNode", path: str):
        self.node = node
        self.path = path
        self.node_name, self.name = split_path(path)
        #: cached local ActorRef when this path points back at the
        #: minting node — the zero-serialization fast path
        self._local: Optional[Any] = None

    def tell(self, message: Any, sender: Optional[Any] = None) -> None:
        """Asynchronous send; may park under backpressure, never drops
        silently (undeliverable messages land in dead letters)."""
        node = self.node
        if self.node_name == node.name:
            # local fast path: no serializer round-trip, no Outbox /
            # DedupTable / CreditGate bookkeeping — straight into the
            # target cell's mailbox.  The cached ref is re-looked-up
            # once its cell stops, so a respawn under the same name is
            # picked up transparently (a stopped cell dead-letters).
            local = self._local
            if local is None or local._cell.stopped:
                local = self._local = node._local_actor(self.name)
            if local is None:
                node._dead_letter(self.path, message, "no local actor")
                return
            local.tell(message, sender=sender)
            node._count_local_fastpath(self.name, message)
            return
        node._send_tell(self.path, message, sender)

    def __lshift__(self, message: Any) -> "RemoteRef":
        self.tell(message)
        return self

    def __eq__(self, other: object) -> bool:
        return isinstance(other, RemoteRef) and other.path == self.path

    def __hash__(self) -> int:
        return hash(("remote", self.path))

    def __repr__(self) -> str:
        return f"<RemoteRef {self.path}>"


class _Waiter:
    """One outstanding request/reply (SPAWN/STATUS) slot."""

    __slots__ = ("event", "value")

    def __init__(self) -> None:
        self.event = threading.Event()
        self.value: Any = None


def _flow_id(origin: str, dest: str, seq: int) -> int:
    """Stable cross-process id pairing a send with its delivery.

    Must hash identically on both sides of the wire, so it cannot use
    the builtin ``hash`` (string hashing is randomized per process via
    PYTHONHASHSEED — sender and receiver would disagree and the merged
    Chrome trace would never pair its flow arrows).
    """
    return zlib.crc32(f"{origin}|{dest}|{seq}".encode()) & 0x7FFFFFFF


# ===========================================================================
# the node
# ===========================================================================

class ClusterNode:
    """One cluster member: ActorSystem + router + reliability + detector.

    ::

        hub = LoopbackHub()
        with ClusterNode("a", hub.join("a")) as a, \\
             ClusterNode("b", hub.join("b")) as b:
            a.connect("b")
            pong = b.spawn(Ponger, name="pong")
            a.ref("b/pong").tell("hello")
    """

    def __init__(self, name: str, transport: Any,
                 serializer: Optional[Serializer] = None,
                 config: Optional[ClusterConfig] = None,
                 system: Optional[ActorSystem] = None,
                 workers: int = 4,
                 profiler: Optional[Any] = None,
                 tracer: Optional[Any] = None,
                 monitors: Optional[Any] = None,
                 trace: bool = False,
                 timer: bool = True,
                 clock: Callable[[], float] = time.monotonic,
                 wall: Optional[Callable[[], float]] = None):
        self.name = name
        self.transport = transport
        self.serializer = serializer if serializer is not None \
            else PickleSerializer()
        self.config = config if config is not None else ClusterConfig()
        self._own_system = system is None
        self.system = system if system is not None \
            else ActorSystem(workers=workers, name=f"{name}.system",
                             profiler=profiler, tracer=tracer)
        self.profiler = profiler
        #: optional :class:`~repro.obs.causal.CausalTracer` — request
        #: contexts ride TELL envelopes as a ``(request_id,
        #: parent_span_id, t_send)`` header, so a causal trace follows a
        #: message across the wire; None keeps every hot path untouched
        self.tracer = tracer
        self.monitors = monitors
        self.clock = clock
        #: wall-time source stamped on events/flight records.  Defaults
        #: to real time; the simulator injects its virtual clock so a
        #: replayed run's trace exports are byte-comparable.
        self.wall = wall if wall is not None else time.time
        #: sleep seam for the timer loop and busy-wait drains — the
        #: simulator never starts those threads, but the seam keeps
        #: every blocking wait injectable alongside ``clock``
        self._sleep: Callable[[float], None] = time.sleep
        self.closed = False

        # local actor registry: actor name -> local ref
        self._actors: dict[str, ActorRef] = {}
        self._actors_lock = threading.Lock()

        # reliability state
        self._seq: dict[str, int] = {}                 # per-dest counters
        self._outboxes: dict[str, Outbox] = {}
        self._dedup: dict[str, DedupTable] = {}
        self._gates: dict[str, CreditGate] = {}        # by target path
        # dest -> highest seq we dead-lettered (retry exhaustion or
        # peer-down drain); advertised as SKIP so the receiver's
        # cumulative ACK does not stall waiting for seqs that will
        # never be sent again
        self._skip: dict[str, int] = {}
        self._state_lock = threading.Lock()

        # receiver-side staging + owed control traffic.  Owed-ack/credit
        # bookkeeping gets its own lock so per-frame counting never
        # contends with senders holding ``_state_lock``.
        self._staged: dict[str, list] = {}             # actor -> [(env)...]
        self._staged_total = 0                         # fast pump() gate
        self._credit_owed: dict[str, dict[str, int]] = {}   # origin->path->n
        self._credit_total: dict[str, int] = {}        # origin -> sum owed
        self._ack_owed: dict[str, int] = {}            # origin -> fresh count
        self._flow_lock = threading.Lock()
        self._reply_cache: dict[tuple[str, int], Envelope] = {}
        self._remote_refs: dict[str, RemoteRef] = {}   # sender-path cache

        # supervision
        self._watchers: dict[str, list[str]] = {}      # local actor -> paths
        self._watching: dict[str, list[ActorRef]] = {} # remote path -> refs
        self.system.failure_listener = self._local_failure

        # failure detector
        self._peers: dict[str, PeerState] = {}
        self._replies: dict[tuple[str, int], _Waiter] = {}

        self._delivered = 0

        # observability
        self.trace_events: list = [] if trace else None
        self._trace_lock = threading.Lock()
        self._step = 0
        #: attached TelemetryAgent (see repro.obs.telemetry), or None
        self.telemetry: Optional[Any] = None
        # single cached flag for the event hot-path gates: True when any
        # sink (trace log, monitor bus, flight recorder) wants events
        self._evt_on = trace or monitors is not None
        # protocol conformance needs message *kinds* on cluster events
        # (send/recv/local), which the default event path never stamps —
        # pay for classification only when a detector asks for it
        self._proto_on = monitors is not None and any(
            getattr(d, "wants_message_kinds", False)
            for d in getattr(monitors, "detectors", ()))
        # conformance fast path: when no trace log consumes the stamped
        # bulk events, protocol observations go straight into the
        # automata via cluster_tap — no ClusterEvent, no bus.feed, no
        # KernelView — and points no spec watches skip classification
        # entirely.  Violations (rare) come back as hazards and are
        # published on the bus, so dedup and on_hazard behave exactly
        # as on the fed path.
        entries, points = [], set()
        fast = self._proto_on and not trace
        if fast:
            for d in monitors.detectors:
                if getattr(d, "wants_message_kinds", False):
                    if getattr(d, "cluster_tap", None) is None:
                        fast = False    # kind-wanting detector without
                        break           # a tap still needs fed events
                    points.update(d.cluster_points())
                    for row in d.cluster_entries():
                        entries.append(row[:-1] + (d, row[-1]))
        self._proto_entries = tuple(entries)
        self._proto_fast = fast and bool(entries)
        self._proto_want_send = "send" in points
        self._proto_want_deliver = "deliver" in points
        self._proto_q: deque = deque()
        self._proto_wake = threading.Event()
        self._proto_stop = False
        self._proto_thread: Optional[threading.Thread] = None
        if self._proto_fast:
            self._proto_thread = threading.Thread(
                target=self._proto_pump, name=f"{name}.conformance",
                daemon=True)
            self._proto_thread.start()
        if monitors is not None and \
                getattr(monitors, "on_hazard", None) is None:
            monitors.on_hazard = self._on_hazard
        # bulk-event sampling mask: seq & mask == 0 records.  0 (record
        # everything) whenever tracing or monitors are attached; set to
        # flight_sample-1 by attach_telemetry when the flight recorder
        # is the only sink.  Rare events (park/stage/suspect/down/
        # failure/...) bypass the mask and are always recorded.
        self._evt_mask = 0
        self._local_n = 0       # racy sample counter for local sends
        # per-(origin, dest) encoded "origin|dest|" prefixes so hot-path
        # flow ids skip the f-string + encode (see _fast_flow)
        self._flow_pre: Dict[Tuple[str, str], bytes] = {}

        self._handlers = {
            TELL: self._handle_tell, ACK: self._handle_ack,
            CREDIT: self._handle_credit, HEARTBEAT: self._handle_heartbeat,
            SPAWN: self._handle_spawn, WATCH: self._handle_watch,
            SIGNAL: self._handle_signal, STATUS: self._handle_status,
            REPLY: self._handle_reply, SKIP: self._handle_skip,
            TELEMETRY: self._handle_telemetry,
        }
        self.transport.start(self._on_frame)
        self._timer: Optional[threading.Thread] = None
        if timer:
            self._timer = threading.Thread(target=self._timer_loop,
                                           name=f"{name}.cluster-timer",
                                           daemon=True)
            self._timer.start()

    # ------------------------------------------------------------------
    # membership
    # ------------------------------------------------------------------
    def connect(self, peer: str, address: Optional[tuple] = None) -> None:
        """Register (and for sockets, dial) a peer node."""
        if address is not None:
            self.transport.connect(peer, address)
        with self._state_lock:
            self._peers.setdefault(peer, PeerState(peer, self.clock()))

    def peers(self) -> dict[str, str]:
        with self._state_lock:
            return {p.name: p.state for p in self._peers.values()}

    def peer_state(self, peer: str) -> Optional[str]:
        with self._state_lock:
            state = self._peers.get(peer)
            return state.state if state is not None else None

    # ------------------------------------------------------------------
    # actors
    # ------------------------------------------------------------------
    def spawn(self, actor_class: type, *args: Any, name: str = "",
              directive: Optional[SupervisionDirective] = None,
              inject_node: bool = False, **kwargs: Any) -> ActorRef:
        """Spawn a local actor and make it addressable cluster-wide."""
        if inject_node:
            args = (self, *args)
        ref = self.system.spawn(actor_class, *args, name=name,
                                directive=directive, **kwargs)
        with self._actors_lock:
            self._actors[ref.name] = ref
        return ref

    def ref(self, path: str) -> Any:
        """Location-transparent lookup: ``node/actor`` -> a tellable ref."""
        node, actor = split_path(path)
        if node == self.name:
            with self._actors_lock:
                local = self._actors.get(actor)
            if local is None:
                raise KeyError(f"no local actor {actor!r} on node "
                               f"{self.name!r}")
            return local
        return RemoteRef(self, path)

    def path_of(self, ref: Any) -> str:
        """Cluster-wide path of a ref minted by this node."""
        if isinstance(ref, RemoteRef):
            return ref.path
        return make_path(self.name, ref.name)

    def actors(self) -> list[str]:
        with self._actors_lock:
            return sorted(self._actors)

    # ------------------------------------------------------------------
    # remote operations
    # ------------------------------------------------------------------
    def spawn_remote(self, dest: str, type_name: str, name: str,
                     args: tuple = (), timeout: float = 5.0) -> RemoteRef:
        """Ask ``dest`` to spawn a registered actor type; returns its ref."""
        payload = {"type": type_name, "name": name, "args": list(args)}
        reply = self._request(dest, SPAWN, payload, timeout)
        if "error" in reply:
            raise RuntimeError(f"remote spawn on {dest!r} failed: "
                               f"{reply['error']}")
        return RemoteRef(self, reply["path"])

    def status_of(self, dest: str, timeout: float = 5.0,
                  profile: bool = False, trace: bool = False,
                  telemetry: bool = False,
                  flight: bool = False) -> dict[str, Any]:
        """Fetch a peer's status.  Opt-in extras: profiler snapshot,
        trace log, aggregated telemetry view, flight-recorder dump."""
        return self._request(dest, STATUS,
                             {"profile": profile, "trace": trace,
                              "telemetry": telemetry, "flight": flight},
                             timeout)

    def watch(self, path: str, supervisor: ActorRef,
              directive: Optional[SupervisionDirective] = None) -> None:
        """Deliver ``path``'s failures to ``supervisor`` as ActorSignals.

        ``directive`` additionally overrides the watched actor's
        supervision directive on its own node — per watch, the
        RESUME/RESTART/STOP decision travels with the registration.
        """
        node, actor = split_path(path)
        with self._state_lock:
            self._watching.setdefault(path, []).append(supervisor)
        if node == self.name:
            with self._actors_lock:
                local = self._actors.get(actor)
            if local is not None and directive is not None:
                self.system.set_directive(local, directive)
            self._watchers.setdefault(actor, []).append(
                make_path(self.name, supervisor.name))
            return
        self._send_reliable(node, WATCH, node, {
            "actor": actor,
            "watcher": make_path(self.name, supervisor.name),
            "directive": directive.value if directive is not None else None,
        })

    def status(self) -> dict[str, Any]:
        """This node's own status record (JSON-able)."""
        with self._state_lock:
            unacked = {d: len(o) for d, o in self._outboxes.items() if o}
            staged = {k: len(v) for k, v in self._staged.items() if v}
        return {
            "node": self.name,
            "actors": self.actors(),
            "peers": self.peers(),
            "unacked": unacked,
            "dead_letters": len(self.system.dead_letters),
            "staged": staged,
        }

    # ------------------------------------------------------------------
    # telemetry plane
    # ------------------------------------------------------------------
    def attach_telemetry(self, agent: Any) -> Any:
        """Wire a :class:`~repro.obs.telemetry.TelemetryAgent` into this
        node: cluster events feed its flight recorder, the timer drives
        its frame cadence, TELEMETRY frames route to it, and incidents
        (actor failure, peer DOWN) trigger its postmortems."""
        agent.node = self
        agent.recorder.node = self.name
        self.telemetry = agent
        self._evt_on = True
        if self.trace_events is None and self.monitors is None:
            # recorder is the only sink: sample the bulk send/recv/local
            # events 1-in-flight_sample — even ~1µs of always-on work
            # per event is a measurable tax on the loopback hot chain
            sample = max(1, self.config.flight_sample)
            self._evt_mask = (1 << (sample.bit_length() - 1)) - 1
        return agent

    def _send_telemetry(self, peer: str, frame: dict) -> None:
        """Ship one frame, fire-and-forget (loss-tolerant by format)."""
        self._send_control(peer, TELEMETRY, peer, frame)
        if self.profiler is not None:
            self.profiler.inc("cluster.telemetry_out")

    def _handle_telemetry(self, env: Envelope) -> None:
        tele = self.telemetry
        if tele is None:
            return
        try:
            tele.on_frame(env.origin, env.payload)
        except Exception:
            if self.profiler is not None:
                self.profiler.inc("cluster.telemetry_errors")

    def _incident(self, kind: str, detail: Optional[dict] = None) -> None:
        """Report an incident to the agent (never into the caller)."""
        tele = self.telemetry
        if tele is None:
            return
        try:
            tele.incident(kind, detail)
        except Exception:
            if self.profiler is not None:
                self.profiler.inc("cluster.telemetry_errors")

    def _on_hazard(self, hz: Any) -> None:
        """MonitorBus ``on_hazard`` hook: an error-severity protocol
        hazard is an incident — dump a postmortem bundle around it."""
        if hz.severity == "error" and hz.kind.startswith("protocol"):
            self._incident(hz.kind, {"subject": hz.subject,
                                     "seq": hz.seq,
                                     "message": hz.message})

    # ------------------------------------------------------------------
    # sending
    # ------------------------------------------------------------------
    def _local_actor(self, actor: str) -> Optional[ActorRef]:
        # plain dict read, no lock: dict.get is atomic under the GIL and
        # the registry only ever grows or replaces whole entries
        return self._actors.get(actor)

    def _proto_pump(self) -> None:
        """Drain queued bulk-message observations into the automata.

        The hot path pays one GIL-atomic ``deque.append`` of a raw
        ``(point, where, payload, origin, dest, wire_seq)`` tuple — the
        flight-recorder trick — and this daemon thread classifies the
        payload and steps the machines off the critical path.  Messages
        stay in node-local order, which is exactly the order the
        synchronous fed path would observe; violations surface within
        the ~20ms idle poll (``drain()`` flushes explicitly).

        The loop body is deliberately flat: on a single-core host every
        microsecond spent here competes with the transport pump for the
        GIL, so classification is one cached dict probe, a conforming
        advance is one more, and everything else lives in locals."""
        q = self._proto_q
        pop = q.popleft
        wake = self._proto_wake
        entries = self._proto_entries
        kind_of = message_kind
        while True:
            try:
                point, where, payload, origin, dest, wire_seq = pop()
            except IndexError:
                if self._proto_stop:
                    return
                wake.wait(0.02)
                wake.clear()
                continue
            try:
                token = kind_of(payload)
                for at, watch, alphabet, strict, advance, mon, i \
                        in entries:
                    # a zero-serialization local delivery is both the
                    # send and the deliver of its message, so "local"
                    # matches either tap point (still once per spec)
                    if at != point and point != "local":
                        continue
                    if watch is not None and where not in watch:
                        continue
                    if token is not None and token in alphabet:
                        if advance(token):
                            continue
                        oob = False
                    elif strict and token is not None:
                        oob = True
                    else:
                        continue
                    self._proto_flag(mon, i, where, token, origin,
                                     dest, wire_seq, oob)
            except Exception:           # a bad payload must never kill
                pass                    # conformance checking

    def _proto_flag(self, mon, i: int, where: str, token: Optional[str],
                    origin: Optional[str], dest: Optional[str],
                    wire_seq: Optional[int], oob: bool) -> None:
        # flow ids (crc32) are dedup keys for hazards seen from both
        # link ends — only violations (rare) pay for one
        seqv = None if wire_seq is None else \
            self._fast_flow(origin, dest, wire_seq)
        hz = mon.cluster_violation(i, where, token, self.name,
                                   self._step, seqv,
                                   outside_alphabet=oob)
        if hz is not None:
            self.monitors.publish(hz)

    def _proto_flush(self, timeout: float = 5.0) -> bool:
        """Wait for the conformance pump to catch up (tests, drain).

        The pump is a real daemon thread, so the bound is wall time —
        a frozen test ``clock`` must not turn this into a busy spin.
        """
        if not self._proto_fast:
            return True
        self._proto_wake.set()
        deadline = time.monotonic() + timeout
        while self._proto_q:
            if time.monotonic() >= deadline:
                return False
            self._sleep(0.001)
        return True

    def _count_local_fastpath(self, actor: str,
                              message: Any = None) -> None:
        if self.profiler is not None:
            self.profiler.inc("cluster.local_fastpath")
        if self._evt_on:
            self._local_n += 1          # racy is fine: it only samples
            if self._proto_fast:
                # conformance must see *every* message, even on the
                # zero-serialization path — no sampling while a
                # protocol monitor is attached (inline append: this is
                # the per-message cost, the pump does the rest)
                self._proto_q.append(("local", actor, message,
                                      None, None, None))
                if self.telemetry is not None \
                        and not (self._local_n & self._evt_mask):
                    self._event("cluster-local", actor, self.name)
            elif self._proto_on:
                self._event("cluster-local", actor, self.name,
                            extra={"msg": message_kind(message)})
            elif not (self._local_n & self._evt_mask):
                self._event("cluster-local", actor, self.name)

    def _send_tell(self, path: str, message: Any, sender: Any) -> None:
        dest, actor = split_path(path)
        if dest == self.name:                  # loop back to ourselves
            local = self._local_actor(actor)
            if local is None:
                # same contract as the remote path: undeliverable mail
                # dead-letters instead of raising into the sender
                self._dead_letter(path, message, "no local actor")
                return
            local.tell(message, sender=sender)
            self._count_local_fastpath(actor, message)
            return
        sender_path = None
        if sender is not None:
            sender_path = self.path_of(sender)
        peer = self._peers.get(dest)   # lock-free state read (hot path)
        if peer is not None and peer.state == PeerState.DOWN:
            self._dead_letter(path, message, "node down")
            return
        gate = self._gate(path)
        trc = self.tracer
        send_ctx = None
        if gate.available <= 0 and gate.broken is None:
            self._event("cluster-park", actor=actor, peer=dest,
                        extra={"path": path})
            if self.profiler is not None:
                self.profiler.inc("cluster.parks")
            w0 = trc.now() if trc is not None else 0.0
            t0 = self.clock()
            if not gate.acquire(timeout=self.config.park_timeout):
                self._dead_letter(path, message,
                                  gate.broken or "backpressure timeout")
                return
            if self.profiler is not None:
                self.profiler.observe_us("cluster.credit_wait_us",
                                         self.clock() - t0)
            if trc is not None:
                ctx = trc.current()
                if ctx is not None:
                    # the parked pause becomes a credit-wait span and
                    # the wire stamp chains under it, so backpressure
                    # shows up on the request's critical path instead
                    # of as an unattributed gap before the network hop
                    send_ctx = trc.chain(ctx, "credit-wait", actor,
                                         w0, trc.now())
        elif not gate.acquire(timeout=self.config.park_timeout):
            self._dead_letter(path, message,
                              gate.broken or "backpressure timeout")
            return
        self._send_reliable(dest, TELL, path, message, sender=sender_path,
                            ctx=send_ctx)

    def _send_reliable(self, dest: str, kind: str, target: str,
                       payload: Any, sender: Optional[str] = None,
                       waiter: Optional[_Waiter] = None,
                       ctx: Any = None) -> int:
        with self._state_lock:
            seq = self._seq.get(dest, 0) + 1
            self._seq[dest] = seq
            outbox = self._outboxes.get(dest)
            if outbox is None:
                outbox = self._outboxes[dest] = \
                    Outbox(self.config.retry_policy())
            self._peers.setdefault(dest, PeerState(dest, self.clock()))
            if waiter is not None:
                # registered before the frame leaves: loopback delivery
                # is synchronous, so the REPLY can arrive mid-send
                self._replies[(dest, seq)] = waiter
        ectx = None
        trc = self.tracer
        if trc is not None and kind == TELL:
            # explicit ctx (a credit-wait chained by _send_tell) wins
            # over the caller's installed context; either way the wire
            # header is the triple the receiver chains its spans under
            c = ctx if ctx is not None else getattr(trc.tls, "ctx", None)
            if c is not None:
                ectx = (c.request_id, c.span_id, trc.clock())
        env = Envelope(kind, seq, self.name, target, payload=payload,
                       sender=sender, ctx=ectx)
        outbox.register(seq, env, self.clock())
        self._transmit(dest, env)
        if kind == TELL:
            if self._evt_on and not (seq & self._evt_mask):
                # target is always "<dest>/<actor>" here, so slice off
                # the node prefix instead of re-splitting the path; no
                # extra dict — nothing downstream reads it on sends
                # (except a request id for the merged Chrome trace's
                # flow arrow, and a message kind when a protocol
                # monitor is watching the conversation)
                if self._proto_fast:
                    if self._proto_want_send:
                        self._proto_q.append(
                            ("send", target[len(dest) + 1:], payload,
                             self.name, dest, seq))
                    if self.telemetry is not None:
                        self._event(
                            "cluster-send", target[len(dest) + 1:],
                            dest, self._fast_flow(self.name, dest, seq),
                            extra=({"request_id": ectx[0]}
                                   if ectx is not None else None))
                else:
                    extra = None
                    if ectx is not None:
                        extra = {"request_id": ectx[0]}
                    if self._proto_on:
                        extra = extra or {}
                        extra["msg"] = message_kind(payload)
                    self._event("cluster-send", target[len(dest) + 1:],
                                dest,
                                self._fast_flow(self.name, dest, seq),
                                extra=extra)
            if self.profiler is not None:
                self.profiler.inc("cluster.sent")
        return seq

    def _send_control(self, dest: str, kind: str, target: str,
                      payload: Any) -> None:
        self._transmit(dest, Envelope(kind, 0, self.name, target,
                                      payload=payload))

    def _transmit(self, dest: str, env: Envelope) -> bool:
        # frames are *unframed* serialized envelopes here — the socket
        # transport length-prefixes on the wire, loopback needs neither
        frame = self.serializer.encode(env)
        if self.profiler is not None:
            self.profiler.inc("cluster.frames_out")
            self.profiler.inc("cluster.bytes_out", len(frame))
        return self.transport.send(dest, frame)

    def _request(self, dest: str, kind: str, payload: Any,
                 timeout: float) -> dict[str, Any]:
        waiter = _Waiter()
        seq = self._send_reliable(dest, kind, dest, payload, waiter=waiter)
        try:
            if not waiter.event.wait(timeout):
                raise TimeoutError(f"no reply from {dest!r} within "
                                   f"{timeout}s (state: "
                                   f"{self.peer_state(dest)})")
            return waiter.value
        finally:
            with self._state_lock:
                self._replies.pop((dest, seq), None)

    # ------------------------------------------------------------------
    # receiving
    # ------------------------------------------------------------------
    def _on_frame(self, frame: bytes) -> None:
        trc = self.tracer
        t_d0 = trc.clock() if trc is not None else 0.0
        try:
            env = self.serializer.decode(frame)
        except Exception:
            if self.profiler is not None:
                self.profiler.inc("cluster.decode_errors")
            return
        # the decode-end stamp is only needed for traced TELLs; acks,
        # credits and untraced tells skip the second clock read
        t_d1 = trc.clock() if trc is not None and env.ctx is not None \
            else 0.0
        if self.profiler is not None:
            self.profiler.inc("cluster.frames_in")
            self.profiler.inc("cluster.bytes_in", len(frame))
        self._heard_from(env.origin)
        handler = self._handlers.get(env.kind)
        if handler is None:
            return
        if env.kind in RELIABLE_KINDS:
            fresh = self._dedup_for(env.origin).fresh(env.seq)
            self._owe_ack(env.origin)
            if not fresh:
                if self.profiler is not None:
                    self.profiler.inc("cluster.duplicates")
                # replay cached replies for request kinds: the reply
                # may be what got lost, not the request
                cached = self._reply_cache.get((env.origin, env.seq))
                if cached is not None:
                    self._send_control(env.origin, REPLY, env.origin,
                                       cached.payload)
                return
        if trc is not None and env.kind == TELL and env.ctx is not None:
            # fresh frames only (we are past the dedup check): a
            # retransmit must not mint dangling network spans.  The
            # network span covers encode + transit + every retry; its
            # start clamps to the local decode start so cross-process
            # clock skew degrades to a zero-length hop, never negative
            req, parent, t_send = env.ctx
            if trc._hops_left.get(req, 1) > 0:
                _ids = trc._ids
                _app = trc._spans.append
                net = next(_ids)
                _app((net, parent, req, "network", env.origin,
                      t_send if t_send < t_d0 else t_d0, t_d0))
                ser = next(_ids)
                _app((ser, net, req, "serialize", self.name, t_d0, t_d1))
                # downstream spans (stage-wait, mailbox-wait, ...) chain
                # under the receive-side decode, in the local clock
                # domain
                env.ctx = (req, ser, t_d1)
            else:
                # this request already spent its per-process hop budget
                # here: drop the wire context so the delivery below runs
                # at untraced cost — a remote storm stops paying for
                # tracing the moment the receiver's budget is gone
                env.ctx = None
        handler(env)
        if self._staged_total:
            self.pump()

    def _handle_heartbeat(self, env: Envelope) -> None:
        pass                       # _heard_from already fed the detector

    def _dedup_for(self, origin: str) -> DedupTable:
        # lock-free fast path: dict reads are atomic under the GIL and
        # tables are created once, never replaced
        table = self._dedup.get(origin)
        if table is not None:
            return table
        with self._state_lock:
            table = self._dedup.get(origin)
            if table is None:
                table = self._dedup[origin] = DedupTable()
            return table

    def _gate(self, path: str) -> CreditGate:
        gate = self._gates.get(path)
        if gate is not None:
            return gate
        with self._state_lock:
            gate = self._gates.get(path)
            if gate is None:
                gate = self._gates[path] = \
                    CreditGate(self.config.credit_window, clock=self.clock)
            return gate

    def _owe_ack(self, origin: str) -> None:
        with self._flow_lock:
            owed = self._ack_owed.get(origin, 0) + 1
            self._ack_owed[origin] = owed
            flush = owed >= self.config.ack_every
        if flush:
            self._flush_acks(origin)

    def _flush_acks(self, only: Optional[str] = None) -> None:
        with self._flow_lock:
            origins = [only] if only is not None else \
                [o for o, n in self._ack_owed.items() if n > 0]
            cums = []
            for origin in origins:
                if self._ack_owed.get(origin, 0) <= 0:
                    continue
                self._ack_owed[origin] = 0
                table = self._dedup.get(origin)
                if table is not None:
                    cums.append((origin, table.cumulative))
        for origin, cum in cums:
            self._send_control(origin, ACK, origin, cum)

    # -- TELL path -----------------------------------------------------------
    def _handle_tell(self, env: Envelope) -> None:
        actor = split_path(env.target)[1]
        # lock-free registry read: dict lookups are atomic under the
        # GIL; ``_actors_lock`` guards compound spawn/stop updates
        ref = self._actors.get(actor)
        if ref is None or ref.is_stopped:
            self._dead_letter(env.target, env.payload,
                              f"no such actor on {self.name}",
                              ctx=env.ctx)
            self._owe_credit(env.origin, env.target)
            return
        if self._staged_total or ref.pending >= self.config.mailbox_bound:
            with self._state_lock:
                staged = self._staged.setdefault(actor, [])
                must_stage = bool(staged) \
                    or ref.pending >= self.config.mailbox_bound
                if must_stage:
                    staged.append(env)
                    self._staged_total += 1
            if must_stage:
                self._event("cluster-stage", actor=actor, peer=env.origin,
                            extra={"staged": len(staged)})
                if self.profiler is not None:
                    self.profiler.inc("cluster.staged")
                return
        self._admit(ref, env)

    def _admit(self, ref: ActorRef, env: Envelope,
               staged: bool = False) -> None:
        sender = None
        if env.sender is not None:
            sender_node = split_path(env.sender)[0]
            if sender_node == self.name:
                sender = self._actors.get(split_path(env.sender)[1])
            if sender is None:
                sender = self._remote_refs.get(env.sender)
                if sender is None:       # benign race: refs compare by path
                    sender = self._remote_refs[env.sender] = \
                        RemoteRef(self, env.sender)
        trc = self.tracer
        if trc is not None and env.ctx is not None:
            req, parent, t0 = env.ctx
            if staged:
                # time spent parked in the staging queue (mailbox full)
                now = trc.now()
                sid = trc.next_id()
                trc.record(sid, parent, req, "stage-wait", ref.name,
                           t0 if t0 <= now else now, now)
                parent = sid
            # install the envelope's context only around the enqueue so
            # the cell captures it for its mailbox-wait chain — and put
            # the caller's own context back afterwards: a loopback
            # transport delivers on the *sending* thread, whose request
            # context must not be clobbered by the message it delivered
            tls = trc.tls
            prev = getattr(tls, "ctx", None)
            tls.ctx = trc.context(req, parent)
            try:
                ref.tell(env.payload, sender=sender)
            finally:
                tls.ctx = prev
        else:
            ref.tell(env.payload, sender=sender)
        if self._evt_on and not (env.seq & self._evt_mask):
            # samples on the same wire seq as the sender's mask, so a
            # recorded recv always has its matching recorded send
            if self._proto_fast:
                if self._proto_want_deliver:
                    self._proto_q.append(
                        ("deliver", ref.name, env.payload,
                         env.origin, self.name, env.seq))
                if self.telemetry is not None:
                    self._event(
                        "cluster-recv", ref.name, env.origin, None,
                        self._fast_flow(env.origin, self.name, env.seq),
                        extra=({"request_id": env.ctx[0]}
                               if env.ctx is not None else None))
            else:
                extra = None
                if env.ctx is not None:
                    extra = {"request_id": env.ctx[0]}
                if self._proto_on:
                    extra = extra or {}
                    extra["msg"] = message_kind(env.payload)
                self._event("cluster-recv", ref.name, env.origin, None,
                            self._fast_flow(env.origin, self.name,
                                            env.seq),
                            extra=extra)
        if self.profiler is not None:
            self.profiler.inc("cluster.delivered")
            self._delivered += 1
            if self._delivered & 0x1F == 0:   # sample: depth takes a lock
                self.profiler.gauge_max("cluster.mailbox_depth_max",
                                        ref.pending)
        self._owe_credit(env.origin, env.target)

    def _owe_credit(self, origin: str, path: str) -> None:
        with self._flow_lock:
            owed = self._credit_owed.setdefault(origin, {})
            owed[path] = owed.get(path, 0) + 1
            total = self._credit_total.get(origin, 0) + 1
            self._credit_total[origin] = total
        if total >= self.config.credit_flush:
            self._flush_credits(origin)

    def _flush_credits(self, only: Optional[str] = None) -> None:
        with self._flow_lock:
            origins = [only] if only is not None \
                else list(self._credit_owed)
            batches = []
            for origin in origins:
                owed = self._credit_owed.get(origin)
                if owed:
                    batches.append((origin, dict(owed)))
                    owed.clear()
                    self._credit_total[origin] = 0
        for origin, grants in batches:
            self._send_control(origin, CREDIT, origin,
                               [[p, n] for p, n in sorted(grants.items())])

    def pump(self) -> None:
        """Admit staged remote messages whose target has mailbox room."""
        if not self._staged_total:
            return
        with self._state_lock:
            actors = [a for a, q in self._staged.items() if q]
        for actor in actors:
            ref = self._actors.get(actor)
            while True:
                with self._state_lock:
                    staged = self._staged.get(actor)
                    if not staged:
                        break
                    if ref is None or ref.is_stopped:
                        env = staged.pop(0)
                        self._staged_total -= 1
                        dead = True
                    elif ref.pending < self.config.mailbox_bound:
                        env = staged.pop(0)
                        self._staged_total -= 1
                        dead = False
                    else:
                        break
                if dead:
                    self._dead_letter(env.target, env.payload,
                                      f"no such actor on {self.name}",
                                      ctx=env.ctx)
                    self._owe_credit(env.origin, env.target)
                else:
                    self._admit(ref, env, staged=True)

    # -- control handlers ----------------------------------------------------
    def _handle_ack(self, env: Envelope) -> None:
        cum = int(env.payload)
        with self._state_lock:
            outbox = self._outboxes.get(env.origin)
            # once the peer's cumulative prefix covers every abandoned
            # seq, the link is resynced and SKIP stops being advertised
            if cum >= self._skip.get(env.origin, cum + 1):
                del self._skip[env.origin]
        if outbox is not None:
            outbox.on_ack(cum)

    def _handle_skip(self, env: Envelope) -> None:
        """Origin dead-lettered seqs <= payload: never wait for them."""
        self._dedup_for(env.origin).skip_to(int(env.payload))
        # ack immediately so the origin stops advertising the skip
        self._send_control(env.origin, ACK, env.origin,
                           self._dedup_for(env.origin).cumulative)

    def _handle_credit(self, env: Envelope) -> None:
        for path, n in env.payload:
            gate = self._gate(path)
            was_parked = gate.parked > 0
            gate.release(int(n))
            if was_parked:
                self._event("cluster-resume", peer=env.origin,
                            actor=split_path(path)[1],
                            extra={"path": path, "credits": int(n)})
                if self.profiler is not None:
                    self.profiler.inc("cluster.resumes")

    def _handle_spawn(self, env: Envelope) -> None:
        payload = env.payload
        try:
            cls, inject = actor_type(payload["type"])
            ref = self.spawn(cls, *payload.get("args", ()),
                             name=payload["name"], inject_node=inject)
            reply = {"re": env.seq, "path": make_path(self.name, ref.name)}
            self._event("cluster-spawn", actor=ref.name, peer=env.origin)
        except Exception as exc:  # noqa: BLE001 - report, don't die
            reply = {"re": env.seq, "error": f"{type(exc).__name__}: {exc}"}
        self._cache_reply(env.origin, env.seq, reply)
        self._send_control(env.origin, REPLY, env.origin, reply)

    def _handle_watch(self, env: Envelope) -> None:
        payload = env.payload
        actor = payload["actor"]
        self._watchers.setdefault(actor, []).append(payload["watcher"])
        directive = payload.get("directive")
        if directive is not None:
            with self._actors_lock:
                ref = self._actors.get(actor)
            if ref is not None:
                self.system.set_directive(
                    ref, SupervisionDirective(directive))

    def _handle_signal(self, env: Envelope) -> None:
        signal = ActorSignal.from_dict(env.payload)
        actor = split_path(env.target)[1]
        with self._actors_lock:
            ref = self._actors.get(actor)
        self._event("cluster-signal", actor=actor, peer=env.origin,
                    extra={"signal": signal.kind, "watched": signal.path})
        if ref is None or ref.is_stopped:
            self._dead_letter(env.target, signal, "watcher gone")
            return
        ref.tell(signal, sender=None)

    def _handle_status(self, env: Envelope) -> None:
        want = env.payload if isinstance(env.payload, dict) else {}
        reply: dict[str, Any] = {"re": env.seq, **self.status()}
        if want.get("profile") and self.profiler is not None:
            reply["profile"] = self.profiler.snapshot()
        if want.get("trace") and self.trace_events is not None:
            with self._trace_lock:
                reply["trace"] = [e.as_dict() for e in self.trace_events]
        tele = self.telemetry
        if tele is not None:
            if want.get("telemetry"):
                reply["telemetry"] = tele.snapshot()
            if want.get("flight"):
                reply["flight"] = tele.recorder.dump()
        self._cache_reply(env.origin, env.seq, reply)
        self._send_control(env.origin, REPLY, env.origin, reply)

    def _cache_reply(self, origin: str, seq: int, reply: Any) -> None:
        """Remember a request reply for duplicate replay, bounded FIFO."""
        with self._state_lock:
            self._reply_cache[(origin, seq)] = \
                Envelope(REPLY, 0, self.name, origin, payload=reply)
            while len(self._reply_cache) > self.config.reply_cache_size:
                self._reply_cache.pop(next(iter(self._reply_cache)))

    def _handle_reply(self, env: Envelope) -> None:
        key = (env.origin, env.payload.get("re"))
        with self._state_lock:
            waiter = self._replies.get(key)
        if waiter is not None:
            waiter.value = env.payload
            waiter.event.set()

    # ------------------------------------------------------------------
    # supervision plumbing
    # ------------------------------------------------------------------
    def _local_failure(self, actor_name: str, error: BaseException,
                       directive: SupervisionDirective) -> None:
        watchers = self._watchers.get(actor_name)
        self._event("cluster-failure", actor=actor_name,
                    extra={"error": repr(error),
                           "directive": directive.value})
        self._incident("actor-failure",
                       {"actor": actor_name, "error": repr(error),
                        "directive": directive.value})
        if not watchers:
            return
        signal = ActorSignal(make_path(self.name, actor_name), "failure",
                             error=f"{type(error).__name__}: {error}",
                             directive=directive.value)
        for watcher_path in list(watchers):
            watcher_node = split_path(watcher_path)[0]
            if watcher_node == self.name:
                with self._actors_lock:
                    ref = self._actors.get(split_path(watcher_path)[1])
                if ref is not None and not ref.is_stopped:
                    ref.tell(signal, sender=None)
                continue
            self._send_reliable(watcher_node, SIGNAL, watcher_path,
                                signal.as_dict())

    # ------------------------------------------------------------------
    # time
    # ------------------------------------------------------------------
    def tick(self, now: Optional[float] = None) -> None:
        """One maintenance pass: retries, expiries, heartbeats, detector
        transitions, owed acks/credits, staging pump."""
        now = self.clock() if now is None else now
        with self._state_lock:
            peers = list(self._peers.values())
            outboxes = dict(self._outboxes)

        # heartbeats out; re-advertise pending link resyncs while the
        # peer can hear them (cleared by the ACK they provoke)
        for peer in peers:
            if peer.state == PeerState.DOWN:
                continue
            if now - peer.last_beat >= self.config.heartbeat_interval:
                peer.last_beat = now
                self._send_control(peer.name, HEARTBEAT, peer.name, None)
            floor = self._skip.get(peer.name)
            if floor is not None:
                self._send_control(peer.name, SKIP, peer.name, floor)

        # telemetry frames piggyback the same cadence pass (the agent
        # applies its own interval); its failures never break the tick
        tele = self.telemetry
        if tele is not None:
            try:
                tele.on_tick(now)
            except Exception:
                if self.profiler is not None:
                    self.profiler.inc("cluster.telemetry_errors")

        # retransmissions + expiries
        for dest, outbox in outboxes.items():
            for env in outbox.due(now):
                self._event("cluster-retry", peer=dest,
                            extra={"seq": env.seq, "kind": env.kind})
                if self.profiler is not None:
                    self.profiler.inc("cluster.retries")
                self._transmit(dest, env)
            for env in outbox.expired(now):
                self._abandon(dest, env)
                self._dead_letter(env.target, env.payload,
                                  f"undeliverable to {dest} after "
                                  f"{self.config.max_attempts} attempts",
                                  ctx=env.ctx)

        # failure detector transitions + eviction of long-dead peers
        for peer in peers:
            silent = now - peer.last_heard
            if peer.state == PeerState.DOWN:
                if silent >= self.config.down_after + \
                        self.config.evict_after:
                    self._evict_peer(peer.name)
                continue
            if silent >= self.config.down_after:
                peer.state = PeerState.DOWN
                self._on_peer_down(peer.name)
            elif peer.state == PeerState.ALIVE \
                    and silent >= self.config.suspect_after:
                peer.state = PeerState.SUSPECT
                with self._state_lock:
                    unacked = len(self._outboxes.get(peer.name, ()))
                self._event("cluster-suspect", peer=peer.name,
                            extra={"unacked": unacked,
                                   "silent_s": round(silent, 3)})
                if self.profiler is not None:
                    self.profiler.inc("cluster.suspects")

        self._flush_acks()
        self._flush_credits()
        self.pump()

    def _heard_from(self, origin: str) -> None:
        now = self.clock()
        peer = self._peers.get(origin)
        if peer is not None and peer.state == PeerState.ALIVE:
            peer.last_heard = now      # plain store; atomic under the GIL
            return
        with self._state_lock:
            peer = self._peers.get(origin)
            if peer is None:
                self._peers[origin] = PeerState(origin, now)
                return
            peer.last_heard = now
            recovered = peer.state != PeerState.ALIVE
            was_down = peer.state == PeerState.DOWN
            if recovered:
                peer.state = PeerState.ALIVE
            if was_down:
                # _on_peer_down broke this peer's credit gates, and a
                # CreditGate has no un-break: drop them so the next
                # send mints a fresh full-window gate instead of
                # dead-lettering forever against a peer we can hear
                for path in [p for p in self._gates
                             if split_path(p)[0] == origin]:
                    del self._gates[path]
        if recovered:
            self._event("cluster-recover", peer=origin)

    def _abandon(self, dest: str, env: Envelope) -> None:
        """Bookkeeping for a reliable envelope we gave up on: its seq
        must not stall the peer's cumulative ACK (SKIP advertises the
        hole), and a TELL returns the credit it acquired in _send_tell
        so a lossy link does not permanently shrink the window."""
        with self._state_lock:
            if env.seq > self._skip.get(dest, 0):
                self._skip[dest] = env.seq
        if env.kind == TELL:
            self._gate(env.target).release()

    def _on_peer_down(self, peer: str) -> None:
        self._event("cluster-down", peer=peer)
        self._incident("peer-down", {"peer": peer})
        if self.profiler is not None:
            self.profiler.inc("cluster.downs")
        with self._state_lock:
            outbox = self._outboxes.get(peer)
            gates = [(path, g) for path, g in self._gates.items()
                     if split_path(path)[0] == peer]
            watching = [(path, refs) for path, refs in self._watching.items()
                        if split_path(path)[0] == peer]
        # parked senders wake and fail instead of waiting on a corpse
        # (broken before the drain below releases credits, so a freed
        # credit cannot wake a sender toward the dead node)
        for path, gate in gates:
            gate.brk(f"node {peer} down")
        # in-flight traffic can never be acknowledged — dead-letter it
        if outbox is not None:
            for env in outbox.drain():
                self._abandon(peer, env)
                self._dead_letter(env.target, env.payload,
                                  f"node {peer} down", ctx=env.ctx)
        # watched actors on the dead node: synthesize node-down signals
        for path, refs in watching:
            signal = ActorSignal(path, "node-down",
                                 detail=f"node {peer} marked down")
            for ref in refs:
                if not ref.is_stopped:
                    ref.tell(signal, sender=None)

    def _evict_peer(self, peer: str) -> None:
        """Forget a peer that stayed DOWN past the eviction window.

        Everything sized by traffic goes (outbox, dedup, gates, cached
        replies, owed acks/credits); the per-dest send counter stays so
        that if the peer ever does come back, our sequence numbers keep
        ascending instead of colliding with its surviving dedup state.
        """
        with self._state_lock:
            self._peers.pop(peer, None)
            self._outboxes.pop(peer, None)
            self._dedup.pop(peer, None)
            self._skip.pop(peer, None)
            for path in [p for p in self._gates
                         if split_path(p)[0] == peer]:
                del self._gates[path]
            for key in [k for k in self._reply_cache if k[0] == peer]:
                del self._reply_cache[key]
            for path in [p for p in self._remote_refs
                         if split_path(p)[0] == peer]:
                del self._remote_refs[path]
        with self._flow_lock:
            self._ack_owed.pop(peer, None)
            self._credit_owed.pop(peer, None)
            self._credit_total.pop(peer, None)
        self._event("cluster-evict", peer=peer)

    def _timer_loop(self) -> None:
        while not self.closed:
            self._sleep(self.config.tick_interval)
            try:
                self.tick()
            except Exception:
                if self.profiler is not None:
                    self.profiler.inc("cluster.tick_errors")

    # ------------------------------------------------------------------
    # misc
    # ------------------------------------------------------------------
    def _dead_letter(self, target: str, message: Any, why: str,
                     ctx: Any = None) -> None:
        if ctx is None and self.tracer is not None:
            # sender-side drops (backpressure timeout, node down, ...)
            # happen on the requesting thread: its installed context is
            # the message's causal position
            ctx = self.tracer.current()
        req = parent = None
        if ctx is not None:
            req = getattr(ctx, "request_id", None)
            parent = getattr(ctx, "span_id", None)
            if req is None:        # cluster wire triple
                try:
                    req, parent = ctx[0], ctx[1]
                except (TypeError, IndexError):
                    req = parent = None
        trc = self.tracer
        if trc is not None and req is not None:
            # zero-length terminal span: the drop shows up on the
            # request's critical path instead of the chain just ending
            now = trc.now()
            trc.record(trc.next_id(), parent, req, "dead-letter",
                       target, now, now)
        self.system._dead_letter(target, message, None, ctx=ctx)
        extra = {"why": why}
        if req is not None:
            extra["request_id"] = req
        self._event("cluster-dead-letter", actor=target, extra=extra)
        if self.profiler is not None:
            self.profiler.inc("cluster.dead_letters")

    def dead_letters(self) -> list:
        """Snapshot of the hosting system's dead-letter log."""
        with self.system._dl_lock:
            return list(self.system.dead_letters)

    def _fast_flow(self, origin: str, dest: str, seq: int) -> int:
        """:func:`_flow_id` with the ``"origin|dest|"`` prefix bytes
        cached per pair — same crc32 over the same bytes, minus the
        f-string build and encode on every message."""
        key = (origin, dest)
        pre = self._flow_pre.get(key)
        if pre is None:
            pre = self._flow_pre[key] = f"{origin}|{dest}|".encode()
        return zlib.crc32(pre + b"%d" % seq) & 0x7FFFFFFF

    def _event(self, kind: str, actor: str = "", peer: str = "",
               msg_seq: Optional[int] = None,
               recv_seq: Optional[int] = None,
               extra: Optional[dict] = None) -> None:
        if not self._evt_on:
            return
        tele = self.telemetry
        if tele is not None:
            # flight recorder first: one tuple into a bounded deque, no
            # ClusterEvent construction unless trace/monitors want it
            # (inlined FlightRecorder.record — this runs per message on
            # the cluster hot path, the extra call frame is measurable;
            # deque.append with maxlen is GIL-atomic, so no lock)
            rec = tele.recorder
            rec._n += 1
            rec._dq.append((kind, actor, peer, msg_seq, recv_seq,
                            self.wall(), extra))
        if self.trace_events is None and self.monitors is None:
            return
        from .observe import ClusterEvent
        with self._trace_lock:
            self._step += 1
            event = ClusterEvent(kind=kind, node=self.name, actor=actor,
                                 peer=peer, step=self._step,
                                 ts=self.wall(), msg_seq=msg_seq,
                                 recv_seq=recv_seq, extra=extra or {})
            if self.trace_events is not None:
                self.trace_events.append(event)
        if self.monitors is not None:
            try:
                self.monitors.feed(event)
            except Exception:
                pass

    def drain(self, timeout: float = 10.0) -> bool:
        """Local quiescence: every local mailbox empty, no staged remote
        messages, nothing running.

        ``timeout`` bounds a poll over *real* dispatcher threads, so it
        is measured on wall monotonic time — unlike retry/heartbeat
        deadlines it must keep expiring when ``clock`` is a frozen test
        clock (the simulator steps nodes directly and never drains).
        """
        deadline = time.monotonic() + timeout
        while True:
            with self._state_lock:
                staged = any(self._staged.values())
            if not staged and self.system._quiet():
                # quiescent: let the conformance pump catch up too, so
                # a post-drain caller sees every hazard of the traffic
                # it just sent
                return self._proto_flush(
                    max(0.0, deadline - time.monotonic()))
            if time.monotonic() >= deadline:
                return False
            self.pump()
            self._sleep(0.001)

    def close(self) -> None:
        if self.closed:
            return
        self.closed = True
        tele = self.telemetry
        if tele is not None:
            # graceful-stop postmortem: dump the final flight window
            # (ours plus every reachable peer's) while the transport
            # can still pull them; ``force`` bypasses the incident
            # cooldown so a recent alert cannot swallow the run's
            # last snapshot.  Never lets telemetry break close().
            try:
                tele.incident("node-stop", {"node": self.name},
                              force=True)
            except Exception:
                if self.profiler is not None:
                    self.profiler.inc("cluster.telemetry_errors")
        self._flush_acks()
        self._flush_credits()
        if self._proto_thread is not None:
            # stop the conformance pump; it drains what is queued
            # before exiting, so no observed message goes unchecked
            self._proto_stop = True
            self._proto_wake.set()
            self._proto_thread.join(timeout=2.0)
        self.transport.close()
        if self._own_system:
            self.system.shutdown()

    def __enter__(self) -> "ClusterNode":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()
