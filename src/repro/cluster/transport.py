"""Node-to-node byte transports: in-process loopback and framed TCP.

Both transports move opaque frames (the serialized envelopes of
:mod:`repro.cluster.message`) and share one tiny contract:

* ``send(dest, frame) -> bool`` — best-effort, non-blocking; False means
  the destination is unknown/unreachable *right now* (the reliability
  layer above decides whether to retry or dead-letter);
* ``start(on_frame)`` — install the receive callback (called with raw
  frame bytes, possibly from transport-owned threads);
* ``close()`` — release sockets/threads.

:class:`LoopbackTransport` keeps tier-1 tests deterministic and
socket-free: frames hop between in-process nodes through per-node
drain queues (no recursion, sender-thread delivery), and the shared
:class:`LoopbackHub` doubles as the fault injector — count-limited
frame drops, frame duplication, and node/link partitions, which is how
the fault suite forces retry, dedup and failure-detector paths without
ever touching a socket.

:class:`SocketTransport` is the real thing: length-prefixed frames
(4-byte big-endian size, :func:`encode_frame` / :class:`FrameDecoder`)
over TCP with ``TCP_NODELAY``, one writer thread per peer draining a
queue so bursts coalesce into single ``sendall`` calls (the batching
that lets two processes beat the single-process actor runtime), and a
HELLO handshake so a connection learns its peer's node name whichever
side dialed.
"""

from __future__ import annotations

import random
import socket
import struct
import threading
import time
from collections import deque
from typing import Callable, Optional

__all__ = ["encode_frame", "FrameDecoder", "LoopbackHub",
           "LoopbackTransport", "SocketTransport", "MAX_FRAME"]

#: refuse frames beyond this size — a corrupt length prefix otherwise
#: asks the decoder to buffer gigabytes
MAX_FRAME = 64 * 1024 * 1024

_LEN = struct.Struct(">I")


def encode_frame(data: bytes) -> bytes:
    """Length-prefix one frame: 4-byte big-endian size + payload."""
    if len(data) > MAX_FRAME:
        raise ValueError(f"frame of {len(data)} bytes exceeds {MAX_FRAME}")
    return _LEN.pack(len(data)) + data


class FrameDecoder:
    """Incremental decoder: feed stream chunks, get back whole frames.

    TCP gives arbitrary chunk boundaries; ``push`` buffers and returns
    every complete frame the new bytes finish.
    """

    def __init__(self) -> None:
        self._buf = bytearray()

    def push(self, chunk: bytes) -> list[bytes]:
        self._buf.extend(chunk)
        frames: list[bytes] = []
        while True:
            if len(self._buf) < _LEN.size:
                return frames
            (size,) = _LEN.unpack_from(self._buf)
            if size > MAX_FRAME:
                raise ValueError(f"frame length {size} exceeds {MAX_FRAME}")
            end = _LEN.size + size
            if len(self._buf) < end:
                return frames
            frames.append(bytes(self._buf[_LEN.size:end]))
            del self._buf[:end]


# ===========================================================================
# loopback
# ===========================================================================

class LoopbackHub:
    """In-process wiring + fault injection between loopback transports.

    Fault API (all thread-safe):

    * ``drop(src, dst, count=1)`` — silently discard the next ``count``
      frames on that link;
    * ``dup(src, dst, count=1)`` — deliver the next ``count`` frames
      twice (exercises receiver dedup);
    * ``partition(a, b)`` / ``heal(a, b)`` — drop everything both ways;
    * ``cut(node)`` / ``restore(node)`` — isolate a node entirely (the
      loopback spelling of "the process died");
    * ``chaos(src, dst, drop=p, dup=q)`` — probabilistic per-frame
      faults on a link (``None`` wildcards either end), drawn from the
      hub's own seeded RNG so a failing chaos run replays exactly from
      its seed (``repro sim replay --seed``).

    Every random decision the hub ever makes comes from ``Random(seed)``
    — a hub with no chaos rules draws nothing, so seedless use stays
    bit-for-bit identical to the pre-chaos behavior.
    """

    def __init__(self, seed: Optional[int] = None) -> None:
        self._nodes: dict[str, LoopbackTransport] = {}
        self._lock = threading.Lock()
        self._drops: dict[tuple[str, str], int] = {}
        self._dups: dict[tuple[str, str], int] = {}
        self._partitions: set[frozenset] = set()
        self._cut: set[str] = set()
        #: seed of the fault RNG — surfaced in failure output so a
        #: chaos run is replayable
        self.seed = seed
        self._rng = random.Random(seed)
        # (src|None, dst|None) -> (drop_rate, dup_rate)
        self._chaos: dict[tuple[Optional[str], Optional[str]],
                          tuple[float, float]] = {}
        #: delivered frame count per (src, dst) link
        self.delivered: dict[tuple[str, str], int] = {}
        #: dropped frame count per (src, dst) link (faults only)
        self.dropped: dict[tuple[str, str], int] = {}

    def join(self, name: str) -> "LoopbackTransport":
        with self._lock:
            if name in self._nodes:
                raise ValueError(f"node {name!r} already joined this hub")
            transport = LoopbackTransport(name, self)
            self._nodes[name] = transport
            return transport

    # -- fault injection -----------------------------------------------------
    def drop(self, src: str, dst: str, count: int = 1) -> None:
        with self._lock:
            self._drops[(src, dst)] = self._drops.get((src, dst), 0) + count

    def dup(self, src: str, dst: str, count: int = 1) -> None:
        with self._lock:
            self._dups[(src, dst)] = self._dups.get((src, dst), 0) + count

    def partition(self, a: str, b: str) -> None:
        with self._lock:
            self._partitions.add(frozenset((a, b)))

    def heal(self, a: str, b: str) -> None:
        with self._lock:
            self._partitions.discard(frozenset((a, b)))

    def cut(self, node: str) -> None:
        with self._lock:
            self._cut.add(node)

    def restore(self, node: str) -> None:
        with self._lock:
            self._cut.discard(node)

    def chaos(self, src: Optional[str] = None, dst: Optional[str] = None,
              drop: float = 0.0, dup: float = 0.0) -> None:
        """Probabilistic per-frame faults on a link (seeded RNG).

        ``None`` on either end wildcards it; the most specific rule
        wins — ``(src, dst)`` over ``(src, None)`` over ``(None, dst)``
        over ``(None, None)``.  Rates of 0/0 clear the rule.
        """
        with self._lock:
            if drop <= 0.0 and dup <= 0.0:
                self._chaos.pop((src, dst), None)
            else:
                self._chaos[(src, dst)] = (drop, dup)

    # -- routing -------------------------------------------------------------
    def _admit(self, src: str, dst: str, frame: bytes) -> int:
        """Fault bookkeeping for one frame, under the hub lock.

        Returns the number of copies to deliver: 0 when a fault ate the
        frame, -1 when the destination is unknown.  Shared between the
        live ``_route`` below and the simulator's deferred-delivery
        hub, so both see identical fault semantics.
        """
        with self._lock:
            if dst not in self._nodes:
                return -1
            if src in self._cut or dst in self._cut \
                    or frozenset((src, dst)) in self._partitions:
                self.dropped[(src, dst)] = \
                    self.dropped.get((src, dst), 0) + 1
                return 0         # link exists; the frame just vanishes
            pending_drops = self._drops.get((src, dst), 0)
            if pending_drops > 0:
                self._drops[(src, dst)] = pending_drops - 1
                self.dropped[(src, dst)] = \
                    self.dropped.get((src, dst), 0) + 1
                return 0
            copies = 1
            pending_dups = self._dups.get((src, dst), 0)
            if pending_dups > 0:
                self._dups[(src, dst)] = pending_dups - 1
                copies = 2
            if self._chaos:
                rates = (self._chaos.get((src, dst))
                         or self._chaos.get((src, None))
                         or self._chaos.get((None, dst))
                         or self._chaos.get((None, None)))
                if rates is not None:
                    drop_rate, dup_rate = rates
                    if drop_rate > 0.0 \
                            and self._rng.random() < drop_rate:
                        self.dropped[(src, dst)] = \
                            self.dropped.get((src, dst), 0) + 1
                        return 0
                    if dup_rate > 0.0 and self._rng.random() < dup_rate:
                        copies += 1
            self.delivered[(src, dst)] = \
                self.delivered.get((src, dst), 0) + copies
            return copies

    def _route(self, src: str, dst: str, frame: bytes) -> bool:
        copies = self._admit(src, dst, frame)
        if copies < 0:
            return False
        target = self._nodes[dst]
        for _ in range(copies):
            target._deliver(frame)
        return True


class LoopbackTransport:
    """One node's endpoint on a :class:`LoopbackHub`.

    Delivery runs on the *sending* thread, but through a per-receiver
    drain queue guarded by a reentrancy flag: a receive callback that
    sends again enqueues rather than recurses, so deep message chains
    can't blow the stack and frame order per receiver stays FIFO.
    """

    def __init__(self, name: str, hub: LoopbackHub):
        self.name = name
        self.hub = hub
        self._on_frame: Optional[Callable[[bytes], None]] = None
        self._queue: deque[bytes] = deque()
        self._lock = threading.Lock()
        self._draining = False
        self.closed = False

    def start(self, on_frame: Callable[[bytes], None]) -> None:
        self._on_frame = on_frame

    def send(self, dest: str, frame: bytes) -> bool:
        if self.closed:
            return False
        return self.hub._route(self.name, dest, frame)

    def _deliver(self, frame: bytes) -> None:
        with self._lock:
            if self.closed:
                return
            self._queue.append(frame)
            if self._draining:
                return
            self._draining = True
        try:
            while True:
                with self._lock:
                    if not self._queue:
                        self._draining = False
                        return
                    item = self._queue.popleft()
                if self._on_frame is not None:
                    self._on_frame(item)
        except BaseException:
            with self._lock:
                self._draining = False
            raise

    def close(self) -> None:
        self.closed = True


# ===========================================================================
# sockets
# ===========================================================================

class _PeerConn:
    """One live TCP connection to a peer, with a batching writer thread."""

    def __init__(self, sock: socket.socket, owner: "SocketTransport"):
        self.sock = sock
        self.owner = owner
        self.peer: Optional[str] = None        # learned from HELLO
        self._out: deque[bytes] = deque()
        self._cond = threading.Condition()
        self._closed = False
        self._writer = threading.Thread(target=self._write_loop,
                                        name="cluster-writer", daemon=True)
        self._reader = threading.Thread(target=self._read_loop,
                                        name="cluster-reader", daemon=True)

    def start(self) -> None:
        self._writer.start()
        self._reader.start()

    def enqueue(self, frame: bytes) -> None:
        with self._cond:
            self._out.append(frame)
            self._cond.notify()

    def _write_loop(self) -> None:
        while True:
            with self._cond:
                while not self._out and not self._closed:
                    self._cond.wait()
                if self._closed and not self._out:
                    return
            # brief coalescing window: concurrent senders (and the
            # peer's pipelined replies) pile on while we yield, so the
            # whole burst becomes one sendall — the syscall batching
            # the bench throughput rides on
            delay = self.owner.batch_delay
            if delay > 0:
                time.sleep(delay)
            with self._cond:
                batch = b"".join(self._out)
                self._out.clear()
            if not batch:
                continue
            try:
                self.sock.sendall(batch)
            except OSError:
                self.close()
                return

    def _read_loop(self) -> None:
        decoder = FrameDecoder()
        while True:
            try:
                chunk = self.sock.recv(256 * 1024)
            except OSError:
                chunk = b""
            if not chunk:
                self.close()
                return
            try:
                frames = decoder.push(chunk)
            except ValueError:
                self.close()
                return
            for frame in frames:
                self.owner._on_conn_frame(self, frame)

    def close(self) -> None:
        with self._cond:
            if self._closed:
                return
            self._closed = True
            self._cond.notify_all()
        try:
            self.sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        try:
            self.sock.close()
        except OSError:
            pass
        self.owner._forget_conn(self)


class SocketTransport:
    """Framed TCP transport; optionally listens for inbound peers.

    ``listen=True`` binds ``host:port`` (port 0 = ephemeral; read the
    actual one from :attr:`port`).  Either side may dial with
    :meth:`connect`; the HELLO handshake names the connection, after
    which ``send(peer_name, ...)`` routes over whichever socket knows
    that peer — so an ephemeral client (a CLI verb, the bench driver)
    needs no listening port of its own.
    """

    def __init__(self, name: str, host: str = "127.0.0.1", port: int = 0,
                 listen: bool = True, batch_delay: float = 0.0):
        self.name = name
        self.host = host
        #: optional writer coalescing window in seconds.  0 (default)
        #: sends as soon as the writer wakes — bursts still coalesce
        #: naturally because everything enqueued while a sendall was in
        #: flight drains as one batch; a positive delay forces larger
        #: batches at the cost of per-hop latency (measured: it does
        #: not pay off on localhost, where sleep() GIL handoffs cost
        #: more than the saved syscalls)
        self.batch_delay = batch_delay
        self._on_frame: Optional[Callable[[bytes], None]] = None
        self._conns: dict[str, _PeerConn] = {}
        self._anon: list[_PeerConn] = []
        self._lock = threading.Lock()
        self.closed = False
        self._server: Optional[socket.socket] = None
        self.port = 0
        if listen:
            server = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
            server.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
            server.bind((host, port))
            server.listen(32)
            self._server = server
            self.port = server.getsockname()[1]
            self._acceptor = threading.Thread(target=self._accept_loop,
                                              name="cluster-accept",
                                              daemon=True)

    # -- transport contract --------------------------------------------------
    def start(self, on_frame: Callable[[bytes], None]) -> None:
        self._on_frame = on_frame
        if self._server is not None:
            self._acceptor.start()

    def send(self, dest: str, frame: bytes) -> bool:
        with self._lock:
            conn = self._conns.get(dest)
        if conn is None:
            return False
        conn.enqueue(encode_frame(frame))
        return True

    def close(self) -> None:
        self.closed = True
        if self._server is not None:
            try:
                self._server.close()
            except OSError:
                pass
        with self._lock:
            conns = list(self._conns.values()) + list(self._anon)
        for conn in conns:
            conn.close()

    # -- connection management -----------------------------------------------
    def connect(self, peer: str, address: tuple[str, int],
                timeout: float = 5.0) -> None:
        """Dial a peer and register the connection under its name."""
        sock = socket.create_connection(address, timeout=timeout)
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        sock.settimeout(None)
        conn = _PeerConn(sock, self)
        conn.peer = peer
        with self._lock:
            self._conns[peer] = conn
        conn.start()
        conn.enqueue(encode_frame(self._hello()))

    def peers(self) -> list[str]:
        with self._lock:
            return sorted(self._conns)

    def _hello(self) -> bytes:
        # deliberately serializer-independent: the receiving side peeks
        # for this prefix before handing frames to the codec
        return b"HELLO " + self.name.encode("utf-8")

    def _accept_loop(self) -> None:
        while not self.closed:
            try:
                sock, _ = self._server.accept()
            except OSError:
                return
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            conn = _PeerConn(sock, self)
            with self._lock:
                self._anon.append(conn)
            conn.start()
            conn.enqueue(encode_frame(self._hello()))

    def _on_conn_frame(self, conn: _PeerConn, frame: bytes) -> None:
        if frame.startswith(b"HELLO "):
            peer = frame[6:].decode("utf-8")
            with self._lock:
                conn.peer = peer
                if conn in self._anon:
                    self._anon.remove(conn)
                self._conns.setdefault(peer, conn)
            return
        if self._on_frame is not None:
            self._on_frame(frame)

    def _forget_conn(self, conn: _PeerConn) -> None:
        with self._lock:
            if conn.peer is not None \
                    and self._conns.get(conn.peer) is conn:
                del self._conns[conn.peer]
            if conn in self._anon:
                self._anon.remove(conn)
