"""Wire format of the cluster — envelopes plus pluggable serialization.

Every byte that crosses a node boundary is one :class:`Envelope`
serialized by a :class:`Serializer` and framed by the transport
(:mod:`repro.cluster.transport`).  Keeping the envelope a dumb record
with primitive fields is what makes serialization pluggable: the JSON
codec covers the CLI verbs (human-debuggable, payloads restricted to
JSON types), the pickle codec covers the bench and arbitrary Python
payloads inside one trust domain.

Addressing is ``node/actor`` paths (:func:`make_path`/:func:`split_path`)
— the router on each node owns everything left of the slash, the local
:class:`~repro.actors.system.ActorSystem` everything right of it.

Reliability metadata rides in the envelope itself: ``seq`` is a
per-origin-node monotonic sequence number for the *reliable* kinds
(TELL/SPAWN/WATCH/SIGNAL/STATUS — retried until cumulatively ACKed,
deduplicated at the receiver), while ACK/CREDIT/HEARTBEAT/HELLO/REPLY/
SKIP are fire-and-forget control traffic (``seq == 0``).
"""

from __future__ import annotations

import json
import pickle
from typing import Any, Optional

__all__ = [
    "Envelope", "Serializer", "JsonSerializer", "PickleSerializer",
    "serializer", "make_path", "split_path",
    "TELL", "ACK", "CREDIT", "HEARTBEAT", "HELLO", "SPAWN", "WATCH",
    "SIGNAL", "STATUS", "REPLY", "SKIP", "TELEMETRY", "RELIABLE_KINDS",
]

# -- envelope kinds ---------------------------------------------------------
TELL = "tell"            # user message for a remote actor
ACK = "ack"              # cumulative delivery acknowledgement
CREDIT = "credit"        # mailbox credit replenishment (backpressure)
HEARTBEAT = "heartbeat"  # failure-detector liveness beacon
HELLO = "hello"          # connection handshake: announces the origin node
SPAWN = "spawn"          # remote actor creation request
WATCH = "watch"          # cross-node supervision registration
SIGNAL = "signal"        # supervision signal (watched actor failed/stopped)
STATUS = "status"        # node introspection request
REPLY = "reply"          # response to SPAWN/STATUS, keyed by request seq
SKIP = "skip"            # link resync: abandon seqs <= payload (dead-lettered
                         # on the sender, so the receiver's cumulative-ACK
                         # prefix must jump over them, never wait for them)
TELEMETRY = "telemetry"  # delta-encoded metrics frame (telemetry plane).
                         # Deliberately fire-and-forget: frames carry
                         # *cumulative* counter values for changed keys, so
                         # a lost frame only delays an update — retrying
                         # stale metrics would be pure overhead

#: kinds that are retried until acknowledged and deduplicated at the receiver
RELIABLE_KINDS = frozenset({TELL, SPAWN, WATCH, SIGNAL, STATUS})


def make_path(node: str, actor: str) -> str:
    """``node/actor`` — the cluster-wide name of one actor."""
    return f"{node}/{actor}"


def split_path(path: str) -> tuple[str, str]:
    """Split ``node/actor``; raises ValueError on a path with no slash."""
    node, sep, actor = path.partition("/")
    if not sep or not node or not actor:
        raise ValueError(f"malformed actor path {path!r} "
                         "(expected 'node/actor')")
    return node, actor


class Envelope:
    """One unit of cluster traffic.

    ``target`` is an actor path for TELL/SIGNAL, a bare node name for
    node-level kinds; ``sender`` is the actor path replies should go to
    (or None).  ``payload`` is kind-specific and must survive the
    configured serializer.

    ``ctx`` is the optional causal-tracing header: a ``(request_id,
    parent_span_id, t_send)`` triple stamped on TELLs sent under a
    request context.  It is absent from the wire when None — untraced
    traffic serializes byte-identically to the pre-tracing format, and
    both codecs accept frames without it.
    """

    __slots__ = ("kind", "seq", "origin", "target", "sender", "payload",
                 "ctx")

    def __init__(self, kind: str, seq: int, origin: str, target: str,
                 payload: Any = None, sender: Optional[str] = None,
                 ctx: Optional[tuple] = None):
        self.kind = kind
        self.seq = seq
        self.origin = origin
        self.target = target
        self.sender = sender
        self.payload = payload
        self.ctx = ctx

    def as_tuple(self) -> tuple:
        if self.ctx is None:
            return (self.kind, self.seq, self.origin, self.target,
                    self.sender, self.payload)
        return (self.kind, self.seq, self.origin, self.target,
                self.sender, self.payload, self.ctx)

    @classmethod
    def from_tuple(cls, data: tuple) -> "Envelope":
        kind, seq, origin, target, sender, payload = data[:6]
        ctx = tuple(data[6]) if len(data) > 6 and data[6] is not None \
            else None
        return cls(kind, seq, origin, target, payload=payload,
                   sender=sender, ctx=ctx)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Envelope) \
            and other.as_tuple() == self.as_tuple()

    def __repr__(self) -> str:
        return (f"<Envelope {self.kind} #{self.seq} "
                f"{self.origin}->{self.target} {self.payload!r}>")


class Serializer:
    """Codec between an :class:`Envelope` and transport bytes."""

    name = "serializer"

    def encode(self, env: Envelope) -> bytes:
        raise NotImplementedError

    def decode(self, data: bytes) -> Envelope:
        raise NotImplementedError


class JsonSerializer(Serializer):
    """Human-debuggable wire format; payloads limited to JSON types."""

    name = "json"

    def encode(self, env: Envelope) -> bytes:
        obj = {
            "kind": env.kind, "seq": env.seq, "origin": env.origin,
            "target": env.target, "sender": env.sender,
            "payload": env.payload,
        }
        if env.ctx is not None:
            obj["ctx"] = list(env.ctx)
        return json.dumps(obj, sort_keys=True).encode("utf-8")

    def decode(self, data: bytes) -> Envelope:
        obj = json.loads(data.decode("utf-8"))
        ctx = obj.get("ctx")
        return Envelope(obj["kind"], obj["seq"], obj["origin"],
                        obj["target"], payload=obj.get("payload"),
                        sender=obj.get("sender"),
                        ctx=tuple(ctx) if ctx is not None else None)


class PickleSerializer(Serializer):
    """Arbitrary Python payloads — one trust domain only (it's pickle)."""

    name = "pickle"

    def encode(self, env: Envelope) -> bytes:
        return pickle.dumps(env.as_tuple(), protocol=pickle.HIGHEST_PROTOCOL)

    def decode(self, data: bytes) -> Envelope:
        return Envelope.from_tuple(pickle.loads(data))


def serializer(name: str) -> Serializer:
    """Serializer registry: ``json`` or ``pickle``."""
    if name == "json":
        return JsonSerializer()
    if name == "pickle":
        return PickleSerializer()
    raise KeyError(f"unknown serializer {name!r}; known: json, pickle")
