"""repro.cluster — distributed actor runtime across process boundaries.

One :class:`ClusterNode` per process: a local
:class:`~repro.actors.system.ActorSystem` joined to its peers by a
frame transport (in-process :class:`LoopbackTransport` for
deterministic tests, length-prefixed TCP :class:`SocketTransport` for
real multi-core runs).  On top of the transport the node layers
at-least-once retry delivery with receiver dedup (exactly-once at the
actor), credit-based backpressure with bounded remote mailboxes, a
heartbeat failure detector, and cross-node supervision — see
``docs/ARCHITECTURE.md`` ("Cluster") for the full contract.
"""

from .delivery import CreditGate, DedupTable, Outbox, RetryPolicy
from .message import (ACK, CREDIT, HEARTBEAT, HELLO, RELIABLE_KINDS, REPLY,
                      SIGNAL, SPAWN, STATUS, TELL, WATCH, Envelope,
                      JsonSerializer, PickleSerializer, Serializer,
                      make_path, serializer, split_path)
from .node import (ActorSignal, ClusterConfig, ClusterNode, PeerState,
                   RemoteRef, actor_type, actor_type_names,
                   register_actor_type)
from .observe import (ClusterEvent, ClusterSaturationDetector,
                      SuspectLossDetector, cluster_bus, cluster_detectors,
                      format_merged_profile, merge_chrome_traces,
                      merge_profiles)
from .transport import (FrameDecoder, LoopbackHub, LoopbackTransport,
                        SocketTransport, encode_frame)

__all__ = [
    # node
    "ClusterNode", "ClusterConfig", "RemoteRef", "ActorSignal", "PeerState",
    "register_actor_type", "actor_type", "actor_type_names",
    # transports
    "LoopbackHub", "LoopbackTransport", "SocketTransport", "FrameDecoder",
    "encode_frame",
    # wire format
    "Envelope", "Serializer", "JsonSerializer", "PickleSerializer",
    "serializer", "make_path", "split_path", "RELIABLE_KINDS",
    "TELL", "ACK", "CREDIT", "HEARTBEAT", "HELLO", "SPAWN", "WATCH",
    "SIGNAL", "STATUS", "REPLY",
    # delivery guarantees
    "Outbox", "DedupTable", "CreditGate", "RetryPolicy",
    # observability
    "ClusterEvent", "ClusterSaturationDetector", "SuspectLossDetector",
    "cluster_detectors", "cluster_bus", "merge_profiles",
    "format_merged_profile", "merge_chrome_traces",
]
