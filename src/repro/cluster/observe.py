"""Cross-process observability for the cluster runtime.

Three pieces let the PR 2–4 tooling see through process boundaries:

* :class:`ClusterEvent` — the node's trace record.  It duck-types the
  kernel's :class:`~repro.core.trace.TraceEvent` surface
  (``step``/``task_name``/``effect_repr``/``obj_name``…) with
  ``obj_name is None`` and ``recv_mbox is None``, so it can ride the
  existing :class:`~repro.obs.monitors.MonitorBus` without tripping the
  lock/mailbox interpretation meant for kernel events — only detectors
  that understand ``cluster-*`` kinds react to it.
* :func:`merge_profiles` / :func:`merge_chrome_traces` — fold per-node
  :class:`~repro.obs.profile.Profiler` snapshots into one report
  (counters sum, gauges max, histograms stay per-node — percentiles do
  not merge) and per-node event logs into one Chrome trace where each
  node is a ``pid`` and send→receive pairs become flow arrows that
  survive the process boundary.  Cluster timestamps are ``time.time()``
  on purpose: wall clocks are comparable across same-host processes,
  ``perf_counter`` is not.
* :class:`ClusterSaturationDetector` / :class:`SuspectLossDetector` —
  MonitorBus detectors for the two distributed hazards the single
  process never sees: remote mailbox saturation (senders parking on
  credit) and possible message loss to a suspected/dead node.
"""

from __future__ import annotations

import zlib
from typing import Any, Iterable, Optional

from ..obs.monitors import Detector, Hazard, MonitorBus

__all__ = ["ClusterEvent", "ClusterSaturationDetector",
           "SuspectLossDetector", "cluster_detectors", "cluster_bus",
           "merge_profiles", "format_merged_profile",
           "merge_chrome_traces"]


class ClusterEvent:
    """One node-level occurrence (send, receive, retry, suspect, ...).

    The ``task_*``/``effect_repr``/``obj_name`` attributes exist solely
    so :meth:`repro.obs.monitors.KernelView.feed` can absorb the event
    without special-casing: ``obj_name=None`` skips every lock branch,
    ``recv_mbox=None`` skips mailbox accounting (cluster flow ids are
    hashes, not deposit-ordered sequence numbers, so the kernel's
    message-order detector must not compare them).
    """

    __slots__ = ("kind", "node", "actor", "peer", "step", "ts",
                 "msg_seq", "recv_seq", "extra")

    def __init__(self, kind: str, node: str, actor: str = "",
                 peer: str = "", step: int = 0, ts: float = 0.0,
                 msg_seq: Optional[int] = None,
                 recv_seq: Optional[int] = None,
                 extra: Optional[dict] = None):
        self.kind = kind
        self.node = node
        self.actor = actor
        self.peer = peer
        self.step = step
        self.ts = ts
        self.msg_seq = msg_seq
        self.recv_seq = recv_seq
        self.extra = extra if extra is not None else {}

    # -- TraceEvent duck-typing (see class docstring) -------------------
    task_ltid = -1
    obj_name = None
    recv_mbox = None
    vclock = None
    access_var = None
    access_kind = None

    @property
    def task_name(self) -> str:
        return f"{self.node}/{self.actor}" if self.actor else self.node

    @property
    def task_tid(self) -> int:
        # stable per-node pseudo-tid so KernelView keys stay consistent
        # even across processes — crc32, not the builtin hash, because
        # string hashing is randomized per process (PYTHONHASHSEED) and
        # merged traces combine events minted by different nodes
        return zlib.crc32(f"cluster-node|{self.node}".encode()) & 0x3FFFFFFF

    @property
    def effect_repr(self) -> str:
        return f"{self.kind} {self.peer or self.actor}".rstrip()

    @property
    def payload_repr(self) -> str:
        return repr(self.extra)

    # -- (de)serialization for STATUS replies / merged traces -----------
    def as_dict(self) -> dict[str, Any]:
        return {"kind": self.kind, "node": self.node, "actor": self.actor,
                "peer": self.peer, "step": self.step, "ts": self.ts,
                "msg_seq": self.msg_seq, "recv_seq": self.recv_seq,
                "extra": self.extra}

    @classmethod
    def from_dict(cls, d: dict[str, Any]) -> "ClusterEvent":
        return cls(d["kind"], d["node"], d.get("actor", ""),
                   d.get("peer", ""), d.get("step", 0), d.get("ts", 0.0),
                   d.get("msg_seq"), d.get("recv_seq"),
                   d.get("extra") or {})

    def __repr__(self) -> str:
        return (f"<ClusterEvent {self.kind} node={self.node} "
                f"actor={self.actor} peer={self.peer} step={self.step}>")


# ===========================================================================
# detectors
# ===========================================================================

class ClusterSaturationDetector(Detector):
    """Remote mailbox saturation: staged backlog + parked senders.

    Fires ``cluster-mailbox-saturation`` (warning) when a receiving
    node's staging queue for one actor reaches ``staged_threshold``
    (the bounded mailbox is full and arrivals keep coming), and
    ``cluster-backpressure`` (info) the first time a sending thread
    parks on a credit gate — evidence the protocol is actually slowing
    the producer rather than buffering without bound.
    """

    name = "cluster-saturation"

    def __init__(self, staged_threshold: int = 8):
        self.staged_threshold = staged_threshold
        self._saturated: set = set()
        self._parked: set = set()

    def on_event(self, view, event, ready) -> Iterable[Hazard]:
        kind = getattr(event, "kind", "")
        if kind == "cluster-stage":
            staged = event.extra.get("staged", 0)
            target = (event.node, event.actor)
            if staged >= self.staged_threshold \
                    and target not in self._saturated:
                self._saturated.add(target)
                yield Hazard(
                    kind="cluster-mailbox-saturation", severity="warning",
                    step=event.step, tasks=(event.task_name,),
                    objects=(event.actor,),
                    message=f"remote mailbox of {event.actor!r} on node "
                            f"{event.node!r} is full and {staged} more "
                            f"messages are staged: senders outpace the "
                            f"consumer (credit window exhausted)")
        elif kind == "cluster-park":
            path = event.extra.get("path", event.actor)
            if path not in self._parked:
                self._parked.add(path)
                yield Hazard(
                    kind="cluster-backpressure", severity="info",
                    step=event.step, tasks=(event.task_name,),
                    objects=(path,),
                    message=f"sender on node {event.node!r} parked on "
                            f"credit for {path!r}: backpressure is "
                            f"propagating to the producer")


class SuspectLossDetector(Detector):
    """Possible message loss around suspected / down nodes.

    ``cluster-suspect-loss`` (warning) when a peer turns SUSPECT while
    reliable envelopes to it are unacknowledged; ``cluster-node-down``
    (error) when the failure detector declares a peer DOWN; and
    ``cluster-message-loss`` (error) when a reliable envelope exhausts
    its retries and dead-letters.
    """

    name = "cluster-suspect-loss"

    def __init__(self) -> None:
        self._suspected: set = set()
        self._down: set = set()
        self._lost = 0

    def on_event(self, view, event, ready) -> Iterable[Hazard]:
        kind = getattr(event, "kind", "")
        if kind == "cluster-suspect":
            unacked = event.extra.get("unacked", 0)
            key = (event.node, event.peer)
            if unacked > 0 and key not in self._suspected:
                self._suspected.add(key)
                yield Hazard(
                    kind="cluster-suspect-loss", severity="warning",
                    step=event.step, tasks=(event.peer,),
                    message=f"node {event.node!r} suspects peer "
                            f"{event.peer!r} with {unacked} "
                            f"unacknowledged envelope(s) in flight — "
                            f"they may be lost if the peer is down")
        elif kind == "cluster-down":
            key = (event.node, event.peer)
            if key not in self._down:
                self._down.add(key)
                yield Hazard(
                    kind="cluster-node-down", severity="error",
                    step=event.step, tasks=(event.peer,),
                    message=f"node {event.node!r} declared peer "
                            f"{event.peer!r} DOWN: pending traffic "
                            f"dead-letters, watchers receive node-down "
                            f"signals")
        elif kind == "cluster-dead-letter" \
                and "undeliverable" in event.extra.get("why", ""):
            self._lost += 1
            if self._lost == 1:
                yield Hazard(
                    kind="cluster-message-loss", severity="error",
                    step=event.step, objects=(event.actor,),
                    message=f"reliable envelope to {event.actor!r} "
                            f"exhausted its retries and was dead-"
                            f"lettered: {event.extra.get('why', '')}")


def cluster_detectors() -> list[Detector]:
    """Fresh instances of the cluster-specific detectors."""
    return [ClusterSaturationDetector(), SuspectLossDetector()]


def cluster_bus(protocols: Optional[Iterable[Any]] = None) -> MonitorBus:
    """A MonitorBus wired with only the cluster detectors — the usual
    companion of ``ClusterNode(monitors=...)``.

    ``protocols`` adds a :class:`~repro.obs.ProtocolMonitor` over the
    given :class:`~repro.obs.Protocol` specs; the node notices it wants
    message kinds and stamps them onto every cluster send/recv/local
    event (the local fast path stops sampling so conformance sees each
    message)."""
    detectors = cluster_detectors()
    if protocols is not None:
        from ..obs.protocol import ProtocolMonitor
        detectors.append(ProtocolMonitor(protocols))
    return MonitorBus(detectors=detectors)


# ===========================================================================
# profile merging
# ===========================================================================

def merge_profiles(snapshots: dict[str, dict]) -> dict[str, Any]:
    """Fold per-node profiler snapshots into one cluster-wide report.

    Counters sum and gauges max across nodes (both are well-defined
    under union); histogram *percentiles* are not mergeable from
    snapshots, so histograms keep their numbers per node under
    ``node:name`` keys rather than pretending p99s add up.
    """
    counters: dict[str, float] = {}
    gauges: dict[str, float] = {}
    histograms: dict[str, dict] = {}
    for node in sorted(snapshots):
        snap = snapshots[node] or {}
        for name, value in (snap.get("counters") or {}).items():
            counters[name] = counters.get(name, 0) + value
        for name, value in (snap.get("gauges") or {}).items():
            gauges[name] = max(gauges.get(name, value), value)
        for name, stats in (snap.get("histograms") or {}).items():
            histograms[f"{node}:{name}"] = stats
    return {"nodes": sorted(snapshots), "counters": counters,
            "gauges": gauges, "histograms": histograms}


def format_merged_profile(merged: dict[str, Any]) -> str:
    """Human-readable rendering of a :func:`merge_profiles` result."""
    lines = [f"cluster profile ({', '.join(merged['nodes'])})"]
    if merged["counters"]:
        lines.append("  counters:")
        for name in sorted(merged["counters"]):
            lines.append(f"    {name:<34} {merged['counters'][name]:>12g}")
    if merged["gauges"]:
        lines.append("  gauges (max over nodes):")
        for name in sorted(merged["gauges"]):
            lines.append(f"    {name:<34} {merged['gauges'][name]:>12g}")
    if merged["histograms"]:
        lines.append("  histograms (per node):")
        for name in sorted(merged["histograms"]):
            h = merged["histograms"][name]
            lines.append(
                f"    {name:<34} n={h['count']:<7} mean={h['mean']:<10.1f}"
                f" p95={h['p95']:<10.1f} max={h['max']:<10.1f}")
    return "\n".join(lines)


# ===========================================================================
# chrome trace merging
# ===========================================================================

def merge_chrome_traces(node_events: dict[str, list]) -> dict[str, Any]:
    """Per-node event logs -> one Chrome ``traceEvents`` object.

    Each node becomes a Chrome *process* (``pid``); every event is an
    instant on that process's timeline; and a ``cluster-send`` pairs
    with the ``cluster-recv`` of the same flow id as an ``s``→``f``
    flow arrow, drawing the message's hop across the process boundary.
    Load the result in ``chrome://tracing`` / Perfetto.

    ``node_events`` values may be :class:`ClusterEvent` objects or their
    ``as_dict`` forms (as shipped in STATUS replies).
    """
    normalized: dict[str, list[ClusterEvent]] = {}
    t0 = None
    for node in sorted(node_events):
        events = [e if isinstance(e, ClusterEvent)
                  else ClusterEvent.from_dict(e)
                  for e in node_events[node]]
        normalized[node] = events
        for e in events:
            if e.ts and (t0 is None or e.ts < t0):
                t0 = e.ts
    t0 = t0 or 0.0

    out: list[dict[str, Any]] = []
    for pid, node in enumerate(sorted(normalized), start=1):
        out.append({"ph": "M", "pid": pid, "tid": 0,
                    "name": "process_name", "args": {"name": node}})
        for e in normalized[node]:
            ts = max(0.0, (e.ts - t0)) * 1e6
            out.append({
                "ph": "i", "s": "t", "pid": pid, "tid": 1, "ts": ts,
                "name": e.kind, "cat": "cluster",
                "args": {"actor": e.actor, "peer": e.peer,
                         "step": e.step, **e.extra},
            })
            # a traced message carries its request id onto the flow
            # arrow, so Perfetto can filter one request's hops out of
            # the whole cluster's arrows
            req = e.extra.get("request_id")
            if e.msg_seq is not None:
                rec: dict[str, Any] = {
                    "ph": "s", "pid": pid, "tid": 1, "ts": ts,
                    "name": "cluster-msg", "cat": "cluster-flow",
                    "id": e.msg_seq}
                if req is not None:
                    rec["args"] = {"request_id": req}
                out.append(rec)
            if e.recv_seq is not None:
                rec = {"ph": "f", "bp": "e", "pid": pid, "tid": 1,
                       "ts": ts, "name": "cluster-msg",
                       "cat": "cluster-flow", "id": e.recv_seq}
                if req is not None:
                    rec["args"] = {"request_id": req}
                out.append(rec)
    return {"traceEvents": out, "displayTimeUnit": "ms"}
